#!/bin/bash
# Regenerates every figure/ablation CSV. Per-binary stdout lands in
# results/logs/<bin>.log, the telemetry run manifest in
# results/logs/<bin>.jsonl, and a progress ledger with wall times in
# results/logs/progress.txt (truncated at the start of each run).
set -u -o pipefail
cd /root/repo
mkdir -p results/logs
# Worker-thread count for the shared pool (results are identical for
# any value; this only affects wall time).
export GENIEX_THREADS="${GENIEX_THREADS:-$(nproc)}"
# Artifact-store mode (off|read|readwrite; default readwrite). A cold
# run populates results/store/ with truth datasets, trained surrogates,
# and vision models; a warm rerun skips all dataset generation and
# training and produces byte-identical CSVs. GENIEX_STORE=off forces a
# from-scratch run.
export GENIEX_STORE="${GENIEX_STORE:-readwrite}"
: > results/logs/progress.txt
echo "GENIEX_THREADS=$GENIEX_THREADS GENIEX_STORE=$GENIEX_STORE" >> results/logs/progress.txt
# Each binary's manifest footer already records its own peak RSS (from
# /proc/self/status VmHWM); /usr/bin/time -v, when present, adds an
# external measurement of the whole process tree to the ledger.
have_time=""
[ -x /usr/bin/time ] && have_time=yes
for b in fig2_nf_analysis fig3_nonlinearity fig5_rmse fig7_design_space fig8_quantization fig9_bit_slicing validate_truth cost_report ablation_hidden ablation_sparsity ablation_mapping ablation_variations ablation_target ablation_ensemble; do
  echo "=== $b start $(date +%H:%M:%S) ===" >> results/logs/progress.txt
  t0=$SECONDS
  rss=""
  if [ -n "$have_time" ]; then
    /usr/bin/time -v -o results/logs/$b.time \
      cargo run -q --release -p geniex-bench --bin $b > results/logs/$b.log 2>&1
    status=$?
    rss=$(awk -F': ' '/Maximum resident set size/ {print $2}' results/logs/$b.time)
  else
    cargo run -q --release -p geniex-bench --bin $b > results/logs/$b.log 2>&1
    status=$?
  fi
  echo "=== $b done $(date +%H:%M:%S) exit $status wall $((SECONDS - t0))s peak_rss ${rss:-?}kB ===" >> results/logs/progress.txt
done
# Store inventory for the record (what a rerun will reuse).
cargo run -q --release -p geniex-bench --bin store_maint -- ls > results/logs/store_ls.log 2>&1
echo ALL_FIGS_DONE >> results/logs/progress.txt

#!/bin/bash
set -u
cd /root/repo
mkdir -p results/logs
for b in fig7_design_space fig8_quantization fig9_bit_slicing validate_truth cost_report ablation_hidden ablation_sparsity ablation_mapping ablation_variations ablation_target ablation_ensemble; do
  echo "=== $b start $(date +%H:%M:%S) ===" >> results/logs/progress.txt
  cargo run -q --release -p geniex-bench --bin $b > results/logs/$b.log 2>&1
  echo "=== $b done $(date +%H:%M:%S) exit $? ===" >> results/logs/progress.txt
done
echo ALL_FIGS_DONE >> results/logs/progress.txt

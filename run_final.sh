#!/bin/bash
cd /root/repo
mkdir -p results/logs
export GENIEX_THREADS="${GENIEX_THREADS:-$(nproc)}"
# See run_figs.sh: artifact-store mode for warm reruns.
export GENIEX_STORE="${GENIEX_STORE:-readwrite}"
echo "GENIEX_THREADS=$GENIEX_THREADS GENIEX_STORE=$GENIEX_STORE" >> results/logs/progress.txt
# Wall time and (when /usr/bin/time exists) peak RSS per phase go to
# the progress ledger; see run_figs.sh for the per-binary version.
run_phase() {
  local label=$1 out=$2
  shift 2
  local t0=$SECONDS rss="" status
  if [ -x /usr/bin/time ]; then
    /usr/bin/time -v -o "results/logs/$label.time" "$@" 2>&1 | tee "$out" > /dev/null
    status=$?
    rss=$(awk -F': ' '/Maximum resident set size/ {print $2}' "results/logs/$label.time")
  else
    "$@" 2>&1 | tee "$out" > /dev/null
    status=$?
  fi
  echo "=== $label done $(date +%H:%M:%S) exit $status wall $((SECONDS - t0))s peak_rss ${rss:-?}kB ===" >> results/logs/progress.txt
}
run_phase tests /root/repo/test_output.txt cargo test --workspace
run_phase bench /root/repo/bench_output.txt cargo bench --workspace
echo FINAL_DONE >> results/logs/progress.txt

#!/bin/bash
cd /root/repo
mkdir -p results/logs
export GENIEX_THREADS="${GENIEX_THREADS:-$(nproc)}"
# See run_figs.sh: artifact-store mode for warm reruns.
export GENIEX_STORE="${GENIEX_STORE:-readwrite}"
echo "GENIEX_THREADS=$GENIEX_THREADS GENIEX_STORE=$GENIEX_STORE" >> results/logs/progress.txt
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt > /dev/null
echo "=== tests done $(date +%H:%M:%S) ===" >> results/logs/progress.txt
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo "=== bench done $(date +%H:%M:%S) ===" >> results/logs/progress.txt
echo FINAL_DONE >> results/logs/progress.txt

#!/bin/bash
cd /root/repo
mkdir -p results/logs
export GENIEX_THREADS="${GENIEX_THREADS:-$(nproc)}"
# See run_figs.sh: artifact-store mode for warm reruns.
export GENIEX_STORE="${GENIEX_STORE:-readwrite}"
echo "GENIEX_THREADS=$GENIEX_THREADS GENIEX_STORE=$GENIEX_STORE" >> results/logs/progress.txt
# Wall time and (when /usr/bin/time exists) peak RSS per phase go to
# the progress ledger; see run_figs.sh for the per-binary version.
run_phase() {
  local label=$1 out=$2
  shift 2
  local t0=$SECONDS rss="" status
  if [ -x /usr/bin/time ]; then
    /usr/bin/time -v -o "results/logs/$label.time" "$@" 2>&1 | tee "$out" > /dev/null
    status=$?
    rss=$(awk -F': ' '/Maximum resident set size/ {print $2}' "results/logs/$label.time")
  else
    "$@" 2>&1 | tee "$out" > /dev/null
    status=$?
  fi
  echo "=== $label done $(date +%H:%M:%S) exit $status wall $((SECONDS - t0))s peak_rss ${rss:-?}kB ===" >> results/logs/progress.txt
}
run_phase tests /root/repo/test_output.txt cargo test --workspace
run_phase bench /root/repo/bench_output.txt cargo bench --workspace

# Optional serve benchmark: start the inference server with one
# compute thread, wait for the READY line, run the canonical paired
# single/batched comparison (DESIGN.md §14), and drain on SIGTERM.
# Writes results/BENCH_serve.json.
if [ "${GENIEX_SERVE_BENCH:-0}" = "1" ]; then
  cargo build --release -p geniex-serve -p geniex-bench --bin geniex-serve --bin loadgen \
    >> results/logs/progress.txt 2>&1
  GENIEX_THREADS=1 ./target/release/geniex-serve > results/logs/serve_bench.log 2>&1 &
  SERVE_PID=$!
  serve_ready=0
  for _ in $(seq 1 90); do
    if GENIEX_THREADS=1 ./target/release/loadgen --ping 2>/dev/null; then
      serve_ready=1
      break
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 2
  done
  if [ "$serve_ready" = "1" ]; then
    run_phase serve_bench /root/repo/serve_bench_output.txt \
      env GENIEX_THREADS=1 ./target/release/loadgen --compare --reps 3 \
        --requests 600 --concurrency 96 --batch 64 --linger-us 1000
    kill -TERM "$SERVE_PID" 2>/dev/null
    wait "$SERVE_PID"
    echo "=== serve_bench drained exit $? ===" >> results/logs/progress.txt
  else
    echo "=== serve_bench SKIPPED: server never became ready ===" >> results/logs/progress.txt
    kill "$SERVE_PID" 2>/dev/null
  fi
fi
echo FINAL_DONE >> results/logs/progress.txt

#!/bin/bash
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt > /dev/null
echo "=== tests done $(date +%H:%M:%S) ===" >> results/logs/progress.txt
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo "=== bench done $(date +%H:%M:%S) ===" >> results/logs/progress.txt
echo FINAL_DONE >> results/logs/progress.txt

#!/usr/bin/env python3
"""Check that relative links in tracked markdown files resolve.

Scans every git-tracked ``*.md`` file for inline markdown links
``[text](target)`` and fails (exit 1) listing each link whose target
does not exist on disk. External links (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped;
``path#fragment`` links are checked for the path part only.

Run from anywhere inside the repository:

    python3 tools/check_md_links.py

CI runs this in the lint job so intra-doc references (README ->
DESIGN.md sections, ROADMAP -> EXPERIMENTS.md, ...) cannot silently
rot when files move.
"""

import re
import subprocess
import sys
from pathlib import Path

# Inline links only; reference-style definitions are rare in this repo
# and images share the same syntax with a leading '!', which still
# yields a checkable (text)(target) pair.
LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def tracked_markdown(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    return [root / line for line in out.stdout.splitlines() if line]


def main() -> int:
    root = Path(
        subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    )
    broken = []
    files = tracked_markdown(root)
    checked = 0
    for md in files:
        text = md.read_text(encoding="utf-8")
        in_code_block = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_code_block = not in_code_block
                continue
            if in_code_block:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                checked += 1
                if not resolved.exists():
                    rel = md.relative_to(root)
                    broken.append(f"{rel}:{lineno}: broken link '{target}'")
    if broken:
        print("\n".join(broken))
        print(f"\n{len(broken)} broken link(s) across {len(files)} files")
        return 1
    print(f"ok: {checked} relative links resolve across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())

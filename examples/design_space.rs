//! Design-space exploration: how the non-ideality factor distribution
//! moves with crossbar size, ON resistance, and ON/OFF ratio — the
//! Fig. 2 analysis at example scale.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use std::error::Error;
use xbar::sweep::nf_distribution;
use xbar::CrossbarParams;

fn print_point(label: &str, params: &CrossbarParams) -> Result<(), Box<dyn Error>> {
    let point = nf_distribution(params, 12, 42, label)?;
    let s = point.summary;
    println!(
        "{label:>12}: median NF {:+.4}  IQR [{:+.4}, {:+.4}]  range [{:+.4}, {:+.4}]",
        s.median, s.q1, s.q3, s.min, s.max
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("NF = (I_ideal - I_non_ideal) / I_ideal over random sparse workloads");

    println!("\ncrossbar size sweep (Ron = 100 kΩ, ON/OFF = 6):");
    for size in [8usize, 16, 32] {
        let p = CrossbarParams::builder(size, size).build()?;
        print_point(&format!("{size}x{size}"), &p)?;
    }

    println!("\nON-resistance sweep (16x16):");
    for ron in [50e3, 100e3, 300e3] {
        let p = CrossbarParams::builder(16, 16).r_on(ron).build()?;
        print_point(&format!("{}k", ron / 1e3), &p)?;
    }

    println!("\nON/OFF ratio sweep (16x16, Ron = 100 kΩ):");
    for ratio in [2.0, 6.0, 10.0] {
        let p = CrossbarParams::builder(16, 16)
            .on_off_ratio(ratio)
            .build()?;
        print_point(&format!("{ratio}"), &p)?;
    }

    println!(
        "\nexpected trends (paper Fig. 2): NF grows with size, shrinks with \
         Ron, shrinks with ON/OFF ratio"
    );
    Ok(())
}

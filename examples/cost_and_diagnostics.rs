//! Architect's view: where do non-ideality errors accumulate in the
//! network, and what does the crossbar execution cost?
//!
//! Runs the layer-by-layer SQNR diagnostic under a hostile design
//! point and prints the ISAAC-class energy/latency estimate for the
//! same mapping.
//!
//! ```text
//! cargo run --release --example cost_and_diagnostics
//! ```

use funcsim::cost::{estimate_cost, CostModel};
use funcsim::diagnostics::layer_diagnostics;
use funcsim::{AnalyticalEngine, ArchConfig};
use std::error::Error;
use vision::{rescale_for_fxp, train_model, MicroResNet, SynthSpec, SynthVision, TrainOptions};
use xbar::CrossbarParams;

fn main() -> Result<(), Box<dyn Error>> {
    // Train a small model (a few seconds) and calibrate it.
    println!("training MicroResNet on synth-s...");
    let train = SynthVision::generate(SynthSpec::SynthS, 40, 1)?;
    let mut model = MicroResNet::new(SynthSpec::SynthS, 2);
    train_model(
        &mut model,
        &train,
        &TrainOptions {
            epochs: 15,
            ..TrainOptions::default()
        },
    )?;
    let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>())?;
    let spec = rescale_for_fxp(&model.to_spec(), &calib, 3.5)?;

    // A hostile design point: low Ron, low ON/OFF ratio.
    let xbar = CrossbarParams::builder(16, 16)
        .r_on(50e3)
        .on_off_ratio(2.0)
        .r_source(1000.0)
        .r_sink(500.0)
        .build()?;
    let arch = ArchConfig::default().with_xbar(xbar);

    // --- Layer-by-layer error accumulation ---------------------------
    println!("\nSQNR per MVM layer under the analytical backend (lower = worse):");
    let probe = SynthVision::generate(SynthSpec::SynthS, 1, 7)?;
    let (images, _) = probe.batch(&[0, 1, 2, 3])?;
    let diags = layer_diagnostics(&spec, &arch, &AnalyticalEngine, &images)?;
    for d in &diags {
        println!(
            "  op {:>2} {:<16} signal {:.4}  error {:.4}  SNR {:>6.1} dB",
            d.op_index,
            d.label,
            d.signal_rms,
            d.error_rms,
            d.snr_db()
        );
    }
    println!(
        "errors accumulate over depth — the paper's Section 1 mechanism: \
         the final layer's SNR is the bottleneck for classification."
    );

    // --- Execution cost ----------------------------------------------
    let cost = estimate_cost(&spec, &arch, &CostModel::isaac_class())?;
    println!("\nper-image execution cost (ISAAC-class constants):");
    for l in &cost.layers {
        println!(
            "  {:<16} {:>8} crossbar reads  {:>10} ADC conversions  {:>8.2} nJ",
            l.label,
            l.xbar_reads,
            l.adc_conversions,
            l.energy_pj / 1e3
        );
    }
    println!(
        "  total: {:.2} uJ, {:.2} ms fully serialized",
        cost.total_energy_pj / 1e6,
        cost.total_latency_ns / 1e6
    );
    Ok(())
}

//! A guided walk through the GENIEx training pipeline: dataset
//! stratification, label statistics, training dynamics, fast-forward
//! specialization, and model persistence.
//!
//! ```text
//! cargo run --release --example surrogate_training
//! ```

use geniex::dataset::{generate, simulate_sample, DatasetConfig};
use geniex::{Geniex, GeniexTile, TrainConfig};
use std::error::Error;
use std::io::Cursor;
use xbar::CrossbarParams;

fn main() -> Result<(), Box<dyn Error>> {
    let params = CrossbarParams::builder(8, 8).build()?;

    // --- Dataset -----------------------------------------------------
    // Bit-sliced DNN workloads are sparse, so the generator stratifies
    // sparsity grades exactly as the paper describes (Section 4).
    let config = DatasetConfig {
        samples: 1500,
        seed: 11,
        sparsity_grades: vec![0.0, 0.25, 0.5, 0.75, 0.9],
        dac_levels: 16,
    };
    println!(
        "simulating {} operating points on the circuit solver...",
        config.samples
    );
    let data = generate(&params, &config)?;
    let (train, validation) = data.split(0.9);

    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    let mut mean = 0.0f64;
    let mut count = 0usize;
    for s in &train.samples {
        for &f in &s.f_r {
            min = min.min(f);
            max = max.max(f);
            mean += f as f64;
            count += 1;
        }
    }
    println!(
        "f_R labels: min {min:.4}, max {max:.4}, mean {:.4} over {count} columns",
        mean / count as f64
    );

    // --- Training ----------------------------------------------------
    let mut surrogate = Geniex::new(&params, 100, 3)?;
    println!(
        "surrogate topology: ({} + {}) x {} x {}",
        params.rows,
        params.rows * params.cols,
        surrogate.hidden(),
        params.cols
    );
    let report = surrogate.train(
        &train,
        &TrainConfig {
            epochs: 60,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 4,
            ..TrainConfig::default()
        },
    )?;
    println!(
        "training MSE: first epoch {:.5} -> final {:.5}",
        report.epoch_losses[0], report.final_loss
    );

    // --- Validation --------------------------------------------------
    let mut sq_err = 0.0f64;
    let mut n = 0usize;
    for s in &validation.samples {
        let predicted = surrogate.predict_f_r(&s.v_levels, &s.g_levels)?;
        for (p, t) in predicted.iter().zip(&s.f_r) {
            sq_err += ((p - t) as f64).powi(2);
            n += 1;
        }
    }
    println!(
        "held-out f_R RMSE: {:.4} over {n} columns",
        (sq_err / n as f64).sqrt()
    );

    // --- Fast forward ------------------------------------------------
    // Once a tile's conductances are fixed, the G contribution to the
    // hidden layer is precomputed; each MVM is then two small GEMVs.
    let probe = simulate_sample(&params, &[1.0; 8], &vec![0.6; 64])?;
    let tile = GeniexTile::new(&surrogate, &probe.g_levels)?;
    let fast = tile.f_r_from_levels(&probe.v_levels)?;
    let full = surrogate.predict_f_r(&probe.v_levels, &probe.g_levels)?;
    println!(
        "fast-forward parity: max |fast - full| = {:.2e}",
        fast.iter()
            .zip(&full)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    );
    println!(
        "circuit f_R on the probe pattern: {:?}",
        probe
            .f_r
            .iter()
            .map(|f| format!("{f:.3}"))
            .collect::<Vec<_>>()
    );
    println!(
        "surrogate prediction:             {:?}",
        full.iter().map(|f| format!("{f:.3}")).collect::<Vec<_>>()
    );

    // --- Persistence -------------------------------------------------
    let mut buffer = Vec::new();
    surrogate.save(&mut buffer)?;
    let mut reloaded = Geniex::load(&mut Cursor::new(&buffer), &params)?;
    let again = reloaded.predict_f_r(&probe.v_levels, &probe.g_levels)?;
    assert_eq!(full, again);
    println!(
        "save/load round trip: {} bytes, predictions identical",
        buffer.len()
    );
    Ok(())
}

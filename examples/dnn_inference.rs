//! Full pipeline: train a CNN in FP32, map it onto non-ideal crossbars
//! through the functional simulator, and compare classification
//! accuracy across simulation backends (ideal / analytical / GENIEx) —
//! the paper's end-to-end experiment in miniature.
//!
//! ```text
//! cargo run --release --example dnn_inference
//! ```

use funcsim::{evaluate_spec, AnalyticalEngine, ArchConfig, GeniexEngine, IdealEngine};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use std::error::Error;
use vision::{evaluate, train_model, MicroResNet, SynthSpec, SynthVision, TrainOptions};
use xbar::CrossbarParams;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Train the FP32 reference network on SynthVision.
    println!("training MicroResNet on synth-s...");
    let train = SynthVision::generate(SynthSpec::SynthS, 60, 1)?;
    let test = SynthVision::generate(SynthSpec::SynthS, 8, 999)?;
    let mut model = MicroResNet::new(SynthSpec::SynthS, 2);
    train_model(
        &mut model,
        &train,
        &TrainOptions {
            epochs: 20,
            ..TrainOptions::default()
        },
    )?;
    let fp32 = evaluate(&mut model, &test, 64)?;
    println!("FP32 test accuracy: {:.2}%", 100.0 * fp32);

    // 2. Pick a crossbar design point and train a GENIEx surrogate
    //    for it on circuit-simulated data.
    let xbar = CrossbarParams::builder(16, 16).build()?;
    let arch = ArchConfig::default().with_xbar(xbar.clone());
    println!(
        "crossbar: {}x{}, {}-bit activations/weights, {}-bit streams/slices, {}-bit ADC",
        xbar.rows,
        xbar.cols,
        arch.input_format.total_bits(),
        arch.stream_width,
        arch.adc_bits
    );
    println!("training GENIEx surrogate for this design point...");
    let surrogate_data = generate(
        &xbar,
        &DatasetConfig {
            samples: 2500,
            seed: 7,
            ..DatasetConfig::default()
        },
    )?;
    let mut surrogate = Geniex::new(&xbar, 150, 3)?;
    surrogate.train(
        &surrogate_data,
        &TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        },
    )?;

    // 3. Run the same frozen network through the functional simulator
    //    under each backend.
    let spec = model.to_spec();
    println!("evaluating (64 test images per backend)...");
    let acc_ideal = evaluate_spec(spec.clone(), &arch, &IdealEngine, &test, 16)?;
    println!("  ideal FxP accuracy:    {:.2}%", 100.0 * acc_ideal);
    let acc_analytical = evaluate_spec(spec.clone(), &arch, &AnalyticalEngine, &test, 16)?;
    println!("  analytical accuracy:   {:.2}%", 100.0 * acc_analytical);
    let acc_geniex = evaluate_spec(spec, &arch, &GeniexEngine::new(surrogate), &test, 16)?;
    println!("  GENIEx accuracy:       {:.2}%", 100.0 * acc_geniex);

    println!(
        "\npaper trend: the analytical model overestimates degradation — \
         its accuracy ({:.2}%) sits at or below GENIEx's ({:.2}%), which \
         tracks the real (circuit) behavior.",
        100.0 * acc_analytical,
        100.0 * acc_geniex
    );
    Ok(())
}

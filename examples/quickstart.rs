//! Quickstart: train a GENIEx surrogate for one crossbar design point
//! and compare it against the circuit ground truth and the linear
//! analytical baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geniex::benchmark::{compare_models, BenchmarkConfig};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use std::error::Error;
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarCircuit, CrossbarParams};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Describe a crossbar design point (paper Section 6 defaults:
    //    Ron = 100 kΩ, ON/OFF = 6, Rsource = 500 Ω, Rsink = 100 Ω,
    //    Rwire = 2.5 Ω/cell, Vsupply = 0.25 V) at a laptop-friendly
    //    16x16 size.
    let params = CrossbarParams::builder(16, 16).build()?;
    println!(
        "design point: {}x{} crossbar, Ron = {} kΩ, ON/OFF = {}, Vsupply = {} V",
        params.rows,
        params.cols,
        params.r_on / 1e3,
        params.on_off_ratio,
        params.v_supply
    );

    // 2. Show what non-ideality looks like on one MVM: program all
    //    devices ON, drive all inputs at full scale, and compare the
    //    circuit solve against the ideal arithmetic.
    let g = ConductanceMatrix::uniform(params.rows, params.cols, params.g_on());
    let v = vec![params.v_supply; params.rows];
    let circuit = CrossbarCircuit::new(&params, &g)?;
    let non_ideal = circuit.solve(&v)?;
    let ideal = ideal_mvm(&v, &g)?;
    println!(
        "dense pattern, last column: ideal {:.3} µA, circuit {:.3} µA ({:+.1}% error)",
        ideal[params.cols - 1] * 1e6,
        non_ideal.currents[params.cols - 1] * 1e6,
        100.0 * (non_ideal.currents[params.cols - 1] - ideal[params.cols - 1])
            / ideal[params.cols - 1]
    );

    // 3. Generate a labelled (V, G) -> f_R dataset on the circuit
    //    simulator and train the GENIEx surrogate on it.
    println!("generating 2000 circuit-simulated training samples...");
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 2000,
            seed: 7,
            ..DatasetConfig::default()
        },
    )?;
    let mut surrogate = Geniex::new(&params, 150, 3)?;
    println!("training the surrogate (150 hidden neurons)...");
    let report = surrogate.train(
        &data,
        &TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        },
    )?;
    println!("final training MSE (normalized): {:.5}", report.final_loss);

    // 4. Benchmark on held-out stimuli: NF RMSE of the surrogate and of
    //    the analytical model against the circuit (the Fig. 5 protocol).
    let cmp = compare_models(&params, &surrogate, &BenchmarkConfig::default())?;
    println!(
        "NF RMSE over {} held-out columns: analytical {:.4}, GENIEx {:.4} ({:.1}x better)",
        cmp.samples,
        cmp.analytical_rmse,
        cmp.geniex_rmse,
        cmp.improvement_factor()
    );
    Ok(())
}

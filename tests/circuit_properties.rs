//! Cross-crate physical invariants of the circuit substrate, checked
//! from the outside (public APIs only).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xbar::nf::{non_ideality_factors, NfSummary};
use xbar::{
    ideal_mvm, AnalyticalModel, ConductanceMatrix, CrossbarCircuit, CrossbarParams,
    NonIdealityConfig,
};

fn default_params(n: usize) -> CrossbarParams {
    CrossbarParams::builder(n, n).build().expect("valid params")
}

#[test]
fn linear_circuit_equals_analytical_model() {
    // The analytical model *is* the linear circuit: on a crossbar with
    // only linear non-idealities they must agree to solver precision.
    let mut params = default_params(6);
    params.nonideality = NonIdealityConfig::linear_only();
    let mut rng = StdRng::seed_from_u64(42);
    let g = ConductanceMatrix::random_sparse(&params, 0.3, &mut rng);
    let circuit = CrossbarCircuit::new(&params, &g).unwrap();
    let model = AnalyticalModel::new(&params, &g).unwrap();
    let v = vec![0.25, 0.125, 0.0, 0.0625, 0.25, 0.1875];
    let a = circuit.solve(&v).unwrap().currents;
    let b = model.mvm(&v).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9 * x.abs().max(1e-12));
    }
}

#[test]
fn nf_grows_with_crossbar_size() {
    // Fig. 2(b): larger crossbars -> larger NF (longer wires, lower
    // effective resistance).
    let mut medians = Vec::new();
    for n in [4usize, 8, 16] {
        let params = default_params(n);
        let g = ConductanceMatrix::uniform(n, n, params.g_on());
        let circuit = CrossbarCircuit::new(&params, &g).unwrap();
        let v = vec![params.v_supply; n];
        let non_ideal = circuit.solve(&v).unwrap().currents;
        let ideal = ideal_mvm(&v, &g).unwrap();
        let nf = non_ideality_factors(&ideal, &non_ideal);
        medians.push(NfSummary::from_samples(&nf).unwrap().median);
    }
    assert!(medians[0] < medians[1], "{medians:?}");
    assert!(medians[1] < medians[2], "{medians:?}");
}

#[test]
fn nf_shrinks_with_higher_on_resistance() {
    // Fig. 2(c): higher Ron -> smaller NF.
    let mut medians = Vec::new();
    for ron in [50e3, 100e3, 300e3] {
        let params = CrossbarParams::builder(8, 8).r_on(ron).build().unwrap();
        let g = ConductanceMatrix::uniform(8, 8, params.g_on());
        let circuit = CrossbarCircuit::new(&params, &g).unwrap();
        let v = vec![params.v_supply; 8];
        let non_ideal = circuit.solve(&v).unwrap().currents;
        let ideal = ideal_mvm(&v, &g).unwrap();
        let nf = non_ideality_factors(&ideal, &non_ideal);
        medians.push(NfSummary::from_samples(&nf).unwrap().median);
    }
    assert!(medians[0] > medians[1], "{medians:?}");
    assert!(medians[1] > medians[2], "{medians:?}");
}

#[test]
fn nonlinearity_error_grows_with_supply_voltage() {
    // Fig. 3(b): the relative difference between linear-only and full
    // nonlinear outputs grows with Vsupply.
    let mut rel_errors = Vec::new();
    for v_supply in [0.25, 0.5] {
        let params = CrossbarParams::builder(8, 8)
            .v_supply(v_supply)
            .build()
            .unwrap();
        let mut linear = params.clone();
        linear.nonideality = NonIdealityConfig::linear_only();
        let g = ConductanceMatrix::uniform(8, 8, params.g_on());
        let v = vec![v_supply; 8];
        let full = CrossbarCircuit::new(&params, &g)
            .unwrap()
            .solve(&v)
            .unwrap()
            .currents;
        let lin = CrossbarCircuit::new(&linear, &g)
            .unwrap()
            .solve(&v)
            .unwrap()
            .currents;
        let rel: f64 = full
            .iter()
            .zip(&lin)
            .map(|(a, b)| ((a - b) / b).abs())
            .sum::<f64>()
            / 8.0;
        rel_errors.push(rel);
    }
    assert!(
        rel_errors[1] > rel_errors[0] * 1.5,
        "nonlinearity error should grow sharply with voltage: {rel_errors:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scaling all inputs down scales every output down (monotone
    /// passive network).
    #[test]
    fn circuit_output_monotone_in_drive(seed in 0u64..500) {
        let params = default_params(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ConductanceMatrix::random_sparse(&params, 0.4, &mut rng);
        let circuit = CrossbarCircuit::new(&params, &g).unwrap();
        let v_full = vec![params.v_supply; 5];
        let v_half: Vec<f64> = v_full.iter().map(|x| x * 0.5).collect();
        let full = circuit.solve(&v_full).unwrap().currents;
        let half = circuit.solve(&v_half).unwrap().currents;
        for (f, h) in full.iter().zip(&half) {
            prop_assert!(h <= f);
            prop_assert!(*h >= 0.0);
        }
    }

    /// The non-ideal output never exceeds the ideal output by more
    /// than the sinh boost bound at the operating voltage.
    #[test]
    fn non_ideal_current_is_bounded(seed in 0u64..500) {
        let params = default_params(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = ConductanceMatrix::random_sparse(&params, 0.2, &mut rng);
        let circuit = CrossbarCircuit::new(&params, &g).unwrap();
        let v = vec![params.v_supply; 5];
        let non_ideal = circuit.solve(&v).unwrap().currents;
        let ideal = ideal_mvm(&v, &g).unwrap();
        // sinh(x)/x at x = Vsupply/V0 = 1 is ~1.175.
        let boost_bound = 1.2;
        for (ni, id) in non_ideal.iter().zip(&ideal) {
            prop_assert!(*ni >= 0.0);
            prop_assert!(*ni <= id * boost_bound + 1e-12);
        }
    }
}

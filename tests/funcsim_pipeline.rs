//! Integration tests of the functional simulator spanning crates:
//! mapping-scheme equivalence, cost-model cross-validation against
//! observed operation counts, and variation-decorator behaviour.

use funcsim::cost::{estimate_cost, CostModel};
use funcsim::{
    evaluate_spec, ArchConfig, CrossbarNetwork, IdealEngine, RecordingEngine, StimulusLog,
    VariationEngine, WeightMapping,
};
use vision::{rescale_for_fxp, MicroResNet, SynthSpec, SynthVision};
use xbar::{CrossbarParams, VariationConfig};

fn arch(size: usize) -> ArchConfig {
    ArchConfig {
        adc_bits: 20,
        xbar: CrossbarParams::builder(size, size).build().unwrap(),
        ..ArchConfig::default()
    }
}

fn calibrated_spec() -> (vision::NetworkSpec, nn::Tensor, SynthVision) {
    let model = MicroResNet::new(SynthSpec::SynthS, 3);
    let data = SynthVision::generate(SynthSpec::SynthS, 2, 5).unwrap();
    let (images, _) = data.batch(&[0, 1, 2, 3]).unwrap();
    let spec = rescale_for_fxp(&model.to_spec(), &images, 3.5).unwrap();
    (spec, images, data)
}

#[test]
fn offset_and_differential_mappings_agree_on_ideal_backend() {
    // With ideal arithmetic both weight mappings compute the same
    // fixed-point MVMs, so whole-network logits must agree to within
    // ADC rounding.
    let (spec, images, _) = calibrated_spec();
    let differential = CrossbarNetwork::build(spec.clone(), &arch(16), &IdealEngine).unwrap();
    let offset_arch = ArchConfig {
        weight_mapping: WeightMapping::Offset,
        ..arch(16)
    };
    let offset = CrossbarNetwork::build(spec, &offset_arch, &IdealEngine).unwrap();
    let a = differential.forward(&images).unwrap();
    let b = offset.forward(&images).unwrap();
    let scale = a.max_abs().max(1e-3);
    for (x, y) in a.data().iter().zip(b.data()) {
        assert!(
            (x - y).abs() < 0.02 * scale + 0.01,
            "mappings diverged: {x} vs {y}"
        );
    }
}

#[test]
fn cost_model_bounds_observed_crossbar_reads() {
    // The cost model's read count is an upper bound on the operations
    // the simulator actually performs (the runtime skips all-zero
    // streams); the observed count must land inside a sane fraction of
    // the estimate.
    let (spec, images, _) = calibrated_spec();
    let a = arch(16);
    let estimate = estimate_cost(&spec, &a, &CostModel::default()).unwrap();
    let per_image_estimate = estimate.total_xbar_reads();

    let log = StimulusLog::new(1, 0);
    let engine = RecordingEngine::new(IdealEngine, log.clone());
    let net = CrossbarNetwork::build(spec, &a, &engine).unwrap();
    net.forward(&images).unwrap();
    let batch = images.shape()[0] as u64;
    let observed = log.observed() as u64;

    assert!(
        observed <= per_image_estimate * batch,
        "observed {observed} exceeds estimate {}",
        per_image_estimate * batch
    );
    assert!(
        observed * 5 >= per_image_estimate * batch,
        "observed {observed} implausibly below estimate {}",
        per_image_estimate * batch
    );
}

#[test]
fn variations_degrade_accuracy_monotonically_in_fault_rate() {
    let (spec, _, _) = calibrated_spec();
    // Use a trained-ish workload? Accuracy of an untrained net is
    // meaningless; instead check logit perturbation magnitude grows.
    let test = SynthVision::generate(SynthSpec::SynthS, 1, 7).unwrap();
    let (images, _) = test.batch(&[0, 1]).unwrap();
    let a = arch(16);
    let clean = CrossbarNetwork::build(spec.clone(), &a, &IdealEngine)
        .unwrap()
        .forward(&images)
        .unwrap();
    let mut previous = 0.0f64;
    for stuck in [0.01, 0.05, 0.2] {
        let engine = VariationEngine::new(
            IdealEngine,
            VariationConfig {
                stuck_off_rate: stuck,
                seed: 11,
                ..VariationConfig::none()
            },
        )
        .unwrap();
        let noisy = CrossbarNetwork::build(spec.clone(), &a, &engine)
            .unwrap()
            .forward(&images)
            .unwrap();
        let rms: f64 = clean
            .data()
            .iter()
            .zip(noisy.data())
            .map(|(&c, &n)| ((c - n) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            rms >= previous * 0.5,
            "fault damage should generally grow: {rms} after {previous}"
        );
        assert!(rms > 0.0, "stuck rate {stuck} changed nothing");
        previous = rms;
    }
}

#[test]
fn evaluate_spec_consistent_with_manual_argmax() {
    let (spec, _, data) = calibrated_spec();
    let a = arch(16);
    let accuracy = evaluate_spec(spec.clone(), &a, &IdealEngine, &data, 8).unwrap();

    let net = CrossbarNetwork::build(spec, &a, &IdealEngine).unwrap();
    let (images, labels) = data.full_batch().unwrap();
    let logits = net.forward(&images).unwrap();
    let classes = net.classes();
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == label {
            correct += 1;
        }
    }
    assert!((accuracy - correct as f64 / labels.len() as f64).abs() < 1e-12);
}

//! Integration test of the full GENIEx pipeline: circuit-simulated
//! dataset → surrogate training → persistence → fast-forward →
//! benchmark against the analytical baseline.

use geniex::benchmark::{compare_models, BenchmarkConfig};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{CrossbarModel, Geniex, GeniexModel, GeniexTile, TrainConfig, TrueCircuitModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;
use xbar::{ConductanceMatrix, CrossbarParams};

fn design_point() -> CrossbarParams {
    CrossbarParams::builder(5, 5).build().unwrap()
}

fn trained_surrogate(params: &CrossbarParams) -> Geniex {
    let data = generate(
        params,
        &DatasetConfig {
            samples: 1200,
            seed: 21,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut surrogate = Geniex::new(params, 96, 3).unwrap();
    surrogate
        .train(
            &data,
            &TrainConfig {
                epochs: 100,
                batch_size: 32,
                learning_rate: 1e-3,
                seed: 4,
                ..TrainConfig::default()
            },
        )
        .unwrap();
    surrogate
}

#[test]
fn full_pipeline_beats_analytical_and_survives_round_trip() {
    let params = design_point();
    let surrogate = trained_surrogate(&params);

    // Headline: lower NF RMSE than the analytical baseline on held-out
    // stimuli.
    let cmp = compare_models(
        &params,
        &surrogate,
        &BenchmarkConfig {
            stimuli: 15,
            seed: 77,
            dac_levels: 16,
        },
    )
    .unwrap();
    assert!(
        cmp.geniex_rmse < cmp.analytical_rmse,
        "geniex {} vs analytical {}",
        cmp.geniex_rmse,
        cmp.analytical_rmse
    );

    // Persistence must preserve behaviour exactly.
    let mut buf = Vec::new();
    surrogate.save(&mut buf).unwrap();
    let mut reloaded = Geniex::load(&mut Cursor::new(&buf), &params).unwrap();
    let mut original = surrogate.clone();
    let v = vec![0.5f32; 5];
    let g = vec![0.5f32; 25];
    assert_eq!(
        original.predict_f_r(&v, &g).unwrap(),
        reloaded.predict_f_r(&v, &g).unwrap()
    );

    // Fast-forward tile must agree with the full forward pass.
    let tile = GeniexTile::new(&surrogate, &g).unwrap();
    let fast = tile.f_r_from_levels(&v).unwrap();
    let full = original.predict_f_r(&v, &g).unwrap();
    for (a, b) in fast.iter().zip(&full) {
        assert!((a - b).abs() < 1e-4);
    }
}

#[test]
fn surrogate_tracks_circuit_currents_on_held_out_patterns() {
    let params = design_point();
    let surrogate = trained_surrogate(&params);
    let mut rng = StdRng::seed_from_u64(1234);

    let mut total_rel_err = 0.0f64;
    let mut count = 0usize;
    for _ in 0..6 {
        let g = ConductanceMatrix::random_sparse(&params, 0.3, &mut rng);
        let circuit = TrueCircuitModel::new(&params, &g).unwrap();
        let model = GeniexModel::new(&surrogate, &g).unwrap();
        let v = vec![params.v_supply; 5];
        let truth = circuit.currents(&v).unwrap();
        let predicted = model.currents(&v).unwrap();
        for (p, t) in predicted.iter().zip(&truth) {
            if t.abs() > 1e-9 {
                total_rel_err += ((p - t) / t).abs();
                count += 1;
            }
        }
    }
    let mean_rel_err = total_rel_err / count as f64;
    assert!(
        mean_rel_err < 0.05,
        "mean relative current error {mean_rel_err} too large"
    );
}

#[test]
fn dataset_split_and_validation_loss_are_consistent() {
    let params = design_point();
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 400,
            seed: 5,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let (train, validation) = data.split(0.8);
    assert_eq!(train.len() + validation.len(), 400);

    let mut surrogate = Geniex::new(&params, 48, 3).unwrap();
    surrogate
        .train(
            &train,
            &TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
        )
        .unwrap();

    // Validation f_R RMSE should beat the trivial "always 1" predictor.
    let mut sq_model = 0.0f64;
    let mut sq_trivial = 0.0f64;
    let mut n = 0usize;
    for s in &validation.samples {
        let predicted = surrogate.predict_f_r(&s.v_levels, &s.g_levels).unwrap();
        for (p, t) in predicted.iter().zip(&s.f_r) {
            sq_model += ((p - t) as f64).powi(2);
            sq_trivial += ((1.0 - t) as f64).powi(2);
            n += 1;
        }
    }
    assert!(n > 0);
    assert!(
        sq_model < sq_trivial,
        "surrogate ({}) must beat the trivial predictor ({})",
        (sq_model / n as f64).sqrt(),
        (sq_trivial / n as f64).sqrt()
    );
}

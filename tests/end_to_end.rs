//! End-to-end integration: train a CNN, calibrate it for fixed point,
//! and run it through the functional simulator under several backends.

use funcsim::{
    evaluate_spec, AnalyticalEngine, ArchConfig, CrossbarNetwork, GeniexEngine, IdealEngine,
};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use vision::{
    evaluate, rescale_for_fxp, spec_forward, train_model, MicroResNet, SynthSpec, SynthVision,
    TrainOptions,
};
use xbar::CrossbarParams;

/// Full-size runs are opt-in: `GENIEX_SLOW_TESTS=1 cargo test` trains
/// at the original sample/epoch budgets; the default keeps `cargo
/// test -q` fast with reduced sizes (and accordingly looser accuracy
/// floors).
fn slow_tests() -> bool {
    std::env::var("GENIEX_SLOW_TESTS").is_ok_and(|v| v.trim() == "1")
}

/// One shared trained + calibrated workload for all tests in this file
/// (training is the expensive part; share it).
fn workload() -> &'static (vision::NetworkSpec, SynthVision, f64) {
    static WORKLOAD: std::sync::OnceLock<(vision::NetworkSpec, SynthVision, f64)> =
        std::sync::OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let train = SynthVision::generate(SynthSpec::SynthS, 60, 1).unwrap();
        let test = SynthVision::generate(SynthSpec::SynthS, 4, 999).unwrap();
        let mut model = MicroResNet::new(SynthSpec::SynthS, 2);
        train_model(
            &mut model,
            &train,
            &TrainOptions {
                epochs: if slow_tests() { 22 } else { 16 },
                ..TrainOptions::default()
            },
        )
        .unwrap();
        let fp32 = evaluate(&mut model, &test, 64).unwrap();
        let (calib, _) = train.batch(&(0..32).collect::<Vec<_>>()).unwrap();
        let spec = rescale_for_fxp(&model.to_spec(), &calib, 3.5).unwrap();
        (spec, test, fp32)
    })
}

fn small_arch(size: usize) -> ArchConfig {
    ArchConfig::default().with_xbar(CrossbarParams::builder(size, size).build().unwrap())
}

#[test]
fn ideal_backend_matches_fp32_accuracy() {
    let (spec, test, fp32) = workload().clone();
    // The reduced default budget (16 epochs) tops out lower than the
    // full 22-epoch run; both floors are far above chance (1/8).
    let floor = if slow_tests() { 0.7 } else { 0.6 };
    assert!(
        fp32 > floor,
        "fp32 accuracy {fp32} too low to be meaningful"
    );
    let acc = evaluate_spec(spec, &small_arch(16), &IdealEngine, &test, 8).unwrap();
    // 16-bit FxP with calibration loses essentially nothing (Fig. 8's
    // 16-bit column).
    assert!(
        (acc - fp32).abs() <= 0.1,
        "ideal fxp accuracy {acc} vs fp32 {fp32}"
    );
}

#[test]
fn rescaled_spec_keeps_fp32_argmax() {
    let (spec, test, fp32) = workload().clone();
    let (images, labels) = test.full_batch().unwrap();
    let logits = spec_forward(&spec, &images).unwrap();
    let classes = 8;
    let mut correct = 0;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == label {
            correct += 1;
        }
    }
    let acc = correct as f64 / labels.len() as f64;
    assert!((acc - fp32).abs() < 1e-9, "rescaling changed accuracy");
}

#[test]
fn analytical_backend_degrades_at_low_ron() {
    // A hostile design point (large crossbar relative to Ron, low Ron)
    // must show accuracy loss under the analytical model relative to
    // ideal — the basic Fig. 7 mechanism.
    let (spec, test, _) = workload().clone();
    let hostile = ArchConfig::default().with_xbar(
        CrossbarParams::builder(32, 32)
            .r_on(50e3)
            .on_off_ratio(2.0)
            .build()
            .unwrap(),
    );
    let ideal = evaluate_spec(spec.clone(), &hostile, &IdealEngine, &test, 8).unwrap();
    let analytical = evaluate_spec(spec, &hostile, &AnalyticalEngine, &test, 8).unwrap();
    assert!(
        analytical < ideal,
        "analytical {analytical} should degrade below ideal {ideal}"
    );
}

#[test]
fn geniex_backend_runs_end_to_end() {
    let (spec, test, _) = workload().clone();
    let xb = CrossbarParams::builder(8, 8).build().unwrap();
    let arch = ArchConfig::default().with_xbar(xb.clone());
    let (samples, epochs, hidden, floor) = if slow_tests() {
        (600, 40, 64, 0.5)
    } else {
        (200, 14, 32, 0.3)
    };
    let data = generate(
        &xb,
        &DatasetConfig {
            samples,
            seed: 7,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut surrogate = Geniex::new(&xb, hidden, 3).unwrap();
    surrogate
        .train(
            &data,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
        )
        .unwrap();
    let acc = evaluate_spec(spec, &arch, &GeniexEngine::new(surrogate), &test, 8).unwrap();
    assert!((0.0..=1.0).contains(&acc));
    // At a benign 8x8 design point the surrogate-backed network should
    // still classify far above chance (1/8).
    assert!(acc > floor, "geniex-backend accuracy {acc} collapsed");
}

#[test]
fn network_build_rejects_mismatched_surrogate() {
    let (spec, _, _) = workload().clone();
    let xb8 = CrossbarParams::builder(8, 8).build().unwrap();
    let xb16 = CrossbarParams::builder(16, 16).build().unwrap();
    let data = generate(
        &xb8,
        &DatasetConfig {
            samples: 50,
            seed: 7,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut surrogate = Geniex::new(&xb8, 16, 3).unwrap();
    surrogate
        .train(
            &data,
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        )
        .unwrap();
    // Arch says 16x16 but the surrogate knows 8x8: must fail loudly.
    let arch = ArchConfig::default().with_xbar(xb16);
    assert!(CrossbarNetwork::build(spec, &arch, &GeniexEngine::new(surrogate)).is_err());
}

//! Functional-simulator microbenchmarks: programmed-matrix MVM
//! throughput per backend, layer programming cost, and the bit-slicing
//! sweep's cost scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funcsim::{
    AnalyticalEngine, ArchConfig, CrossbarEngine, FxpFormat, GeniexEngine, IdealEngine,
    ProgrammedMatrix,
};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use xbar::CrossbarParams;

fn arch(size: usize) -> ArchConfig {
    ArchConfig::default().with_xbar(CrossbarParams::builder(size, size).build().unwrap())
}

fn test_matrix(m: usize, k: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let weight = Tensor::from_vec(
        (0..m * k).map(|_| rng.gen_range(-0.9f32..0.9)).collect(),
        &[m, k],
    )
    .unwrap();
    let bias = Tensor::zeros(&[m]);
    (weight, bias)
}

fn input_codes(k: usize, n: usize, seed: u64) -> Vec<i64> {
    let fmt = FxpFormat::paper_default();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * k)
        .map(|_| fmt.quantize(rng.gen_range(0.0f32..1.0)))
        .collect()
}

fn geniex_engine(size: usize) -> GeniexEngine {
    let params = CrossbarParams::builder(size, size).build().unwrap();
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 150,
            seed: 1,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut s = Geniex::new(&params, 100, 3).unwrap();
    s.train(
        &data,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    GeniexEngine::new(s)
}

fn bench_mvm_backends(c: &mut Criterion) {
    let size = 16;
    let a = arch(size);
    let (weight, bias) = test_matrix(16, 72, 1);
    let x = input_codes(72, 8, 2);
    let mut group = c.benchmark_group("funcsim/mvm_16x16_fanin72_batch8");

    let engines: Vec<(&str, Box<dyn CrossbarEngine>)> = vec![
        ("ideal", Box::new(IdealEngine)),
        ("analytical", Box::new(AnalyticalEngine)),
        ("geniex", Box::new(geniex_engine(size))),
    ];
    for (name, engine) in &engines {
        let pm = ProgrammedMatrix::program(engine.as_ref(), &a, &weight, &bias).unwrap();
        group.bench_function(*name, |b| {
            b.iter(|| pm.mvm_codes(black_box(&x), 8).unwrap());
        });
    }
    group.finish();
}

fn bench_programming(c: &mut Criterion) {
    let size = 16;
    let a = arch(size);
    let (weight, bias) = test_matrix(16, 72, 3);
    let mut group = c.benchmark_group("funcsim/program_16x16_fanin72");
    group.bench_function("ideal", |b| {
        b.iter(|| ProgrammedMatrix::program(&IdealEngine, &a, &weight, &bias).unwrap());
    });
    group.bench_function("analytical", |b| {
        b.iter(|| ProgrammedMatrix::program(&AnalyticalEngine, &a, &weight, &bias).unwrap());
    });
    group.finish();
}

fn bench_bit_slicing_cost(c: &mut Criterion) {
    // Narrower digits mean more (stream, slice) pairs per MVM: the
    // Fig. 9 accuracy sweep has a direct cost axis too.
    let size = 16;
    let (weight, bias) = test_matrix(16, 64, 5);
    let x = input_codes(64, 4, 6);
    let mut group = c.benchmark_group("funcsim/bit_slicing_cost");
    for width in [1u32, 2, 4] {
        let a = arch(size).with_bit_slicing(width, width);
        let pm = ProgrammedMatrix::program(&IdealEngine, &a, &weight, &bias).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| pm.mvm_codes(black_box(&x), 4).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mvm_backends, bench_programming, bench_bit_slicing_cost
}
criterion_main!(benches);

//! GENIEx surrogate microbenchmarks: cold forward vs fast-forward
//! (tile-specialized), batched fast-forward, training step cost, and
//! tile programming (the weight-split precomputation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, GeniexTile, TrainConfig};
use std::hint::black_box;
use xbar::CrossbarParams;

fn trained(size: usize, hidden: usize) -> (CrossbarParams, Geniex) {
    let params = CrossbarParams::builder(size, size).build().unwrap();
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 200,
            seed: 1,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    let mut s = Geniex::new(&params, hidden, 3).unwrap();
    s.train(
        &data,
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    (params, s)
}

fn bench_forward_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("surrogate/forward");
    for size in [8usize, 16, 32] {
        let (_, mut surrogate) = trained(size, 200);
        let v = vec![0.5f32; size];
        let g = vec![0.5f32; size * size];
        group.bench_with_input(BenchmarkId::new("cold", size), &size, |b, _| {
            b.iter(|| surrogate.predict_f_r(black_box(&v), black_box(&g)).unwrap());
        });
        let tile = GeniexTile::new(&surrogate, &g).unwrap();
        group.bench_with_input(BenchmarkId::new("fast", size), &size, |b, _| {
            b.iter(|| tile.f_r_from_levels(black_box(&v)).unwrap());
        });
    }
    group.finish();
}

fn bench_batched_fast_forward(c: &mut Criterion) {
    let (_, surrogate) = trained(16, 200);
    let g = vec![0.5f32; 256];
    let tile = GeniexTile::new(&surrogate, &g).unwrap();
    let mut group = c.benchmark_group("surrogate/fast_batch");
    for n in [1usize, 16, 128] {
        let v = vec![0.5f32; n * 16];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| tile.f_r_batch(black_box(&v), n).unwrap());
        });
    }
    group.finish();
}

fn bench_tile_programming(c: &mut Criterion) {
    let (_, surrogate) = trained(16, 200);
    let g = vec![0.5f32; 256];
    c.bench_function("surrogate/tile_program_16", |b| {
        b.iter(|| GeniexTile::new(black_box(&surrogate), black_box(&g)).unwrap());
    });
}

fn bench_training_epoch(c: &mut Criterion) {
    let params = CrossbarParams::builder(8, 8).build().unwrap();
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 256,
            seed: 2,
            ..DatasetConfig::default()
        },
    )
    .unwrap();
    c.bench_function("surrogate/train_epoch_8x8_256samples", |b| {
        b.iter(|| {
            let mut s = Geniex::new(&params, 100, 3).unwrap();
            s.train(
                black_box(&data),
                &TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                },
            )
            .unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forward_paths, bench_batched_fast_forward,
              bench_tile_programming, bench_training_epoch
}
criterion_main!(benches);

//! Circuit-solver microbenchmarks: Newton + block-Gauss-Seidel solve
//! cost versus crossbar size, the CG cross-validation path, the
//! analytical model's effective-matrix extraction, and the ideal MVM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use xbar::{
    ideal_mvm, AnalyticalModel, ConductanceMatrix, CrossbarCircuit, CrossbarParams, NewtonOptions,
};

fn bench_nonlinear_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit/nonlinear_solve");
    for size in [8usize, 16, 32, 64] {
        let params = CrossbarParams::builder(size, size).build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let g = ConductanceMatrix::random_sparse(&params, 0.3, &mut rng);
        let circuit = CrossbarCircuit::new(&params, &g).unwrap();
        let v = vec![params.v_supply; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| circuit.solve(black_box(&v)).unwrap());
        });
    }
    group.finish();
}

fn bench_linear_solvers(c: &mut Criterion) {
    // Block Gauss-Seidel (default) vs conjugate gradient on the same
    // 16x16 operating point.
    let mut group = c.benchmark_group("circuit/linear_solver");
    let params = CrossbarParams::builder(16, 16).build().unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let g = ConductanceMatrix::random_sparse(&params, 0.3, &mut rng);
    let v = vec![params.v_supply; 16];

    let bgs = CrossbarCircuit::new(&params, &g).unwrap();
    group.bench_function("block_gauss_seidel", |b| {
        b.iter(|| bgs.solve(black_box(&v)).unwrap())
    });

    let cg = CrossbarCircuit::with_options(
        &params,
        &g,
        NewtonOptions {
            linear_solver: xbar::LinearSolverKind::ConjugateGradient,
            ..NewtonOptions::default()
        },
    )
    .unwrap();
    group.bench_function("conjugate_gradient", |b| {
        b.iter(|| cg.solve(black_box(&v)).unwrap())
    });
    group.finish();
}

fn bench_analytical_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit/analytical_extraction");
    for size in [8usize, 16, 32] {
        let params = CrossbarParams::builder(size, size).build().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let g = ConductanceMatrix::random_sparse(&params, 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| AnalyticalModel::new(black_box(&params), black_box(&g)).unwrap());
        });
    }
    group.finish();
}

fn bench_ideal_mvm(c: &mut Criterion) {
    let params = CrossbarParams::builder(64, 64).build().unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let g = ConductanceMatrix::random_sparse(&params, 0.3, &mut rng);
    let v = vec![params.v_supply; 64];
    c.bench_function("circuit/ideal_mvm_64", |b| {
        b.iter(|| ideal_mvm(black_box(&v), black_box(&g)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nonlinear_solve, bench_linear_solvers,
              bench_analytical_extraction, bench_ideal_mvm
}
criterion_main!(benches);

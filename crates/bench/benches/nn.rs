//! Neural-network substrate microbenchmarks: GEMM, conv2d forward and
//! backward, and an MLP training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::layers::{Conv2d, Layer};
use nn::{loss::mse, Adam, Mlp, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        (0..shape.iter().product::<usize>())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
        shape,
    )
    .unwrap()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn/matmul");
    for n in [32usize, 128, 256] {
        let a = random_tensor(&[n, n], 1);
        let b = random_tensor(&[n, n], 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(&a).matmul(black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut conv = Conv2d::new(8, 16, 3, 1, 1, 3);
    let x = random_tensor(&[8, 8, 12, 12], 4);
    c.bench_function("nn/conv2d_forward_8x8x12x12", |b| {
        b.iter(|| conv.forward(black_box(&x), false));
    });
    c.bench_function("nn/conv2d_forward_backward", |b| {
        b.iter(|| {
            let out = conv.forward(black_box(&x), true);
            let ones = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
            conv.backward(&ones)
        });
    });
}

fn bench_mlp_step(c: &mut Criterion) {
    let mut mlp = Mlp::new(&[272, 200, 16], 5).unwrap();
    let x = random_tensor(&[32, 272], 6);
    let t = random_tensor(&[32, 16], 7);
    let mut opt = Adam::new(1e-3);
    c.bench_function("nn/mlp_train_step_272x200x16_b32", |b| {
        b.iter(|| {
            let y = mlp.forward_train(&x);
            let (_, grad) = mse(&y, &t).unwrap();
            mlp.zero_grad();
            mlp.backward(&grad);
            opt.step(&mut mlp);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_conv, bench_mlp_step
}
criterion_main!(benches);

//! Kernel microbenchmarks at crossbar shapes: the lane-blocked kernels
//! against the sequential loops they replaced (`kernels::naive`).
//!
//! Labels follow `kernels/<op>/<variant>/<shape>` with variants `naive`
//! (old ordering) and `blocked` (lane kernels), so the
//! `kernel_bench_summary` binary can pair them up and compute speedups.
//! Run with `GENIEX_BENCH_OUT=path.csv` to capture machine-readable
//! rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_f32(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn random_f64(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f64..1.0)).collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dot_f32");
    for n in [32usize, 64, 128] {
        let a = random_f32(n, 1);
        let b = random_f32(n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| kernels::naive::dot_f32(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| kernels::dot_f32(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    // Square GEMM at crossbar tile sizes, naive ikj vs register-blocked.
    let mut group = c.benchmark_group("kernels/matmul");
    for n in [32usize, 64, 128] {
        let a = random_f32(n * n, 3);
        let b = random_f32(n * n, 4);
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| kernels::naive::gemm_nn(black_box(&a), black_box(&b), &mut out, n, n));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| kernels::gemm_nn(black_box(&a), black_box(&b), &mut out, n, n));
        });
    }
    group.finish();
}

fn bench_matmul_transpose(c: &mut Criterion) {
    // x · Wᵀ — the Dense-layer product. Both variants run the raw
    // kernel on a preallocated output so the comparison is order/
    // blocking only; `Tensor::matmul_transpose` forwards straight to
    // the blocked kernel.
    let mut group = c.benchmark_group("kernels/matmul_transpose");
    for n in [32usize, 64, 128] {
        let a = random_f32(n * n, 5);
        let w = random_f32(n * n, 6);
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| kernels::naive::gemm_nt(black_box(&a), black_box(&w), &mut out, n, n));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| kernels::gemm_nt(black_box(&a), black_box(&w), &mut out, n, n));
        });
    }
    group.finish();
}

fn bench_gemv_batch(c: &mut Criterion) {
    // The funcsim level-to-current GEMV: cols×rows f64 matrix, f32
    // levels, batched. Shapes mirror IdealTile/AnalyticalTile usage.
    let mut group = c.benchmark_group("kernels/gemv_batch");
    for (n, batch) in [(32usize, 64usize), (64, 1), (64, 64), (64, 256), (128, 64)] {
        let mat = random_f64(n * n, 7);
        let levels = random_f32(batch * n, 8);
        let mut out = vec![0.0f64; batch * n];
        let label = format!("{n}x{n}xb{batch}");
        group.bench_with_input(BenchmarkId::new("naive", &label), &n, |bench, _| {
            bench.iter(|| {
                for (v, o) in levels.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
                    kernels::naive::gemv_levels_scaled(black_box(&mat), v, 0.25, o);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked", &label), &n, |bench, _| {
            bench.iter(|| {
                for (v, o) in levels.chunks_exact(n).zip(out.chunks_exact_mut(n)) {
                    kernels::gemv_levels_scaled(black_box(&mat), v, 0.25, o);
                }
            });
        });
    }
    group.finish();
}

/// Pentadiagonal CSR in the sparsity ballpark of crossbar circuit
/// Jacobians (~5 entries per row).
fn pentadiagonal(n: usize) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in 0..n {
        for d in [-2isize, -1, 0, 1, 2] {
            let c = r as isize + d;
            if (0..n as isize).contains(&c) {
                col_idx.push(c as usize);
                values.push(if d == 0 { 4.2 } else { -1.0 });
            }
        }
        row_ptr.push(col_idx.len());
    }
    (row_ptr, col_idx, values)
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/spmv");
    for n in [128usize, 1024, 8192] {
        let (row_ptr, col_idx, values) = pentadiagonal(n);
        let x = random_f64(n, 9);
        let mut y = vec![0.0f64; n];
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| {
                kernels::naive::spmv_csr(&row_ptr, &col_idx, &values, black_box(&x), &mut y)
            });
        });
        // The blocked variant is the prepared plan with the build
        // outside the timing loop: that is how the solvers use it (one
        // plan per sparsity pattern, many products per plan).
        let plan = kernels::SpmvPlan::new(&row_ptr, &col_idx, &values, n);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| plan.apply(black_box(&x), &mut y));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dot, bench_matmul, bench_matmul_transpose, bench_gemv_batch, bench_spmv
}
criterion_main!(benches);

//! Plain-text table rendering and CSV output for experiment reports.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table that can also serialize itself as CSV.
///
/// # Example
///
/// ```
/// use geniex_bench::table::Table;
/// let mut t = Table::new(&["design", "accuracy"]);
/// t.row(&["16x16".into(), "0.912".into()]);
/// let text = t.render();
/// assert!(text.contains("16x16"));
/// assert!(t.to_csv().starts_with("design,accuracy\n"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count — rows
    /// are authored by the experiment code, so a mismatch is a bug.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (k, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if k > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Serializes as CSV (no quoting; experiment cells never contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats an accuracy as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats a float with the given number of decimals.
pub fn fix(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "longer"]);
        t.row(&["xxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn csv_file_round_trip() {
        let mut t = Table::new(&["k"]);
        t.row(&["v".into()]);
        let dir = std::env::temp_dir().join("geniex_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "k\nv\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.9163), "91.63");
        assert_eq!(fix(1.23456, 2), "1.23");
    }
}

//! Shared harness for the experiment binaries that regenerate every
//! table and figure of the GENIEx evaluation (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each `src/bin/figN_*.rs` binary prints the same rows/series the
//! paper reports and writes a CSV into `results/`.

pub mod gate;
pub mod manifest;
pub mod setup;
pub mod table;
pub mod trace_report;

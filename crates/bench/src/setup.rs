//! Standard workload preparation shared by the experiment binaries.
//!
//! Every figure needs the same ingredients: a trained MicroResNet, a
//! held-out test set, and (per crossbar design point) a trained GENIEx
//! surrogate. Budgets here are the "full experiment" settings; tests
//! use smaller ones inline.
//!
//! All expensive intermediates route through the content-addressed
//! artifact store (`results/store/`, see `crates/store` and DESIGN.md
//! §10): truth datasets, trained surrogates, trained vision models,
//! and solver sweep blobs are keyed by their full producing config, so
//! a warm rerun of any binary skips the circuit solves and training
//! epochs entirely. `GENIEX_STORE=off|read|readwrite` controls the
//! behavior; every path is deterministic, so a cached artifact is
//! bit-identical to a recomputed one.

use funcsim::{harvest_stimuli, ArchConfig};
use geniex::dataset::{generate, label_stimuli, merge, DatasetConfig, SurrogateDataset};
use geniex::{Geniex, TrainConfig};
use nn::Tensor;
use std::sync::OnceLock;
use std::time::Instant;
use store::{Key, KeyBuilder, Store};
use vision::{train_model, MicroResNet, NetworkSpec, SynthSpec, SynthVision, TrainOptions};
use xbar::nf::NfSummary;
use xbar::sweep::{current_pairs, nf_distribution, CurrentPairs, SweepPoint};
use xbar::{CrossbarParams, XbarError};

/// Training images per class for the standard workloads.
pub const TRAIN_PER_CLASS: usize = 80;
/// Held-out test images per class (128 images for synth-s: accuracy
/// resolution of ±0.8%).
pub const TEST_PER_CLASS: usize = 16;
/// Seed for the training split.
pub const TRAIN_SEED: u64 = 1;
/// Seed for the held-out split (disjoint stream from training).
pub const TEST_SEED: u64 = 999;
/// Weight-init seed of the standard vision model.
pub const MODEL_SEED: u64 = 2;
/// Weight-init seed of the standard surrogates.
pub const SURROGATE_INIT_SEED: u64 = 3;
/// RNG seed of the random stratified surrogate training sets.
pub const SURROGATE_DATA_SEED: u64 = 7;

/// The process-wide artifact store, rooted at `results/store/` with
/// the mode taken from `GENIEX_STORE` at first use.
pub fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store::open(results_dir().join("store")))
}

/// A ready-to-measure workload: trained model + test set.
pub struct Workload {
    /// The trained FP32 reference model.
    pub model: MicroResNet,
    /// Held-out evaluation set.
    pub test: SynthVision,
    /// FP32 test accuracy of the trained model.
    pub fp32_accuracy: f64,
}

/// Trains the standard MicroResNet workload for a dataset variant.
/// Deterministic: every binary that calls this gets the same model
/// (whether freshly trained or loaded from the artifact store).
///
/// # Panics
///
/// Panics if dataset generation or training fails (experiment setup
/// is infallible by construction; a failure is a bug).
pub fn standard_workload(spec: SynthSpec) -> Workload {
    let start = Instant::now();
    let train =
        SynthVision::generate(spec, TRAIN_PER_CLASS, TRAIN_SEED).expect("training set generation");
    let test = SynthVision::generate(spec, TEST_PER_CLASS, TEST_SEED).expect("test set generation");

    let options = TrainOptions {
        epochs: match spec {
            SynthSpec::SynthS => 25,
            SynthSpec::SynthL => 30,
        },
        batch_size: 32,
        learning_rate: 2e-3,
        seed: 5,
    };
    let mut key = KeyBuilder::new(store::KIND_VISION_MODEL);
    key.nested("spec", &spec)
        .usize("train_per_class", TRAIN_PER_CLASS)
        .u64("train_seed", TRAIN_SEED)
        .u64("model_seed", MODEL_SEED)
        .nested("options", &options);
    let key = key.finish();

    let cached = store()
        .load(&key)
        .and_then(|bytes| MicroResNet::load(&mut std::io::Cursor::new(bytes)).ok());
    let mut model = match cached {
        Some(model) => {
            eprintln!("[setup] loaded cached {} model ({key})", spec.name());
            model
        }
        None => {
            let mut model = MicroResNet::new(spec, MODEL_SEED);
            train_model(&mut model, &train, &options).expect("model training");
            let mut bytes = Vec::new();
            model.save(&mut bytes).expect("model serializes");
            let _ = store().save(&key, &bytes);
            eprintln!(
                "[setup] {} model trained in {:.1?} (stored as {key})",
                spec.name(),
                start.elapsed()
            );
            model
        }
    };
    let fp32_accuracy = vision::evaluate(&mut model, &test, 64).expect("evaluation");
    eprintln!(
        "[setup] {} fp32 test accuracy {:.2}%",
        spec.name(),
        100.0 * fp32_accuracy
    );
    Workload {
        model,
        test,
        fp32_accuracy,
    }
}

/// Loads a truth dataset from the artifact store, or generates it on
/// the circuit simulator and caches it. Keyed by the design point and
/// the full generation config, so any parameter or seed change misses.
///
/// # Panics
///
/// Panics if generation fails (deterministic setup).
pub fn cached_dataset(params: &CrossbarParams, config: &DatasetConfig) -> SurrogateDataset {
    let mut kb = KeyBuilder::new(store::KIND_DATASET);
    kb.str("producer", "generate")
        .nested("params", params)
        .nested("config", config);
    let key = kb.finish();
    if let Some(data) = load_dataset(&key, params) {
        eprintln!("[setup] loaded cached truth dataset ({key})");
        return data;
    }
    let data = generate(params, config).expect("truth dataset generation");
    save_dataset(&key, &data);
    data
}

/// Labels harvested `(V, G)` stimuli on the circuit simulator, or
/// loads the previously labelled set. Keyed by the design point plus
/// the stimulus content, so a different workload, slicing config, or
/// harvest seed produces a different key.
///
/// # Panics
///
/// Panics if labelling fails (deterministic setup).
pub fn cached_labelled_stimuli(
    params: &CrossbarParams,
    stimuli: &[(&[f32], &[f32])],
) -> SurrogateDataset {
    let mut kb = KeyBuilder::new(store::KIND_DATASET);
    kb.str("producer", "label_stimuli").nested("params", params);
    kb.usize("n", stimuli.len());
    for (v, g) in stimuli {
        kb.f32_slice("v", v).f32_slice("g", g);
    }
    let key = kb.finish();
    if let Some(data) = load_dataset(&key, params) {
        eprintln!("[setup] loaded cached labelled stimuli ({key})");
        return data;
    }
    let data = label_stimuli(params, stimuli.iter().copied()).expect("stimulus labelling");
    save_dataset(&key, &data);
    data
}

fn load_dataset(key: &Key, params: &CrossbarParams) -> Option<SurrogateDataset> {
    let bytes = store().load(key)?;
    SurrogateDataset::load(&mut bytes.as_slice(), params).ok()
}

fn save_dataset(key: &Key, data: &SurrogateDataset) {
    let mut bytes = Vec::new();
    if data.save(&mut bytes).is_ok() {
        let _ = store().save(key, &bytes);
    }
}

fn load_surrogate(key: &Key, params: &CrossbarParams) -> Option<Geniex> {
    let bytes = store().load(key)?;
    Geniex::load(&mut std::io::Cursor::new(bytes), params).ok()
}

fn save_surrogate(key: &Key, surrogate: &Geniex) {
    let mut bytes = Vec::new();
    if surrogate.save(&mut bytes).is_ok() {
        let _ = store().save(key, &bytes);
    }
}

/// Budget for surrogate training at one design point.
#[derive(Debug, Clone, Copy)]
pub struct SurrogateBudget {
    /// Circuit-simulated (V, G) samples.
    pub samples: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for SurrogateBudget {
    fn default() -> Self {
        SurrogateBudget {
            samples: 4000,
            hidden: 256,
            epochs: 150,
        }
    }
}

fn random_dataset_config(samples: usize) -> DatasetConfig {
    DatasetConfig {
        samples,
        seed: SURROGATE_DATA_SEED,
        ..DatasetConfig::default()
    }
}

fn surrogate_train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        learning_rate: 1e-3,
        seed: 4,
        ..TrainConfig::default()
    }
}

/// Generates a dataset on the circuit simulator and trains a GENIEx
/// surrogate for one crossbar design point. The surrogate is keyed by
/// its complete producing config (design point, dataset config,
/// width, seeds, training hyperparams), so a warm run loads it without
/// touching the dataset at all.
///
/// # Panics
///
/// Panics if generation or training fails (deterministic setup).
pub fn train_surrogate(params: &CrossbarParams, budget: &SurrogateBudget) -> Geniex {
    let data_config = random_dataset_config(budget.samples);
    let train_config = surrogate_train_config(budget.epochs);
    let mut kb = KeyBuilder::new(store::KIND_SURROGATE);
    kb.str("flavor", "rand")
        .nested("params", params)
        .nested("dataset", &data_config)
        .usize("hidden", budget.hidden)
        .u64("init_seed", SURROGATE_INIT_SEED)
        .nested("train", &train_config);
    let key = kb.finish();
    if let Some(surrogate) = load_surrogate(&key, params) {
        eprintln!("[setup] loaded cached surrogate ({key})");
        return surrogate;
    }

    let start = Instant::now();
    let data = cached_dataset(params, &data_config);
    let mut surrogate =
        Geniex::new(params, budget.hidden, SURROGATE_INIT_SEED).expect("surrogate construction");
    let report = surrogate
        .train(&data, &train_config)
        .expect("surrogate training");
    eprintln!(
        "[setup] surrogate for {}x{} Ron={}k V={} trained in {:.1?} (loss {:.5})",
        params.rows,
        params.cols,
        params.r_on / 1e3,
        params.v_supply,
        start.elapsed(),
        report.final_loss
    );
    save_surrogate(&key, &surrogate);
    surrogate
}

/// Trains a surrogate the way the paper does (Section 6): the training
/// vectors are collected from the *workload itself* — the functional
/// simulator's bit-sliced tile patterns for this design point — mixed
/// with random stratified samples for broader coverage, all labelled
/// on the circuit simulator.
///
/// Stimulus harvesting is a cheap funcsim forward pass and always
/// runs; the surrogate key hashes the harvested stimulus *content*, so
/// it captures the workload's weights, the slicing config, and the
/// harvest seed without naming them. On a key hit the labelling solves
/// and training epochs are skipped entirely.
///
/// # Panics
///
/// Panics if any stage fails (deterministic setup).
pub fn train_surrogate_for_workload(
    params: &CrossbarParams,
    budget: &SurrogateBudget,
    spec: &NetworkSpec,
    arch: &ArchConfig,
    sample_images: &Tensor,
) -> Geniex {
    let harvested = harvest_stimuli(spec.clone(), arch, sample_images, budget.samples / 2, 11)
        .expect("stimulus harvesting");
    let random_config = random_dataset_config(budget.samples - budget.samples / 2);
    let train_config = surrogate_train_config(budget.epochs);

    let mut kb = KeyBuilder::new(store::KIND_SURROGATE);
    kb.str("flavor", "workload").nested("params", params);
    kb.usize("n_stimuli", harvested.len());
    for s in &harvested {
        kb.f32_slice("v", &s.v_levels).f32_slice("g", &s.g_levels);
    }
    kb.nested("random", &random_config)
        .usize("hidden", budget.hidden)
        .u64("init_seed", SURROGATE_INIT_SEED)
        .nested("train", &train_config);
    let key = kb.finish();
    if let Some(surrogate) = load_surrogate(&key, params) {
        eprintln!("[setup] loaded cached workload surrogate ({key})");
        return surrogate;
    }

    let start = Instant::now();
    let pairs: Vec<(&[f32], &[f32])> = harvested
        .iter()
        .map(|s| (s.v_levels.as_slice(), s.g_levels.as_slice()))
        .collect();
    let workload_set = cached_labelled_stimuli(params, &pairs);
    let random_set = cached_dataset(params, &random_config);
    let data = merge(vec![workload_set, random_set]).expect("same design point");

    let mut surrogate =
        Geniex::new(params, budget.hidden, SURROGATE_INIT_SEED).expect("surrogate construction");
    let report = surrogate
        .train(&data, &train_config)
        .expect("surrogate training");
    eprintln!(
        "[setup] workload surrogate for {}x{} Ron={}k V={} trained in {:.1?} (loss {:.5})",
        params.rows,
        params.cols,
        params.r_on / 1e3,
        params.v_supply,
        start.elapsed(),
        report.final_loss
    );
    save_surrogate(&key, &surrogate);
    surrogate
}

/// Trains (or loads) a surrogate on an explicit, already materialized
/// dataset — the ablation binaries sweep hyperparameters over one
/// dataset. Keyed by the dataset *content* plus the hyperparameters,
/// so every swept variant caches independently.
///
/// # Panics
///
/// Panics if training fails (deterministic setup).
pub fn cached_surrogate(
    data: &SurrogateDataset,
    hidden: usize,
    init_seed: u64,
    train_config: &TrainConfig,
) -> Geniex {
    let mut kb = KeyBuilder::new(store::KIND_SURROGATE);
    kb.str("flavor", "explicit")
        .nested("dataset", data)
        .usize("hidden", hidden)
        .u64("init_seed", init_seed)
        .nested("train", train_config);
    let key = kb.finish();
    if let Some(surrogate) = load_surrogate(&key, &data.params) {
        eprintln!("[setup] loaded cached surrogate ({key})");
        return surrogate;
    }
    let mut surrogate =
        Geniex::new(&data.params, hidden, init_seed).expect("surrogate construction");
    surrogate
        .train(data, train_config)
        .expect("surrogate training");
    save_surrogate(&key, &surrogate);
    surrogate
}

/// Loads a cached `f64` blob or computes and caches it. The generic
/// escape hatch for solver-derived buffers that aren't full datasets
/// (sweep samples, paired currents, label vectors). The caller owns
/// the key; payloads are raw little-endian `f64`s, bit-exact across
/// runs.
///
/// # Errors
///
/// Propagates `compute` failures.
pub fn cached_f64_blob<E>(
    key: &Key,
    compute: impl FnOnce() -> Result<Vec<f64>, E>,
) -> Result<Vec<f64>, E> {
    if let Some(values) = load_f64_blob(key) {
        eprintln!("[setup] loaded cached blob ({key})");
        return Ok(values);
    }
    let values = compute()?;
    save_f64_blob(key, &values);
    Ok(values)
}

fn load_f64_blob(key: &Key) -> Option<Vec<f64>> {
    let bytes = store().load(key)?;
    if bytes.len() % 8 != 0 {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect(),
    )
}

fn save_f64_blob(key: &Key, values: &[f64]) {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let _ = store().save(key, &bytes);
}

/// Store-backed [`nf_distribution`]: the NF sample stream is cached;
/// the summary is recomputed from it (deterministic).
///
/// # Errors
///
/// Propagates solver failures.
pub fn cached_nf_distribution(
    params: &CrossbarParams,
    n_stimuli: usize,
    seed: u64,
    label: &str,
) -> Result<SweepPoint, XbarError> {
    let mut kb = KeyBuilder::new(store::KIND_SWEEP);
    kb.str("op", "nf_distribution")
        .nested("params", params)
        .usize("n_stimuli", n_stimuli)
        .u64("seed", seed);
    let key = kb.finish();
    if let Some(samples) = load_f64_blob(&key) {
        if let Some(summary) = NfSummary::from_samples(&samples) {
            eprintln!("[setup] loaded cached NF sweep ({key})");
            return Ok(SweepPoint {
                label: label.to_string(),
                summary,
                samples,
            });
        }
    }
    let point = nf_distribution(params, n_stimuli, seed, label)?;
    save_f64_blob(&key, &point.samples);
    Ok(point)
}

/// Store-backed [`current_pairs`]: ideal and non-ideal currents cached
/// as one blob (equal halves).
///
/// # Errors
///
/// Propagates solver failures.
pub fn cached_current_pairs(
    params: &CrossbarParams,
    n_stimuli: usize,
    seed: u64,
) -> Result<CurrentPairs, XbarError> {
    let mut kb = KeyBuilder::new(store::KIND_SWEEP);
    kb.str("op", "current_pairs")
        .nested("params", params)
        .usize("n_stimuli", n_stimuli)
        .u64("seed", seed);
    let key = kb.finish();
    if let Some(flat) = load_f64_blob(&key) {
        if flat.len() % 2 == 0 {
            let (ideal, non_ideal) = flat.split_at(flat.len() / 2);
            eprintln!("[setup] loaded cached current pairs ({key})");
            return Ok(CurrentPairs {
                ideal: ideal.to_vec(),
                non_ideal: non_ideal.to_vec(),
            });
        }
    }
    let pairs = current_pairs(params, n_stimuli, seed)?;
    let mut flat = pairs.ideal.clone();
    flat.extend_from_slice(&pairs.non_ideal);
    save_f64_blob(&key, &flat);
    Ok(pairs)
}

/// The standard crossbar design points used across the figures. The
/// paper sweeps {16, 32, 64}; this reproduction scales to {8, 16, 32}
/// so every experiment (including ground-truth circuit validation)
/// stays in laptop territory — the *trends* across the sweep are the
/// reproduction target (DESIGN.md §1).
pub const SIZES: [usize; 3] = [8, 16, 32];
/// Default crossbar size for single-design-point figures (paper: 64).
pub const DEFAULT_SIZE: usize = 16;
/// ON-resistance sweep (ohms), as in the paper.
pub const RONS: [f64; 3] = [50e3, 100e3, 300e3];
/// ON/OFF conductance ratio sweep, as in the paper.
pub const ON_OFFS: [f64; 3] = [2.0, 6.0, 10.0];

/// Builds the paper-default design point at a given crossbar size
/// (Ron 100 kΩ, ON/OFF 6, Rsource 500 Ω, Rsink 100 Ω).
///
/// # Panics
///
/// Panics on invalid parameters (fixed constants here).
pub fn design_point(size: usize) -> CrossbarParams {
    CrossbarParams::builder(size, size)
        .build()
        .expect("valid design point")
}

/// The nominal design point for the accuracy experiments (Figs. 7–9):
/// Ron 50 kΩ, ON/OFF 2, and the harsher of the paper's listed
/// source/sink values (Rsource 1000 Ω, Rsink 500 Ω).
///
/// At our scaled-down crossbar sizes the paper-default point is too
/// benign to show accuracy movement (the paper's own 16×16 bar shows
/// ≤1%); this point reproduces paper-scale degradation (~20-25% at
/// 16×16) so the model comparisons have signal to resolve.
///
/// # Panics
///
/// Panics on invalid parameters (fixed constants here).
pub fn accuracy_design_point(size: usize) -> CrossbarParams {
    CrossbarParams::builder(size, size)
        .r_on(50e3)
        .on_off_ratio(2.0)
        .r_source(1000.0)
        .r_sink(500.0)
        .build()
        .expect("valid design point")
}

/// Evaluates a programmed crossbar network's accuracy with the test
/// set batched across the shared worker pool (`GENIEX_THREADS`).
///
/// `CrossbarNetwork::forward` takes `&self` and every backend is
/// `Send + Sync`, so workers share the programmed state. Batches map
/// in parallel and the correct counts reduce in batch-index order, so
/// the result is identical for any thread count.
///
/// # Panics
///
/// Panics on inference failures (deterministic experiment setup).
pub fn parallel_accuracy(
    net: &funcsim::CrossbarNetwork,
    data: &vision::SynthVision,
    batch_size: usize,
) -> f64 {
    let indices: Vec<usize> = (0..data.len()).collect();
    let batches: Vec<&[usize]> = indices.chunks(batch_size.max(1)).collect();
    let counts = parallel::par_map_grained(&batches, 1, |piece| {
        let (images, labels) = data.batch(piece).expect("batch assembly");
        let logits = net.forward(&images).expect("crossbar inference");
        let classes = net.classes();
        let mut local = 0usize;
        for (b, &label) in labels.iter().enumerate() {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty logits");
            if pred == label {
                local += 1;
            }
        }
        local
    });
    let correct: usize = counts.into_iter().sum();
    correct as f64 / data.len().max(1) as f64
}

/// Results directory used by all experiment binaries.
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_matches_defaults() {
        let p = design_point(16);
        assert_eq!(p.rows, 16);
        assert_eq!(p.r_on, 100e3);
    }

    #[test]
    fn results_dir_is_under_repo_root() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn budgets_are_sane() {
        let b = SurrogateBudget::default();
        assert!(b.samples >= 1000);
        assert!(b.hidden >= 50);
    }

    #[test]
    fn store_roots_under_results() {
        assert!(store().root().ends_with("results/store"));
    }

    #[test]
    fn f64_blob_round_trips_through_temp_store() {
        // Use a private store so the test never touches results/store.
        let root = std::env::temp_dir().join(format!("bench-blob-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let s = Store::with_mode(&root, store::Mode::ReadWrite);
        let mut kb = KeyBuilder::new(store::KIND_SWEEP);
        kb.str("op", "test").u64("seed", 1);
        let key = kb.finish();
        assert!(s.load(&key).is_none());
        let values = [1.5f64, -2.25, 0.0, f64::MIN_POSITIVE];
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        s.save(&key, &bytes).unwrap();
        let back = s.load(&key).unwrap();
        let decoded: Vec<f64> = back
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(decoded, values);
        std::fs::remove_dir_all(&root).ok();
    }
}

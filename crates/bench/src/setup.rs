//! Standard workload preparation shared by the experiment binaries.
//!
//! Every figure needs the same ingredients: a trained MicroResNet, a
//! held-out test set, and (per crossbar design point) a trained GENIEx
//! surrogate. Budgets here are the "full experiment" settings; tests
//! use smaller ones inline.

use funcsim::{harvest_stimuli, ArchConfig};
use geniex::dataset::{generate, label_stimuli, merge, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use nn::Tensor;
use std::time::Instant;
use vision::{train_model, MicroResNet, NetworkSpec, SynthSpec, SynthVision, TrainOptions};
use xbar::CrossbarParams;

/// Training images per class for the standard workloads.
pub const TRAIN_PER_CLASS: usize = 80;
/// Held-out test images per class (128 images for synth-s: accuracy
/// resolution of ±0.8%).
pub const TEST_PER_CLASS: usize = 16;
/// Seed for the training split.
pub const TRAIN_SEED: u64 = 1;
/// Seed for the held-out split (disjoint stream from training).
pub const TEST_SEED: u64 = 999;

/// A ready-to-measure workload: trained model + test set.
pub struct Workload {
    /// The trained FP32 reference model.
    pub model: MicroResNet,
    /// Held-out evaluation set.
    pub test: SynthVision,
    /// FP32 test accuracy of the trained model.
    pub fp32_accuracy: f64,
}

/// Trains the standard MicroResNet workload for a dataset variant.
/// Deterministic: every binary that calls this gets the same model.
///
/// # Panics
///
/// Panics if dataset generation or training fails (experiment setup
/// is infallible by construction; a failure is a bug).
pub fn standard_workload(spec: SynthSpec) -> Workload {
    let start = Instant::now();
    let train =
        SynthVision::generate(spec, TRAIN_PER_CLASS, TRAIN_SEED).expect("training set generation");
    let test = SynthVision::generate(spec, TEST_PER_CLASS, TEST_SEED).expect("test set generation");

    // Training is deterministic, so a cached model is identical to a
    // fresh one; the cache only saves wall-clock time.
    let cache = results_dir()
        .join("models")
        .join(format!("{}.bin", spec.name()));
    let mut model = match std::fs::read(&cache) {
        Ok(bytes) => {
            let model = MicroResNet::load(&mut std::io::Cursor::new(bytes))
                .expect("cached model deserializes");
            eprintln!("[setup] loaded cached {} model", spec.name());
            model
        }
        Err(_) => {
            let mut model = MicroResNet::new(spec, 2);
            let options = TrainOptions {
                epochs: match spec {
                    SynthSpec::SynthS => 25,
                    SynthSpec::SynthL => 30,
                },
                batch_size: 32,
                learning_rate: 2e-3,
                seed: 5,
            };
            train_model(&mut model, &train, &options).expect("model training");
            if let Some(parent) = cache.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let mut bytes = Vec::new();
            model.save(&mut bytes).expect("model serializes");
            let _ = std::fs::write(&cache, bytes);
            eprintln!(
                "[setup] {} model trained in {:.1?} (cached for reuse)",
                spec.name(),
                start.elapsed()
            );
            model
        }
    };
    let fp32_accuracy = vision::evaluate(&mut model, &test, 64).expect("evaluation");
    eprintln!(
        "[setup] {} fp32 test accuracy {:.2}%",
        spec.name(),
        100.0 * fp32_accuracy
    );
    Workload {
        model,
        test,
        fp32_accuracy,
    }
}

/// Cache key for a surrogate at one design point and budget.
fn surrogate_cache_path(
    params: &CrossbarParams,
    budget: &SurrogateBudget,
    tag: &str,
) -> std::path::PathBuf {
    results_dir().join("surrogates").join(format!(
        "{tag}_s{}_r{}k_v{}_o{}_src{}_snk{}_h{}_n{}_e{}.bin",
        params.rows,
        params.r_on / 1e3,
        params.v_supply,
        params.on_off_ratio,
        params.r_source,
        params.r_sink,
        budget.hidden,
        budget.samples,
        budget.epochs,
    ))
}

fn load_cached_surrogate(path: &std::path::Path, params: &CrossbarParams) -> Option<Geniex> {
    let bytes = std::fs::read(path).ok()?;
    Geniex::load(&mut std::io::Cursor::new(bytes), params).ok()
}

fn store_surrogate(path: &std::path::Path, surrogate: &Geniex) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut bytes = Vec::new();
    if surrogate.save(&mut bytes).is_ok() {
        let _ = std::fs::write(path, bytes);
    }
}

/// Budget for surrogate training at one design point.
#[derive(Debug, Clone, Copy)]
pub struct SurrogateBudget {
    /// Circuit-simulated (V, G) samples.
    pub samples: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for SurrogateBudget {
    fn default() -> Self {
        SurrogateBudget {
            samples: 4000,
            hidden: 256,
            epochs: 150,
        }
    }
}

/// Generates a dataset on the circuit simulator and trains a GENIEx
/// surrogate for one crossbar design point.
///
/// # Panics
///
/// Panics if generation or training fails (deterministic setup).
pub fn train_surrogate(params: &CrossbarParams, budget: &SurrogateBudget) -> Geniex {
    let cache = surrogate_cache_path(params, budget, "rand");
    if let Some(surrogate) = load_cached_surrogate(&cache, params) {
        eprintln!("[setup] loaded cached surrogate {}", cache.display());
        return surrogate;
    }
    let start = Instant::now();
    let data = generate(
        params,
        &DatasetConfig {
            samples: budget.samples,
            seed: 7,
            ..DatasetConfig::default()
        },
    )
    .expect("surrogate dataset generation");
    let mut surrogate = Geniex::new(params, budget.hidden, 3).expect("surrogate construction");
    let report = surrogate
        .train(
            &data,
            &TrainConfig {
                epochs: budget.epochs,
                batch_size: 32,
                learning_rate: 1e-3,
                seed: 4,
                ..TrainConfig::default()
            },
        )
        .expect("surrogate training");
    eprintln!(
        "[setup] surrogate for {}x{} Ron={}k V={} trained in {:.1?} (loss {:.5})",
        params.rows,
        params.cols,
        params.r_on / 1e3,
        params.v_supply,
        start.elapsed(),
        report.final_loss
    );
    store_surrogate(&cache, &surrogate);
    surrogate
}

/// Trains a surrogate the way the paper does (Section 6): the training
/// vectors are collected from the *workload itself* — the functional
/// simulator's bit-sliced tile patterns for this design point — mixed
/// with random stratified samples for broader coverage, all labelled
/// on the circuit simulator.
///
/// # Panics
///
/// Panics if any stage fails (deterministic setup).
pub fn train_surrogate_for_workload(
    params: &CrossbarParams,
    budget: &SurrogateBudget,
    spec: &NetworkSpec,
    arch: &ArchConfig,
    sample_images: &Tensor,
) -> Geniex {
    // The harvested distribution depends on the workload's weights and
    // the slicing config; fold both into the cache key.
    let tag = format!(
        "wl{}x{}_st{}_sl{}",
        spec.input_shape[0], spec.classes, arch.stream_width, arch.slice_width
    );
    let cache = surrogate_cache_path(params, budget, &tag);
    if let Some(surrogate) = load_cached_surrogate(&cache, params) {
        eprintln!("[setup] loaded cached surrogate {}", cache.display());
        return surrogate;
    }
    let start = Instant::now();
    let harvested = harvest_stimuli(spec.clone(), arch, sample_images, budget.samples / 2, 11)
        .expect("stimulus harvesting");
    let pairs: Vec<(&[f32], &[f32])> = harvested
        .iter()
        .map(|s| (s.v_levels.as_slice(), s.g_levels.as_slice()))
        .collect();
    let workload_set = label_stimuli(params, pairs).expect("stimulus labelling");
    let random_set = generate(
        params,
        &DatasetConfig {
            samples: budget.samples - budget.samples / 2,
            seed: 7,
            ..DatasetConfig::default()
        },
    )
    .expect("random dataset generation");
    let data = merge(vec![workload_set, random_set]).expect("same design point");

    let mut surrogate = Geniex::new(params, budget.hidden, 3).expect("surrogate construction");
    let report = surrogate
        .train(
            &data,
            &TrainConfig {
                epochs: budget.epochs,
                batch_size: 32,
                learning_rate: 1e-3,
                seed: 4,
                ..TrainConfig::default()
            },
        )
        .expect("surrogate training");
    eprintln!(
        "[setup] workload surrogate for {}x{} Ron={}k V={} trained in {:.1?} (loss {:.5})",
        params.rows,
        params.cols,
        params.r_on / 1e3,
        params.v_supply,
        start.elapsed(),
        report.final_loss
    );
    store_surrogate(&cache, &surrogate);
    surrogate
}

/// The standard crossbar design points used across the figures. The
/// paper sweeps {16, 32, 64}; this reproduction scales to {8, 16, 32}
/// so every experiment (including ground-truth circuit validation)
/// stays in laptop territory — the *trends* across the sweep are the
/// reproduction target (DESIGN.md §1).
pub const SIZES: [usize; 3] = [8, 16, 32];
/// Default crossbar size for single-design-point figures (paper: 64).
pub const DEFAULT_SIZE: usize = 16;
/// ON-resistance sweep (ohms), as in the paper.
pub const RONS: [f64; 3] = [50e3, 100e3, 300e3];
/// ON/OFF conductance ratio sweep, as in the paper.
pub const ON_OFFS: [f64; 3] = [2.0, 6.0, 10.0];

/// Builds the paper-default design point at a given crossbar size
/// (Ron 100 kΩ, ON/OFF 6, Rsource 500 Ω, Rsink 100 Ω).
///
/// # Panics
///
/// Panics on invalid parameters (fixed constants here).
pub fn design_point(size: usize) -> CrossbarParams {
    CrossbarParams::builder(size, size)
        .build()
        .expect("valid design point")
}

/// The nominal design point for the accuracy experiments (Figs. 7–9):
/// Ron 50 kΩ, ON/OFF 2, and the harsher of the paper's listed
/// source/sink values (Rsource 1000 Ω, Rsink 500 Ω).
///
/// At our scaled-down crossbar sizes the paper-default point is too
/// benign to show accuracy movement (the paper's own 16×16 bar shows
/// ≤1%); this point reproduces paper-scale degradation (~20-25% at
/// 16×16) so the model comparisons have signal to resolve.
///
/// # Panics
///
/// Panics on invalid parameters (fixed constants here).
pub fn accuracy_design_point(size: usize) -> CrossbarParams {
    CrossbarParams::builder(size, size)
        .r_on(50e3)
        .on_off_ratio(2.0)
        .r_source(1000.0)
        .r_sink(500.0)
        .build()
        .expect("valid design point")
}

/// Evaluates a programmed crossbar network's accuracy with the test
/// set batched across the shared worker pool (`GENIEX_THREADS`).
///
/// `CrossbarNetwork::forward` takes `&self` and every backend is
/// `Send + Sync`, so workers share the programmed state. Batches map
/// in parallel and the correct counts reduce in batch-index order, so
/// the result is identical for any thread count.
///
/// # Panics
///
/// Panics on inference failures (deterministic experiment setup).
pub fn parallel_accuracy(
    net: &funcsim::CrossbarNetwork,
    data: &vision::SynthVision,
    batch_size: usize,
) -> f64 {
    let indices: Vec<usize> = (0..data.len()).collect();
    let batches: Vec<&[usize]> = indices.chunks(batch_size.max(1)).collect();
    let counts = parallel::par_map_grained(&batches, 1, |piece| {
        let (images, labels) = data.batch(piece).expect("batch assembly");
        let logits = net.forward(&images).expect("crossbar inference");
        let classes = net.classes();
        let mut local = 0usize;
        for (b, &label) in labels.iter().enumerate() {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty logits");
            if pred == label {
                local += 1;
            }
        }
        local
    });
    let correct: usize = counts.into_iter().sum();
    correct as f64 / data.len().max(1) as f64
}

/// Results directory used by all experiment binaries.
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_matches_defaults() {
        let p = design_point(16);
        assert_eq!(p.rows, 16);
        assert_eq!(p.r_on, 100e3);
    }

    #[test]
    fn results_dir_is_under_repo_root() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn budgets_are_sane() {
        let b = SurrogateBudget::default();
        assert!(b.samples >= 1000);
        assert!(b.hidden >= 50);
    }
}

//! Post-processing for Chrome Trace Event JSON: self-time and
//! critical-path breakdowns.
//!
//! A trace answers "when"; this module turns it back into "where did
//! the time go": for every span name it aggregates count, total
//! (inclusive) time, **self time** (total minus time spent in child
//! spans on the same thread), and the maximum single occurrence. The
//! per-phase view groups top-level spans (no parent on their thread),
//! whose total is the phase's contribution to the run's critical path
//! on that thread.

use std::collections::BTreeMap;

use telemetry::json::{parse, Json};

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    pub count: u64,
    /// Inclusive wall time (µs) summed over occurrences.
    pub total_us: f64,
    /// Exclusive time (µs): total minus child-span time.
    pub self_us: f64,
    /// Longest single occurrence (µs).
    pub max_us: f64,
}

/// Breakdown of one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per span name, across all threads.
    pub spans: BTreeMap<String, SpanStat>,
    /// Top-level spans only (phases): name → inclusive stats.
    pub phases: BTreeMap<String, SpanStat>,
    /// Trace extent: last timestamp minus first (µs).
    pub wall_us: f64,
    /// Number of distinct threads with at least one event.
    pub threads: usize,
    /// Instant/counter events by name (convergence ticks, steals...).
    pub instants: BTreeMap<String, u64>,
}

/// Analyzes Chrome Trace Event JSON text (as written by
/// `telemetry::finish_trace`).
///
/// # Errors
///
/// Returns a description of the first problem: invalid JSON, no
/// `traceEvents` array, or a malformed event record. Unbalanced
/// begin/end pairs are an error here — the in-tree writer guarantees
/// balance, so imbalance means the file was truncated or edited.
pub fn analyze(text: &str) -> Result<TraceReport, String> {
    let root = parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no 'traceEvents' array")?;

    let mut report = TraceReport::default();
    // Per-tid stack of (name, start ts, child time so far).
    let mut stacks: BTreeMap<u64, Vec<(String, f64, f64)>> = BTreeMap::new();
    let (mut first_ts, mut last_ts) = (f64::INFINITY, f64::NEG_INFINITY);

    for event in events {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event without 'ph'")?;
        if ph == "M" {
            continue;
        }
        let tid = event
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or("event without 'tid'")?;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event without 'name'")?;
        let ts = event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or("event without 'ts'")?;
        first_ts = first_ts.min(ts);
        last_ts = last_ts.max(ts);
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => stack.push((name.to_string(), ts, 0.0)),
            "E" => {
                let (open_name, start, child_us) = stack
                    .pop()
                    .ok_or_else(|| format!("unmatched end '{name}' on tid {tid}"))?;
                if open_name != name {
                    return Err(format!(
                        "end '{name}' closes begin '{open_name}' on tid {tid}"
                    ));
                }
                let dur = (ts - start).max(0.0);
                let self_us = (dur - child_us).max(0.0);
                let stat = report.spans.entry(open_name.clone()).or_default();
                stat.count += 1;
                stat.total_us += dur;
                stat.self_us += self_us;
                stat.max_us = stat.max_us.max(dur);
                match stack.last_mut() {
                    // Credit inclusive time to the parent's child total.
                    Some(parent) => parent.2 += dur,
                    // Top of the stack: a phase.
                    None => {
                        let phase = report.phases.entry(open_name).or_default();
                        phase.count += 1;
                        phase.total_us += dur;
                        phase.self_us += self_us;
                        phase.max_us = phase.max_us.max(dur);
                    }
                }
            }
            "i" | "C" => {
                *report.instants.entry(name.to_string()).or_default() += 1;
            }
            other => return Err(format!("unknown phase '{other}'")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid} ends with {} unclosed span(s)",
                stack.len()
            ));
        }
    }
    report.wall_us = if first_ts.is_finite() && last_ts.is_finite() {
        (last_ts - first_ts).max(0.0)
    } else {
        0.0
    };
    report.threads = stacks.len();
    Ok(report)
}

fn fmt_us(us: f64) -> String {
    if us < 1e3 {
        format!("{us:.1} µs")
    } else if us < 1e6 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

/// Renders the breakdown: phases by inclusive time, then all span
/// names by self time (the profiling view: where cycles are actually
/// spent).
pub fn render(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} over {} thread(s), {} span name(s)\n\n",
        fmt_us(report.wall_us),
        report.threads,
        report.spans.len()
    ));

    if !report.phases.is_empty() {
        out.push_str("phases (top-level spans, inclusive):\n");
        out.push_str(&format!(
            "  {:<36} {:>8} {:>12} {:>8}\n",
            "phase", "count", "total", "% wall"
        ));
        let mut phases: Vec<_> = report.phases.iter().collect();
        phases.sort_by(|a, b| b.1.total_us.total_cmp(&a.1.total_us));
        for (name, stat) in phases {
            let pct = if report.wall_us > 0.0 {
                100.0 * stat.total_us / report.wall_us
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<36} {:>8} {:>12} {:>7.1}%\n",
                name,
                stat.count,
                fmt_us(stat.total_us),
                pct
            ));
        }
        out.push('\n');
    }

    out.push_str("self time by span (exclusive of children):\n");
    out.push_str(&format!(
        "  {:<36} {:>8} {:>12} {:>12} {:>12} {:>8}\n",
        "span", "count", "self", "total", "max", "% self"
    ));
    let self_total: f64 = report.spans.values().map(|s| s.self_us).sum();
    let mut spans: Vec<_> = report.spans.iter().collect();
    spans.sort_by(|a, b| b.1.self_us.total_cmp(&a.1.self_us));
    for (name, stat) in spans {
        let pct = if self_total > 0.0 {
            100.0 * stat.self_us / self_total
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<36} {:>8} {:>12} {:>12} {:>12} {:>7.1}%\n",
            name,
            stat.count,
            fmt_us(stat.self_us),
            fmt_us(stat.total_us),
            fmt_us(stat.max_us),
            pct
        ));
    }

    if !report.instants.is_empty() {
        out.push_str("\ninstant/counter events:\n");
        for (name, count) in &report.instants {
            out.push_str(&format!("  {name:<36} {count:>8}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads: tid 1 runs solve(10–90µs) containing two tile
    /// spans (20–40, 50–80); tid 2 runs one task (0–30).
    const SAMPLE: &str = r#"{"traceEvents":[
        {"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"main"}},
        {"ph":"B","pid":1,"tid":1,"ts":10,"name":"solve"},
        {"ph":"B","pid":1,"tid":1,"ts":20,"name":"tile"},
        {"ph":"i","pid":1,"tid":1,"ts":25,"name":"newton_iter","s":"t"},
        {"ph":"E","pid":1,"tid":1,"ts":40,"name":"tile"},
        {"ph":"B","pid":1,"tid":1,"ts":50,"name":"tile"},
        {"ph":"E","pid":1,"tid":1,"ts":80,"name":"tile"},
        {"ph":"E","pid":1,"tid":1,"ts":90,"name":"solve"},
        {"ph":"B","pid":1,"tid":2,"ts":0,"name":"task"},
        {"ph":"C","pid":1,"tid":2,"ts":15,"name":"active","args":{"value":1}},
        {"ph":"E","pid":1,"tid":2,"ts":30,"name":"task"}
    ]}"#;

    #[test]
    fn self_time_excludes_children() {
        let report = analyze(SAMPLE).expect("analyze");
        let solve = &report.spans["solve"];
        assert_eq!(solve.count, 1);
        assert!((solve.total_us - 80.0).abs() < 1e-9);
        // 80 inclusive minus (20 + 30) in tiles = 30 self.
        assert!((solve.self_us - 30.0).abs() < 1e-9);
        let tile = &report.spans["tile"];
        assert_eq!(tile.count, 2);
        assert!((tile.total_us - 50.0).abs() < 1e-9);
        assert!((tile.self_us - 50.0).abs() < 1e-9);
        assert!((tile.max_us - 30.0).abs() < 1e-9);
    }

    #[test]
    fn phases_are_top_level_spans() {
        let report = analyze(SAMPLE).expect("analyze");
        assert_eq!(report.phases.len(), 2);
        assert!(report.phases.contains_key("solve"));
        assert!(report.phases.contains_key("task"));
        assert!(!report.phases.contains_key("tile"));
        assert_eq!(report.threads, 2);
        assert!((report.wall_us - 90.0).abs() < 1e-9);
        assert_eq!(report.instants["newton_iter"], 1);
        assert_eq!(report.instants["active"], 1);
    }

    #[test]
    fn render_breaks_down_by_self_time() {
        let report = analyze(SAMPLE).expect("analyze");
        let text = render(&report);
        assert!(text.contains("phases"), "{text}");
        assert!(text.contains("solve"));
        assert!(text.contains("tile"));
        assert!(text.contains("% self"));
    }

    #[test]
    fn rejects_malformed_traces() {
        assert!(analyze("not json").is_err());
        assert!(analyze("{}").is_err());
        // Unmatched end.
        assert!(
            analyze(r#"{"traceEvents":[{"ph":"E","pid":1,"tid":1,"ts":5,"name":"x"}]}"#).is_err()
        );
        // Unclosed begin.
        assert!(
            analyze(r#"{"traceEvents":[{"ph":"B","pid":1,"tid":1,"ts":5,"name":"x"}]}"#).is_err()
        );
        // Mismatched names.
        assert!(analyze(
            r#"{"traceEvents":[
                {"ph":"B","pid":1,"tid":1,"ts":5,"name":"x"},
                {"ph":"E","pid":1,"tid":1,"ts":9,"name":"y"}
            ]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let report = analyze(r#"{"traceEvents":[]}"#).expect("empty ok");
        assert_eq!(report.threads, 0);
        assert_eq!(report.wall_us, 0.0);
        assert!(render(&report).contains("0 thread"));
    }
}

//! Run-manifest bootstrap shared by every experiment binary.
//!
//! Each `src/bin/*` binary opens a manifest first thing in `main` and
//! finishes it with its headline numbers. The JSON-lines file lands
//! next to the CSVs, under `results/logs/<name>.jsonl`, so a results
//! table can always be traced back to the exact configuration, git
//! revision, solver behaviour, and wall time that produced it.

use telemetry::Json;

/// Enables telemetry, resets all metrics, and opens
/// `results/logs/<name>.jsonl` (truncating any previous run).
///
/// The artifact-store mode (`GENIEX_STORE`) is recorded alongside the
/// caller's config fields, and since the final metric snapshot carries
/// every counter, `store.hit` / `store.miss` / `store.write` land in
/// the manifest automatically.
///
/// # Panics
///
/// Panics if the log directory is not writable (experiment setup is
/// infallible by construction; a failure is an environment bug).
pub fn start(name: &str, config: &[(&str, Json)]) -> telemetry::RunManifest {
    let logs = crate::setup::results_dir().join("logs");
    let mut config: Vec<(&str, Json)> = config.to_vec();
    config.push((
        "geniex_store",
        Json::from(crate::setup::store().mode().name()),
    ));
    telemetry::start_run(&logs, name, &config).expect("run manifest creation")
}

/// Finishes `manifest` with the run's headline numbers, then prints
/// the metric summary table and the manifest path to stderr.
///
/// # Panics
///
/// Panics if the manifest file cannot be written.
pub fn finish(manifest: telemetry::RunManifest, final_fields: &[(&str, Json)]) {
    let path = manifest
        .finish(final_fields)
        .expect("run manifest finalize");
    eprintln!("\n{}", telemetry::report());
    eprintln!("[telemetry] run manifest: {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_lands_under_results_logs() {
        let _guard = telemetry::test_lock();
        let m = start("manifest-module-unit-test", &[("k", Json::from(1u64))]);
        let path = m.path().to_path_buf();
        assert!(path.ends_with("logs/manifest-module-unit-test.jsonl"));
        finish(m, &[("ok", Json::Bool(true))]);
        telemetry::set_enabled(false);
        assert!(path.is_file());
        std::fs::remove_file(path).ok();
    }
}

//! Perf-regression gate: compares a `kernel_bench_summary` JSON
//! against a committed baseline so kernel speedups ratchet instead of
//! drifting (ROADMAP item 2).
//!
//! The gate compares **speedup ratios** (`naive_ns / blocked_ns`), not
//! raw nanoseconds: ratios are machine-relative, so a baseline
//! committed from one machine remains meaningful on another (raw
//! timings would not be). A kernel regresses when its current speedup
//! falls more than the tolerance fraction below the baseline's:
//!
//! ```text
//! current < baseline * (1 - tolerance)   →   regression
//! ```
//!
//! The tolerance comes from `GENIEX_GATE_TOLERANCE` (fraction, default
//! 0.10); `bench_gate --update` refreshes the baseline on explicit
//! opt-in. See the `bench_gate` binary for the CLI.

use std::collections::BTreeMap;

use telemetry::json::{parse, Json};

/// One kernel's timings from a summary file.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    pub naive_ns: f64,
    pub blocked_ns: f64,
    pub speedup: f64,
}

/// Parsed `BENCH_kernels.json`-style summary: kernel name → row.
#[derive(Debug, Clone, Default)]
pub struct KernelSummary {
    pub kernels: BTreeMap<String, KernelRow>,
    /// Thread count the summary was produced with, if recorded.
    pub threads: Option<u64>,
}

/// Parses a summary produced by `kernel_bench_summary`.
///
/// # Errors
///
/// Returns a description of the first malformed construct: invalid
/// JSON, a missing `kernels` array, or rows without the
/// `kernel`/`naive_ns`/`blocked_ns`/`speedup` fields.
pub fn parse_summary(text: &str) -> Result<KernelSummary, String> {
    let root = parse(text)?;
    let rows = root
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("summary has no 'kernels' array")?;
    let mut kernels = BTreeMap::new();
    for row in rows {
        let name = row
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("kernel row without 'kernel' name")?;
        let num = |key: &str| -> Result<f64, String> {
            row.get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("kernel '{name}': missing or non-positive '{key}'"))
        };
        kernels.insert(
            name.to_string(),
            KernelRow {
                naive_ns: num("naive_ns")?,
                blocked_ns: num("blocked_ns")?,
                speedup: num("speedup")?,
            },
        );
    }
    if kernels.is_empty() {
        return Err("summary contains no kernels".to_string());
    }
    Ok(KernelSummary {
        kernels,
        threads: root.get("threads").and_then(Json::as_u64),
    })
}

/// One kernel whose speedup fell below the tolerated band.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub kernel: String,
    pub baseline_speedup: f64,
    pub current_speedup: f64,
    /// `current / baseline` — e.g. 0.85 means 15% of the baseline
    /// speedup was lost.
    pub ratio: f64,
}

/// Outcome of comparing a current summary against the baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Kernels that regressed beyond tolerance (the gate fails when
    /// non-empty).
    pub regressions: Vec<Regression>,
    /// Kernels whose speedup *improved* beyond tolerance — candidates
    /// for a baseline update so the ratchet tightens.
    pub improvements: Vec<Regression>,
    /// Baseline kernels absent from the current summary (warned, not
    /// failed: quick modes may run subsets).
    pub missing: Vec<String>,
    /// Current kernels the baseline doesn't know yet.
    pub new_kernels: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no regression beyond tolerance).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `current` against `baseline` with a fractional
/// `tolerance` (0.10 = a kernel may lose up to 10% of its baseline
/// speedup before the gate trips). Negative tolerances are treated
/// as 0.
pub fn compare(baseline: &KernelSummary, current: &KernelSummary, tolerance: f64) -> GateReport {
    let tolerance = tolerance.max(0.0);
    let mut report = GateReport::default();
    for (name, base) in &baseline.kernels {
        let Some(cur) = current.kernels.get(name) else {
            report.missing.push(name.clone());
            continue;
        };
        let ratio = cur.speedup / base.speedup;
        let entry = Regression {
            kernel: name.clone(),
            baseline_speedup: base.speedup,
            current_speedup: cur.speedup,
            ratio,
        };
        if cur.speedup < base.speedup * (1.0 - tolerance) {
            report.regressions.push(entry);
        } else if cur.speedup > base.speedup * (1.0 + tolerance) {
            report.improvements.push(entry);
        }
    }
    for name in current.kernels.keys() {
        if !baseline.kernels.contains_key(name) {
            report.new_kernels.push(name.clone());
        }
    }
    // Worst loss first, so the headline line names the biggest
    // offender.
    report
        .regressions
        .sort_by(|a, b| a.ratio.total_cmp(&b.ratio));
    report
        .improvements
        .sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    report
}

/// The gate tolerance: `GENIEX_GATE_TOLERANCE` as a fraction, default
/// 0.10. Invalid values fall back to the default.
pub fn gate_tolerance() -> f64 {
    std::env::var("GENIEX_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(0.10)
}

/// Divides the named kernel's speedup by `factor` — the `bench_gate
/// --inject-regression` self-test hook that lets CI verify the gate
/// actually trips.
///
/// # Errors
///
/// Returns an error naming the kernel if it is absent or `factor` is
/// not a finite positive number.
pub fn inject_regression(
    summary: &mut KernelSummary,
    kernel: &str,
    factor: f64,
) -> Result<(), String> {
    if !factor.is_finite() || factor <= 0.0 {
        return Err(format!("injection factor {factor} must be positive"));
    }
    let row = summary
        .kernels
        .get_mut(kernel)
        .ok_or_else(|| format!("kernel '{kernel}' not in summary"))?;
    row.speedup /= factor;
    row.blocked_ns *= factor;
    Ok(())
}

/// Renders the gate outcome as a human-readable table plus, on
/// failure, a one-line repro command.
pub fn render(report: &GateReport, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "perf gate: tolerance {:.1}% on speedup ratios (naive/blocked)\n",
        tolerance * 100.0
    ));
    let row = |r: &Regression| {
        format!(
            "  {:<28} baseline {:>8.3}x  current {:>8.3}x  ({:+.1}%)\n",
            r.kernel,
            r.baseline_speedup,
            r.current_speedup,
            (r.ratio - 1.0) * 100.0
        )
    };
    if !report.regressions.is_empty() {
        out.push_str("REGRESSED beyond tolerance:\n");
        for r in &report.regressions {
            out.push_str(&row(r));
        }
    }
    if !report.improvements.is_empty() {
        out.push_str("improved beyond tolerance (consider --update to ratchet):\n");
        for r in &report.improvements {
            out.push_str(&row(r));
        }
    }
    for name in &report.missing {
        out.push_str(&format!(
            "  warning: baseline kernel '{name}' not in current summary\n"
        ));
    }
    for name in &report.new_kernels {
        out.push_str(&format!("  note: new kernel '{name}' (not in baseline)\n"));
    }
    if report.passed() {
        out.push_str("perf gate: PASS\n");
    } else {
        out.push_str("perf gate: FAIL\n");
        out.push_str(
            "repro: GENIEX_THREADS=1 GENIEX_BENCH_OUT=/tmp/bench_kernels.csv \
             cargo bench -p geniex-bench --bench kernels && \
             cargo run --release -p geniex-bench --bin kernel_bench_summary /tmp/bench_kernels.csv && \
             cargo run --release -p geniex-bench --bin bench_gate\n",
        );
    }
    out
}

/// Parsed serve load-harness summary (`BENCH_serve.json`): the gated
/// metrics live under a top-level `"gate"` object mapping metric name
/// → ratio (e.g. `batched_speedup` = batched rps / single rps).
/// Ratios are machine-relative, exactly like kernel speedups, so a
/// committed baseline transfers across hosts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeSummary {
    pub metrics: BTreeMap<String, f64>,
}

/// Parses a serve summary produced by `loadgen --compare` (or a
/// committed `BENCH_serve_baseline.json`, which may carry only the
/// `gate` object).
///
/// # Errors
///
/// Returns a description of the first malformed construct: invalid
/// JSON, a missing or empty `gate` object, or non-positive metrics.
pub fn parse_serve_summary(text: &str) -> Result<ServeSummary, String> {
    let root = parse(text)?;
    let Some(Json::Obj(pairs)) = root.get("gate") else {
        return Err("serve summary has no 'gate' object".to_string());
    };
    let mut metrics = BTreeMap::new();
    for (name, value) in pairs {
        let v = value
            .as_f64()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("serve metric '{name}': missing or non-positive value"))?;
        metrics.insert(name.clone(), v);
    }
    if metrics.is_empty() {
        return Err("serve summary 'gate' object is empty".to_string());
    }
    Ok(ServeSummary { metrics })
}

/// Compares current serve metrics against the baseline: every metric
/// is higher-is-better, and a metric regresses when it falls more
/// than `tolerance` below its baseline value — the same band the
/// kernel gate uses. Reuses [`GateReport`] (the `kernel` field holds
/// the metric name).
pub fn compare_serve(
    baseline: &ServeSummary,
    current: &ServeSummary,
    tolerance: f64,
) -> GateReport {
    let as_kernels = |s: &ServeSummary| KernelSummary {
        kernels: s
            .metrics
            .iter()
            .map(|(name, &v)| {
                (
                    name.clone(),
                    KernelRow {
                        naive_ns: 1.0,
                        blocked_ns: 1.0,
                        speedup: v,
                    },
                )
            })
            .collect(),
        threads: None,
    };
    compare(&as_kernels(baseline), &as_kernels(current), tolerance)
}

/// Divides the named serve metric by `factor` — the
/// `bench_gate --inject-regression serve:<metric>` self-test hook.
///
/// # Errors
///
/// Returns an error naming the metric if it is absent or `factor` is
/// not a finite positive number.
pub fn inject_serve_regression(
    summary: &mut ServeSummary,
    metric: &str,
    factor: f64,
) -> Result<(), String> {
    if !factor.is_finite() || factor <= 0.0 {
        return Err(format!("injection factor {factor} must be positive"));
    }
    let value = summary
        .metrics
        .get_mut(metric)
        .ok_or_else(|| format!("serve metric '{metric}' not in summary"))?;
    *value /= factor;
    Ok(())
}

/// Renders the serve gate outcome: same table as the kernel gate,
/// with a serve-specific repro line on failure.
pub fn render_serve(report: &GateReport, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve gate: tolerance {:.1}% on load-harness ratios\n",
        tolerance * 100.0
    ));
    let row = |r: &Regression| {
        format!(
            "  {:<28} baseline {:>8.3}x  current {:>8.3}x  ({:+.1}%)\n",
            r.kernel,
            r.baseline_speedup,
            r.current_speedup,
            (r.ratio - 1.0) * 100.0
        )
    };
    if !report.regressions.is_empty() {
        out.push_str("REGRESSED beyond tolerance:\n");
        for r in &report.regressions {
            out.push_str(&row(r));
        }
    }
    if !report.improvements.is_empty() {
        out.push_str("improved beyond tolerance (consider --update to ratchet):\n");
        for r in &report.improvements {
            out.push_str(&row(r));
        }
    }
    for name in &report.missing {
        out.push_str(&format!(
            "  warning: baseline serve metric '{name}' not in current summary\n"
        ));
    }
    for name in &report.new_kernels {
        out.push_str(&format!(
            "  note: new serve metric '{name}' (not in baseline)\n"
        ));
    }
    if report.passed() {
        out.push_str("serve gate: PASS\n");
    } else {
        out.push_str("serve gate: FAIL\n");
        out.push_str(
            "repro: GENIEX_THREADS=1 cargo run --release -p geniex-serve & \
             wait for READY, then \
             GENIEX_THREADS=1 cargo run --release -p geniex-bench --bin loadgen -- --compare && \
             cargo run --release -p geniex-bench --bin bench_gate -- --serve\n",
        );
    }
    out
}

/// Renders the solve gate outcome: the amortized-solver leg
/// (`BENCH_solve.json` vs `BENCH_solve_baseline.json`, DESIGN.md §15)
/// reuses the serve-summary machinery — both are `gate`-object ratio
/// files — but fails with a solve-specific repro line.
pub fn render_solve(report: &GateReport, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "solve gate: tolerance {:.1}% on amortized-solver ratios\n",
        tolerance * 100.0
    ));
    let row = |r: &Regression| {
        format!(
            "  {:<28} baseline {:>8.3}x  current {:>8.3}x  ({:+.1}%)\n",
            r.kernel,
            r.baseline_speedup,
            r.current_speedup,
            (r.ratio - 1.0) * 100.0
        )
    };
    if !report.regressions.is_empty() {
        out.push_str("REGRESSED beyond tolerance:\n");
        for r in &report.regressions {
            out.push_str(&row(r));
        }
    }
    if !report.improvements.is_empty() {
        out.push_str("improved beyond tolerance (consider --update to ratchet):\n");
        for r in &report.improvements {
            out.push_str(&row(r));
        }
    }
    for name in &report.missing {
        out.push_str(&format!(
            "  warning: baseline solve metric '{name}' not in current summary\n"
        ));
    }
    for name in &report.new_kernels {
        out.push_str(&format!(
            "  note: new solve metric '{name}' (not in baseline)\n"
        ));
    }
    if report.passed() {
        out.push_str("solve gate: PASS\n");
    } else {
        out.push_str("solve gate: FAIL\n");
        out.push_str(
            "repro: GENIEX_THREADS=1 cargo run --release -p geniex-bench --bin solve_bench && \
             cargo run --release -p geniex-bench --bin bench_gate -- --solve\n",
        );
    }
    out
}

/// Serializes a serve summary back to the committed-baseline form:
/// just the `gate` object, which is all the gate reads.
pub fn serve_baseline_json(summary: &ServeSummary) -> String {
    let gate = Json::Obj(
        summary
            .metrics
            .iter()
            .map(|(name, &v)| (name.clone(), Json::from(v)))
            .collect(),
    );
    Json::Obj(vec![("gate".to_string(), gate)]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"csv":"/tmp/x.csv","threads":1,"kernels":[
        {"kernel":"matmul/64","naive_ns":24000,"blocked_ns":16000,"speedup":1.5},
        {"kernel":"spmv/128","naive_ns":580,"blocked_ns":716,"speedup":0.81},
        {"kernel":"dot_f32/64","naive_ns":33,"blocked_ns":6.6,"speedup":5.0}
    ]}"#;

    #[test]
    fn parses_summary() {
        let s = parse_summary(SAMPLE).expect("parse");
        assert_eq!(s.kernels.len(), 3);
        assert_eq!(s.threads, Some(1));
        assert_eq!(s.kernels["matmul/64"].speedup, 1.5);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_summary("{}").is_err());
        assert!(parse_summary("{\"kernels\":[]}").is_err());
        assert!(parse_summary("{\"kernels\":[{\"kernel\":\"x\"}]}").is_err());
        assert!(parse_summary(
            "{\"kernels\":[{\"kernel\":\"x\",\"naive_ns\":0,\"blocked_ns\":1,\"speedup\":1}]}"
        )
        .is_err());
    }

    #[test]
    fn identical_summaries_pass() {
        let s = parse_summary(SAMPLE).unwrap();
        let report = compare(&s, &s, 0.10);
        assert!(report.passed());
        assert!(report.improvements.is_empty());
        assert!(report.missing.is_empty());
        assert!(report.new_kernels.is_empty());
    }

    #[test]
    fn ten_percent_loss_trips_default_tolerance() {
        let baseline = parse_summary(SAMPLE).unwrap();
        let mut current = baseline.clone();
        // 15% slower blocked time → speedup ratio drops ~13%.
        inject_regression(&mut current, "matmul/64", 1.15).unwrap();
        let report = compare(&baseline, &current, 0.10);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].kernel, "matmul/64");
        assert!(render(&report, 0.10).contains("repro:"));
        // A wider tolerance absorbs the same loss.
        assert!(compare(&baseline, &current, 0.20).passed());
    }

    #[test]
    fn worst_regression_sorts_first() {
        let baseline = parse_summary(SAMPLE).unwrap();
        let mut current = baseline.clone();
        inject_regression(&mut current, "matmul/64", 1.2).unwrap();
        inject_regression(&mut current, "dot_f32/64", 2.0).unwrap();
        let report = compare(&baseline, &current, 0.10);
        assert_eq!(report.regressions[0].kernel, "dot_f32/64");
    }

    #[test]
    fn missing_and_new_kernels_reported_not_failed() {
        let baseline = parse_summary(SAMPLE).unwrap();
        let mut current = baseline.clone();
        let row = current.kernels.remove("spmv/128").unwrap();
        current.kernels.insert("spmv/256".to_string(), row);
        let report = compare(&baseline, &current, 0.10);
        assert!(report.passed());
        assert_eq!(report.missing, vec!["spmv/128".to_string()]);
        assert_eq!(report.new_kernels, vec!["spmv/256".to_string()]);
    }

    #[test]
    fn improvements_flagged_for_ratchet() {
        let baseline = parse_summary(SAMPLE).unwrap();
        let mut current = baseline.clone();
        current.kernels.get_mut("matmul/64").unwrap().speedup = 2.5;
        let report = compare(&baseline, &current, 0.10);
        assert!(report.passed());
        assert_eq!(report.improvements.len(), 1);
        assert!(render(&report, 0.10).contains("--update"));
    }

    #[test]
    fn inject_rejects_bad_inputs() {
        let mut s = parse_summary(SAMPLE).unwrap();
        assert!(inject_regression(&mut s, "nope", 2.0).is_err());
        assert!(inject_regression(&mut s, "matmul/64", 0.0).is_err());
        assert!(inject_regression(&mut s, "matmul/64", f64::NAN).is_err());
    }

    #[test]
    fn committed_baseline_parses_and_passes_against_itself() {
        // Guards the checked-in baseline file itself: it must stay
        // parseable and self-consistent.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_baseline.json"
        );
        let text = std::fs::read_to_string(path).expect("committed baseline exists");
        let baseline = parse_summary(&text).expect("baseline parses");
        assert!(baseline.kernels.contains_key("matmul/64"));
        assert!(compare(&baseline, &baseline, 0.0).passed());
    }

    const SERVE_SAMPLE: &str = r#"{"addr":"127.0.0.1:4917","phases":[],
        "gate":{"batched_speedup":2.6,"p95_latency_gain":1.4}}"#;

    #[test]
    fn parses_serve_summary() {
        let s = parse_serve_summary(SERVE_SAMPLE).expect("parse");
        assert_eq!(s.metrics.len(), 2);
        assert_eq!(s.metrics["batched_speedup"], 2.6);
    }

    #[test]
    fn rejects_malformed_serve_summary() {
        assert!(parse_serve_summary("{}").is_err());
        assert!(parse_serve_summary("{\"gate\":{}}").is_err());
        assert!(parse_serve_summary("{\"gate\":{\"x\":0}}").is_err());
        assert!(parse_serve_summary("{\"gate\":{\"x\":\"fast\"}}").is_err());
    }

    #[test]
    fn serve_regression_trips_and_tolerance_absorbs() {
        let baseline = parse_serve_summary(SERVE_SAMPLE).unwrap();
        let mut current = baseline.clone();
        inject_serve_regression(&mut current, "batched_speedup", 2.0).unwrap();
        let report = compare_serve(&baseline, &current, 0.10);
        assert!(!report.passed());
        assert_eq!(report.regressions[0].kernel, "batched_speedup");
        assert!(render_serve(&report, 0.10).contains("serve gate: FAIL"));
        // A factor-2 loss is beyond any sane tolerance…
        assert!(!compare_serve(&baseline, &current, 0.45).passed());
        // …but a mild dip sits inside the band.
        let mut mild = baseline.clone();
        inject_serve_regression(&mut mild, "batched_speedup", 1.05).unwrap();
        assert!(compare_serve(&baseline, &mild, 0.10).passed());
    }

    #[test]
    fn serve_inject_rejects_bad_inputs() {
        let mut s = parse_serve_summary(SERVE_SAMPLE).unwrap();
        assert!(inject_serve_regression(&mut s, "nope", 2.0).is_err());
        assert!(inject_serve_regression(&mut s, "batched_speedup", 0.0).is_err());
        assert!(inject_serve_regression(&mut s, "batched_speedup", f64::NAN).is_err());
    }

    #[test]
    fn serve_baseline_round_trips_through_json() {
        let s = parse_serve_summary(SERVE_SAMPLE).unwrap();
        let text = serve_baseline_json(&s);
        let back = parse_serve_summary(&text).expect("round-trip parses");
        assert_eq!(back, s);
        assert!(compare_serve(&s, &back, 0.0).passed());
    }

    #[test]
    fn solve_regression_trips_with_solve_render() {
        let baseline = parse_serve_summary(r#"{"gate":{"amortized_speedup":2.5}}"#).unwrap();
        let mut current = baseline.clone();
        inject_serve_regression(&mut current, "amortized_speedup", 3.0).unwrap();
        let report = compare_serve(&baseline, &current, 0.10);
        assert!(!report.passed());
        let rendered = render_solve(&report, 0.10);
        assert!(rendered.contains("solve gate: FAIL"));
        assert!(rendered.contains("solve_bench"));
        assert!(
            render_solve(&compare_serve(&baseline, &baseline, 0.10), 0.10)
                .contains("solve gate: PASS")
        );
    }

    #[test]
    fn committed_solve_baseline_parses_and_passes_against_itself() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_solve_baseline.json"
        );
        let text = std::fs::read_to_string(path).expect("committed solve baseline exists");
        let baseline = parse_serve_summary(&text).expect("solve baseline parses");
        assert!(
            baseline.metrics["amortized_speedup"] >= 2.0,
            "committed baseline must witness the >=2x amortized-solve win, got {}",
            baseline.metrics["amortized_speedup"]
        );
        assert!(compare_serve(&baseline, &baseline, 0.0).passed());
    }

    #[test]
    fn committed_serve_baseline_parses_and_passes_against_itself() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_serve_baseline.json"
        );
        let text = std::fs::read_to_string(path).expect("committed serve baseline exists");
        let baseline = parse_serve_summary(&text).expect("serve baseline parses");
        assert!(baseline.metrics.contains_key("batched_speedup"));
        assert!(
            baseline.metrics["batched_speedup"] >= 2.0,
            "committed baseline must witness the >=2x batching win, got {}",
            baseline.metrics["batched_speedup"]
        );
        assert!(compare_serve(&baseline, &baseline, 0.0).passed());
    }
}

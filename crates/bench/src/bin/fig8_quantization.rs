//! Figure 8: impact of weight/activation precision on classification
//! accuracy under non-idealities, for both datasets.
//!
//! Three precision points (16/8/4-bit, keeping the paper's 3 integer
//! bits) × three cases (ideal, analytical, GENIEx) × two datasets
//! (synth-s standing in for CIFAR-100, synth-l for the ImageNet
//! subset).
//!
//! ```text
//! cargo run --release -p geniex-bench --bin fig8_quantization
//! ```

use funcsim::{evaluate_spec, AnalyticalEngine, ArchConfig, GeniexEngine, IdealEngine};
use geniex_bench::setup::{
    accuracy_design_point, results_dir, standard_workload, train_surrogate_for_workload,
    SurrogateBudget, DEFAULT_SIZE,
};
use geniex_bench::table::{pct, Table};
use vision::{rescale_for_fxp, SynthSpec, SynthVision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "fig8_quantization",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("precisions", telemetry::Json::from("16,8,4")),
        ],
    );
    let out_dir = results_dir();
    let xbar = accuracy_design_point(DEFAULT_SIZE);

    let mut table = Table::new(&[
        "dataset",
        "bits",
        "fp32_pct",
        "ideal_pct",
        "analytical_pct",
        "geniex_pct",
    ]);

    for spec_kind in [SynthSpec::SynthS, SynthSpec::SynthL] {
        let mut workload = standard_workload(spec_kind);
        if spec_kind == SynthSpec::SynthL {
            // synth-l inference is ~4x the cost per image and has twice
            // the classes; halve the per-class count to keep the sweep
            // tractable on one core (still 128 images).
            workload.test = SynthVision::generate(spec_kind, 8, geniex_bench::setup::TEST_SEED)?;
        }
        let calib_data = SynthVision::generate(spec_kind, 8, 1)?;
        let (calib, _) = calib_data.full_batch()?;
        let net_spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5)?;

        // One surrogate per design point; precision changes only the
        // digital slicing, not the analog design point, so it is shared
        // across the precision sweep (as in the paper).
        let base_arch = ArchConfig::default().with_xbar(xbar.clone());
        let surrogate = train_surrogate_for_workload(
            &xbar,
            &SurrogateBudget::default(),
            &net_spec,
            &base_arch,
            &calib,
        );

        for bits in [16u32, 8, 4] {
            // Digit widths cannot exceed the format's magnitude bits
            // (4-bit values have 3 magnitude bits -> one 3-bit stream).
            let width = 4u32.min(bits - 1);
            let arch = ArchConfig::default()
                .with_xbar(xbar.clone())
                .with_precision(bits)?
                .with_bit_slicing(width, width);
            let ideal = evaluate_spec(net_spec.clone(), &arch, &IdealEngine, &workload.test, 16)?;
            let analytical = evaluate_spec(
                net_spec.clone(),
                &arch,
                &AnalyticalEngine,
                &workload.test,
                16,
            )?;
            let geniex = evaluate_spec(
                net_spec.clone(),
                &arch,
                &GeniexEngine::new(surrogate.clone()),
                &workload.test,
                16,
            )?;
            println!(
                "{} {:>2}-bit: ideal {}%, analytical {}%, geniex {}%",
                spec_kind.name(),
                bits,
                pct(ideal),
                pct(analytical),
                pct(geniex)
            );
            table.row(&[
                spec_kind.name().to_string(),
                bits.to_string(),
                pct(workload.fp32_accuracy),
                pct(ideal),
                pct(analytical),
                pct(geniex),
            ]);
        }
    }

    println!("\n{}", table.render());
    table.write_csv(out_dir.join("fig8_quantization.csv"))?;
    println!(
        "paper trends: 16-bit ≈ FP32; accuracy collapses at low precision; \
         non-idealities hurt more at lower precision; analytical \
         overestimates the degradation"
    );
    geniex_bench::manifest::finish(run, &[("rows", telemetry::Json::from(table.len() as u64))]);
    Ok(())
}

//! Ablation: hidden-layer width of the GENIEx surrogate.
//!
//! The paper fixes P = 500 for 64×64 crossbars; this sweep shows how
//! NF RMSE scales with capacity at our design point, locating the
//! knee.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_hidden
//! ```

use geniex::benchmark::{compare_models, BenchmarkConfig};
use geniex::dataset::DatasetConfig;
use geniex::{Geniex, TrainConfig};
use geniex_bench::setup::{
    cached_dataset, cached_f64_blob, design_point, results_dir, DEFAULT_SIZE,
};
use geniex_bench::table::{fix, Table};
use store::KeyBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_hidden",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("hiddens", telemetry::Json::from("25,50,100,200,400")),
            ("samples", telemetry::Json::from(4000u64)),
        ],
    );
    let params = design_point(DEFAULT_SIZE);
    let data = cached_dataset(
        &params,
        &DatasetConfig {
            samples: 4000,
            seed: 7,
            ..DatasetConfig::default()
        },
    );

    let mut table = Table::new(&["hidden", "train_mse", "geniex_rmse", "analytical_rmse"]);
    for hidden in [25usize, 50, 100, 200, 400] {
        let train_config = TrainConfig {
            epochs: 80,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 4,
            ..TrainConfig::default()
        };
        // The whole swept row (train loss + validation RMSEs) is
        // store-cached: a warm run re-trains and re-solves nothing.
        let mut kb = KeyBuilder::new(store::KIND_SWEEP);
        kb.str("op", "ablation_hidden_row")
            .usize("hidden", hidden)
            .u64("init_seed", 3)
            .nested("dataset", &data)
            .nested("train", &train_config);
        let row = cached_f64_blob(&kb.finish(), || {
            let mut surrogate = Geniex::new(&params, hidden, 3)?;
            let report = surrogate.train(&data, &train_config)?;
            let cmp = compare_models(
                &params,
                &surrogate,
                &BenchmarkConfig {
                    stimuli: 40,
                    seed: 99,
                    dac_levels: 16,
                },
            )?;
            Ok::<_, Box<dyn std::error::Error>>(vec![
                report.final_loss as f64,
                cmp.geniex_rmse,
                cmp.analytical_rmse,
            ])
        })?;
        let (final_loss, geniex_rmse, analytical_rmse) = (row[0], row[1], row[2]);
        println!(
            "hidden {hidden:>3}: train mse {final_loss:.5}, NF RMSE {geniex_rmse:.4} \
             (analytical {analytical_rmse:.4})"
        );
        table.row(&[
            hidden.to_string(),
            fix(final_loss, 5),
            fix(geniex_rmse, 4),
            fix(analytical_rmse, 4),
        ]);
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("ablation_hidden.csv"))?;
    geniex_bench::manifest::finish(run, &[("rows", telemetry::Json::from(table.len() as u64))]);
    Ok(())
}

//! Hardware cost report: energy/latency of the MicroResNet workloads
//! across crossbar sizes and bit-slicing configurations.
//!
//! Complements Fig. 9: narrower streams/slices buy accuracy back from
//! non-idealities (the paper's conclusion) but multiply the crossbar
//! reads and ADC conversions — this binary quantifies that price with
//! the ISAAC-class cost model.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin cost_report
//! ```

use funcsim::cost::{estimate_cost, CostModel};
use funcsim::ArchConfig;
use geniex_bench::setup::results_dir;
use geniex_bench::table::{fix, Table};
use vision::{MicroResNet, SynthSpec};
use xbar::CrossbarParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "cost_report",
        &[
            ("cost_model", telemetry::Json::from("isaac_class")),
            ("sizes", telemetry::Json::from("8,16,32,64")),
        ],
    );
    let model = CostModel::isaac_class();
    let out_dir = results_dir();

    println!("== per-image cost vs crossbar size (4-bit streams/slices) ==");
    let mut t = Table::new(&[
        "network",
        "xbar_size",
        "xbar_reads",
        "adc_conversions",
        "energy_uJ",
        "latency_ms",
    ]);
    for spec_kind in [SynthSpec::SynthS, SynthSpec::SynthL] {
        let spec = MicroResNet::new(spec_kind, 1).to_spec();
        for size in [8usize, 16, 32, 64] {
            let arch =
                ArchConfig::default().with_xbar(CrossbarParams::builder(size, size).build()?);
            let cost = estimate_cost(&spec, &arch, &model)?;
            t.row(&[
                spec_kind.name().to_string(),
                format!("{size}x{size}"),
                cost.total_xbar_reads().to_string(),
                cost.total_adc_conversions().to_string(),
                fix(cost.total_energy_pj / 1e6, 3),
                fix(cost.total_latency_ns / 1e6, 3),
            ]);
        }
    }
    print!("{}", t.render());
    t.write_csv(out_dir.join("cost_size.csv"))?;

    println!("\n== per-image cost vs stream/slice width (16x16) ==");
    let mut t = Table::new(&["stream", "slice", "xbar_reads", "energy_uJ"]);
    let spec = MicroResNet::new(SynthSpec::SynthS, 1).to_spec();
    for stream in [1u32, 2, 4] {
        for slice in [1u32, 2, 4] {
            let arch = ArchConfig::default()
                .with_xbar(CrossbarParams::builder(16, 16).build()?)
                .with_bit_slicing(stream, slice);
            let cost = estimate_cost(&spec, &arch, &model)?;
            t.row(&[
                stream.to_string(),
                slice.to_string(),
                cost.total_xbar_reads().to_string(),
                fix(cost.total_energy_pj / 1e6, 3),
            ]);
        }
    }
    print!("{}", t.render());
    t.write_csv(out_dir.join("cost_bit_slicing.csv"))?;

    println!(
        "\ntakeaway: the 1/1-bit corner that recovers accuracy in Fig. 9 \
         costs ~14x the energy of the 4/4 design — the trade-off the \
         paper's conclusion points at"
    );
    geniex_bench::manifest::finish(
        run,
        &[(
            "tables",
            telemetry::Json::from("cost_size,cost_bit_slicing"),
        )],
    );
    Ok(())
}

//! Figure 5 (and its inset RMSE table): NF of the circuit (HSPICE
//! stand-in) vs the analytical model vs GENIEx, at supply voltages
//! 0.25 V and 0.5 V.
//!
//! Paper headline: GENIEx RMSE 0.25 / 0.7 vs analytical 1.73 / 8.99 —
//! 7× and 12.8× better. The reproduction target is the *shape*: GENIEx
//! well below analytical at both voltages, with the gap widening at
//! 0.5 V.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin fig5_rmse
//! ```

use geniex::benchmark::{compare_models, BenchmarkConfig};
use geniex_bench::setup::{results_dir, train_surrogate, SurrogateBudget, DEFAULT_SIZE};
use geniex_bench::table::{fix, Table};
use xbar::CrossbarParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "fig5_rmse",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("stimuli", telemetry::Json::from(60u64)),
            ("v_supplies", telemetry::Json::from("0.25,0.5")),
        ],
    );
    let mut table = Table::new(&[
        "v_supply",
        "analytical_rmse",
        "geniex_rmse",
        "improvement",
        "nf_samples",
    ]);
    let mut finals: Vec<(String, f64)> = Vec::new();

    for v_supply in [0.25, 0.5] {
        let params = CrossbarParams::builder(DEFAULT_SIZE, DEFAULT_SIZE)
            .v_supply(v_supply)
            .build()?;
        let surrogate = train_surrogate(
            &params,
            &SurrogateBudget {
                samples: 4000,
                hidden: 250,
                epochs: 100,
            },
        );
        let cmp = compare_models(
            &params,
            &surrogate,
            &BenchmarkConfig {
                stimuli: 60,
                seed: 515,
                dac_levels: 16,
            },
        )?;
        println!(
            "V = {v_supply} V: analytical RMSE {:.4}, GENIEx RMSE {:.4} ({:.1}x better)",
            cmp.analytical_rmse,
            cmp.geniex_rmse,
            cmp.improvement_factor()
        );
        table.row(&[
            fix(v_supply, 2),
            fix(cmp.analytical_rmse, 4),
            fix(cmp.geniex_rmse, 4),
            fix(cmp.improvement_factor(), 2),
            cmp.samples.to_string(),
        ]);
        finals.push((format!("analytical_rmse_{v_supply}"), cmp.analytical_rmse));
        finals.push((format!("geniex_rmse_{v_supply}"), cmp.geniex_rmse));
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("fig5_rmse.csv"))?;
    println!(
        "paper: analytical 1.73/8.99, GENIEx 0.25/0.7 (7x, 12.8x) on 64x64 \
         HSPICE; shape target: GENIEx << analytical, gap widening at 0.5 V"
    );
    let fields: Vec<(&str, telemetry::Json)> = finals
        .iter()
        .map(|(k, v)| (k.as_str(), telemetry::Json::from(*v)))
        .collect();
    geniex_bench::manifest::finish(run, &fields);
    Ok(())
}

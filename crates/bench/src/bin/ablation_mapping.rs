//! Ablation: differential vs offset weight-to-conductance mapping.
//!
//! Differential mapping stores positive and negative weight parts on
//! separate crossbars; offset mapping stores `w + 2^(B-1)` on one
//! crossbar and subtracts the pedestal digitally. Offset halves the
//! device count but biases every cell toward mid-conductance, so the
//! array draws more current and suffers more IR drop — this ablation
//! quantifies the accuracy cost under the analytical backend.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_mapping
//! ```

use funcsim::{evaluate_spec, AnalyticalEngine, ArchConfig, IdealEngine, WeightMapping};
use geniex_bench::setup::{accuracy_design_point, results_dir, standard_workload, DEFAULT_SIZE};
use geniex_bench::table::{pct, Table};
use vision::{rescale_for_fxp, SynthSpec, SynthVision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_mapping",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("mappings", telemetry::Json::from("differential,offset")),
            ("rons", telemetry::Json::from("50k,100k")),
        ],
    );
    let workload = standard_workload(SynthSpec::SynthS);
    let calib_data = SynthVision::generate(SynthSpec::SynthS, 8, 1)?;
    let (calib, _) = calib_data.full_batch()?;
    let spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5)?;

    println!("FP32 reference accuracy: {}%", pct(workload.fp32_accuracy));
    let mut table = Table::new(&["mapping", "ron", "ideal_pct", "analytical_pct"]);

    for mapping in [WeightMapping::Differential, WeightMapping::Offset] {
        for ron in [50e3, 100e3] {
            let mut xbar = accuracy_design_point(DEFAULT_SIZE);
            xbar.r_on = ron;
            let arch = ArchConfig {
                weight_mapping: mapping,
                ..ArchConfig::default().with_xbar(xbar)
            };
            let ideal = evaluate_spec(spec.clone(), &arch, &IdealEngine, &workload.test, 16)?;
            let analytical =
                evaluate_spec(spec.clone(), &arch, &AnalyticalEngine, &workload.test, 16)?;
            let label = match mapping {
                WeightMapping::Differential => "differential",
                WeightMapping::Offset => "offset",
            };
            println!(
                "{label:>12} Ron {:>4}k: ideal {}%, analytical {}%",
                ron / 1e3,
                pct(ideal),
                pct(analytical)
            );
            table.row(&[
                label.to_string(),
                format!("{}k", ron / 1e3),
                pct(ideal),
                pct(analytical),
            ]);
        }
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("ablation_mapping.csv"))?;
    println!("expected: offset mapping suffers more IR-drop degradation");
    geniex_bench::manifest::finish(
        run,
        &[(
            "fp32_accuracy",
            telemetry::Json::from(workload.fp32_accuracy),
        )],
    );
    Ok(())
}

//! Determinism smoke test: exercises every parallelized hot path and
//! prints compact bit-level digests of the results to stdout.
//!
//! CI runs this binary under `GENIEX_THREADS=1`, `2`, and `8` and
//! diffs the stdout: the digests hash the exact IEEE-754 bit patterns
//! of the outputs, so any thread-count-dependent reordering of
//! floating-point reductions shows up as a failed diff. Progress and
//! configuration noise goes to stderr.

use funcsim::{evaluate_spec, AnalyticalEngine, ArchConfig, GeniexEngine, IdealEngine};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use geniex_bench::setup::accuracy_design_point;
use vision::{rescale_for_fxp, train_model, MicroResNet, SynthSpec, SynthVision, TrainOptions};
use xbar::sweep::{current_pairs, nf_distribution};

/// FNV-1a over a stream of u64 words: stable, dependency-free digest.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn push_f64s(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x.to_bits());
        }
    }
    fn push_f32s(&mut self, xs: &[f32]) {
        for &x in xs {
            self.push(u64::from(x.to_bits()));
        }
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

fn main() {
    eprintln!(
        "[smoke] GENIEX_THREADS={:?} -> {} worker(s)",
        std::env::var("GENIEX_THREADS").ok(),
        parallel::default_threads()
    );
    let run = geniex_bench::manifest::start("determinism_smoke", &[]);
    let params = accuracy_design_point(8);

    // 1. Circuit sweep: NF distribution (xbar::sweep parallel solves).
    let nf = nf_distribution(&params, 24, 2, "smoke").expect("nf distribution");
    let mut d = Digest::new();
    d.push_f64s(&nf.samples);
    println!("nf_distribution n={} digest={}", nf.samples.len(), d.hex());

    // 2. Circuit sweep: paired currents.
    let pairs = current_pairs(&params, 16, 3).expect("current pairs");
    let mut d = Digest::new();
    d.push_f64s(&pairs.ideal);
    d.push_f64s(&pairs.non_ideal);
    println!("current_pairs n={} digest={}", pairs.ideal.len(), d.hex());

    // 3. Surrogate dataset generation (core::dataset parallel solves).
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 48,
            seed: 7,
            ..DatasetConfig::default()
        },
    )
    .expect("dataset generation");
    let mut d = Digest::new();
    for s in &data.samples {
        d.push_f32s(&s.v_levels);
        d.push_f32s(&s.g_levels);
        d.push_f32s(&s.f_r);
    }
    println!("dataset n={} digest={}", data.samples.len(), d.hex());

    // 4. Surrogate training (nn parallel matmul + batched backprop).
    let mut surrogate = Geniex::new(&params, 24, 3).expect("surrogate construction");
    let report = surrogate
        .train(
            &data,
            &TrainConfig {
                epochs: 4,
                batch_size: 8,
                learning_rate: 1e-3,
                seed: 4,
                ..TrainConfig::default()
            },
        )
        .expect("surrogate training");
    let first = &data.samples[0];
    let pred = surrogate
        .predict_f_r(&first.v_levels, &first.g_levels)
        .expect("surrogate prediction");
    let mut d = Digest::new();
    d.push((report.final_loss as f64).to_bits());
    d.push_f32s(&pred);
    println!(
        "surrogate loss_bits={:016x} digest={}",
        (report.final_loss as f64).to_bits(),
        d.hex()
    );

    // 5. CNN training (Conv2d per-sample parallel forward/backward).
    let train = SynthVision::generate(SynthSpec::SynthS, 2, 1).expect("train set");
    let mut model = MicroResNet::new(SynthSpec::SynthS, 2);
    train_model(
        &mut model,
        &train,
        &TrainOptions {
            epochs: 1,
            batch_size: 4,
            learning_rate: 2e-3,
            seed: 5,
        },
    )
    .expect("cnn training");
    let acc = vision::evaluate(&mut model, &train, 4).expect("cnn evaluation");
    println!("cnn train_acc_bits={:016x}", acc.to_bits());

    // 6. Functional simulation (tile loop + bit-slice accumulation).
    let calib = SynthVision::generate(SynthSpec::SynthS, 1, 1).expect("calib set");
    let (calib_x, _) = calib.full_batch().expect("calib batch");
    let spec = rescale_for_fxp(&model.to_spec(), &calib_x, 3.5).expect("fxp rescale");
    let arch = ArchConfig::default().with_xbar(params.clone());
    let subset = SynthVision::generate(SynthSpec::SynthS, 1, 999).expect("eval subset");
    let ideal = evaluate_spec(spec.clone(), &arch, &IdealEngine, &subset, 4).expect("ideal eval");
    let analytical =
        evaluate_spec(spec.clone(), &arch, &AnalyticalEngine, &subset, 4).expect("analytical eval");
    let geniex =
        evaluate_spec(spec, &arch, &GeniexEngine::new(surrogate), &subset, 4).expect("geniex eval");
    println!(
        "funcsim ideal_bits={:016x} analytical_bits={:016x} geniex_bits={:016x}",
        ideal.to_bits(),
        analytical.to_bits(),
        geniex.to_bits()
    );

    geniex_bench::manifest::finish(
        run,
        &[
            ("ideal_accuracy", telemetry::Json::from(ideal)),
            ("analytical_accuracy", telemetry::Json::from(analytical)),
            ("geniex_accuracy", telemetry::Json::from(geniex)),
        ],
    );
}

//! Amortized-solve benchmark: cold per-sample circuit solving versus
//! the [`xbar::SolverCache`] batched path, emitting
//! `results/BENCH_solve.json` for `bench_gate --solve`.
//!
//! Both paths solve the same panel of random stimuli against the same
//! programmed tile:
//!
//! * **cold** — one `CrossbarCircuit::solve` per sample: every solve
//!   re-runs exact damped Newton from the zero guess, re-eliminating
//!   the Jacobian blocks inside every inner sweep.
//! * **amortized** — `SolverCache::for_circuit` once, then one
//!   `solve_batch` over the whole panel: the frozen-Jacobian
//!   factorization is built (or fetched from the process-wide
//!   registry) a single time and every sample after the first
//!   warm-starts from its predecessor's operating point (DESIGN.md
//!   §15).
//!
//! Two shapes run: the original 64×64 leg and an RxNN-scale 256×256
//! leg, where the factorization is ~64x more expensive and the
//! amortization win correspondingly larger. The gated metrics are the
//! **ratios** of per-sample times (`amortized_speedup` and
//! `amortized_speedup_256 = cold_ns / amortized_ns`), which are
//! machine-relative: a committed baseline transfers across hosts the
//! same way the kernel-gate speedups do. The acceptance floor for this
//! arc is 2.0x at 64×64, witnessed by
//! `results/BENCH_solve_baseline.json`.
//!
//! Usage: `solve_bench [out.json]` (default
//! `results/BENCH_solve.json`). `GENIEX_SOLVE_BENCH_SAMPLES` /
//! `GENIEX_SOLVE_BENCH_REPS` override the 64×64 panel size and
//! repetition count; `GENIEX_SOLVE_BENCH_SAMPLES_256` /
//! `GENIEX_SOLVE_BENCH_REPS_256` the 256×256 leg's.

use std::time::Instant;

use geniex_bench::setup::results_dir;
use telemetry::Json;
use xbar::{ConductanceMatrix, CrossbarCircuit, CrossbarParams, SolverCache};

const DEFAULT_SAMPLES: usize = 24;
const DEFAULT_REPS: usize = 3;
const DEFAULT_SAMPLES_256: usize = 8;
const DEFAULT_REPS_256: usize = 2;

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Deterministic xorshift64* stream in [0, 1).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct LegResult {
    size: usize,
    samples: usize,
    reps: usize,
    cold_ns: f64,
    amortized_ns: f64,
    cold_iters: usize,
    amortized_iters: usize,
    speedup: f64,
}

impl LegResult {
    fn fields(&self) -> Vec<(String, Json)> {
        vec![
            ("rows".to_string(), Json::from(self.size)),
            ("cols".to_string(), Json::from(self.size)),
            ("samples".to_string(), Json::from(self.samples)),
            ("reps".to_string(), Json::from(self.reps)),
            ("cold_ns_per_solve".to_string(), Json::from(self.cold_ns)),
            (
                "amortized_ns_per_solve".to_string(),
                Json::from(self.amortized_ns),
            ),
            ("cold_newton_iters".to_string(), Json::from(self.cold_iters)),
            (
                "amortized_newton_iters".to_string(),
                Json::from(self.amortized_iters),
            ),
        ]
    }
}

/// Runs the cold-vs-amortized comparison for one crossbar edge length.
fn run_leg(size: usize, samples: usize, reps: usize) -> LegResult {
    let params = CrossbarParams::builder(size, size)
        .build()
        .expect("default design point");
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ size as u64);
    let mut g = ConductanceMatrix::uniform(size, size, params.g_off());
    let span = params.g_on() - params.g_off();
    for i in 0..size {
        for j in 0..size {
            g.set(i, j, params.g_off() + span * rng.next_f64());
        }
    }
    let circuit = CrossbarCircuit::new(&params, &g).expect("circuit builds");

    // Correlated stimulus stream, like consecutive MVMs of a real
    // workload: each sample perturbs the previous one, which is the
    // regime warm-starting is designed for (a fully random stream
    // still amortizes the factorization, just with more iterations).
    let mut volts = vec![0.0f64; samples * size];
    for i in 0..size {
        volts[i] = params.v_supply * rng.next_f64();
    }
    for s in 1..samples {
        for i in 0..size {
            let prev = volts[(s - 1) * size + i];
            let jitter = 0.2 * params.v_supply * (rng.next_f64() - 0.5);
            volts[s * size + i] = (prev + jitter).clamp(0.0, params.v_supply);
        }
    }

    // Warm-up: fault in code paths and the factorization registry so
    // neither rep 0 nor the cold loop pays one-time costs.
    let first = &volts[..size];
    circuit.solve(first).expect("warm-up cold solve");
    let mut cache = SolverCache::for_circuit(&circuit);
    circuit
        .solve_amortized(first, &mut cache)
        .expect("warm-up amortized solve");

    let mut cold_best = f64::INFINITY;
    let mut cold_iters = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let mut iters = 0usize;
        for v in volts.chunks_exact(size) {
            let report = circuit.solve(v).expect("cold solve");
            iters += report.newton_iterations;
        }
        cold_best = cold_best.min(start.elapsed().as_secs_f64());
        cold_iters = iters;
    }

    let mut amortized_best = f64::INFINITY;
    let mut amortized_iters = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        // Fresh cache per rep: the timed region includes content
        // keying and the registry fetch, exactly what a newly
        // programmed tile pays.
        let mut cache = SolverCache::for_circuit(&circuit);
        let reports = circuit
            .solve_batch(&volts, samples, &mut cache)
            .expect("amortized batch solve");
        amortized_best = amortized_best.min(start.elapsed().as_secs_f64());
        amortized_iters = reports.iter().map(|r| r.newton_iterations).sum();
    }

    let cold_ns = cold_best * 1e9 / samples as f64;
    let amortized_ns = amortized_best * 1e9 / samples as f64;
    let speedup = cold_ns / amortized_ns;

    println!(
        "solve_bench: {size}x{size}, {samples} samples, best of {reps} reps\n\
         {:<12} {:>14.1} ns/solve  {:>5} Newton iterations\n\
         {:<12} {:>14.1} ns/solve  {:>5} Newton iterations\n\
         {:<12} {:>14.2}x",
        "cold", cold_ns, cold_iters, "amortized", amortized_ns, amortized_iters, "speedup", speedup
    );

    LegResult {
        size,
        samples,
        reps,
        cold_ns,
        amortized_ns,
        cold_iters,
        amortized_iters,
        speedup,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BENCH_solve.json"));

    let leg64 = run_leg(
        64,
        env_count("GENIEX_SOLVE_BENCH_SAMPLES", DEFAULT_SAMPLES),
        env_count("GENIEX_SOLVE_BENCH_REPS", DEFAULT_REPS),
    );
    let leg256 = run_leg(
        256,
        env_count("GENIEX_SOLVE_BENCH_SAMPLES_256", DEFAULT_SAMPLES_256),
        env_count("GENIEX_SOLVE_BENCH_REPS_256", DEFAULT_REPS_256),
    );

    // The 64×64 leg keeps its historical top-level keys so older
    // tooling reading this file stays compatible; the 256×256 leg
    // nests under "leg_256".
    let mut fields = leg64.fields();
    fields.push(("leg_256".to_string(), Json::Obj(leg256.fields())));
    fields.push((
        "gate".to_string(),
        Json::Obj(vec![
            ("amortized_speedup".to_string(), Json::from(leg64.speedup)),
            (
                "amortized_speedup_256".to_string(),
                Json::from(leg256.speedup),
            ),
        ]),
    ));

    let json = Json::Obj(fields);
    std::fs::write(&out_path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("solve_bench: cannot write {}: {e}", out_path.display());
        std::process::exit(2);
    });
    println!("wrote {}", out_path.display());
}

//! Amortized-solve benchmark: cold per-sample circuit solving versus
//! the [`xbar::SolverCache`] batched path, emitting
//! `results/BENCH_solve.json` for `bench_gate --solve`.
//!
//! Both paths solve the same panel of random stimuli against the same
//! programmed tile:
//!
//! * **cold** — one `CrossbarCircuit::solve` per sample: every solve
//!   re-runs exact damped Newton from the zero guess, re-eliminating
//!   the Jacobian blocks inside every inner sweep.
//! * **amortized** — `SolverCache::for_circuit` once, then one
//!   `solve_batch` over the whole panel: the frozen-Jacobian
//!   factorization is built (or fetched from the process-wide
//!   registry) a single time and every sample after the first
//!   warm-starts from its predecessor's operating point (DESIGN.md
//!   §15).
//!
//! The gated metric is the **ratio** of per-sample times
//! (`amortized_speedup = cold_ns / amortized_ns`), which is
//! machine-relative: a committed baseline transfers across hosts the
//! same way the kernel-gate speedups do. The acceptance floor for this
//! PR's arc is 2.0x, witnessed by `results/BENCH_solve_baseline.json`.
//!
//! Usage: `solve_bench [out.json]` (default
//! `results/BENCH_solve.json`). `GENIEX_SOLVE_BENCH_SAMPLES` /
//! `GENIEX_SOLVE_BENCH_REPS` override the panel size and repetition
//! count for quick local runs.

use std::time::Instant;

use geniex_bench::setup::results_dir;
use telemetry::Json;
use xbar::{ConductanceMatrix, CrossbarCircuit, CrossbarParams, SolverCache};

/// Crossbar edge length: large enough that the solve dominates the
/// harness, small enough to finish in seconds.
const SIZE: usize = 64;
const DEFAULT_SAMPLES: usize = 24;
const DEFAULT_REPS: usize = 3;

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Deterministic xorshift64* stream in [0, 1).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BENCH_solve.json"));
    let samples = env_count("GENIEX_SOLVE_BENCH_SAMPLES", DEFAULT_SAMPLES);
    let reps = env_count("GENIEX_SOLVE_BENCH_REPS", DEFAULT_REPS);

    let params = CrossbarParams::builder(SIZE, SIZE)
        .build()
        .expect("default design point");
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut g = ConductanceMatrix::uniform(SIZE, SIZE, params.g_off());
    let span = params.g_on() - params.g_off();
    for i in 0..SIZE {
        for j in 0..SIZE {
            g.set(i, j, params.g_off() + span * rng.next_f64());
        }
    }
    let circuit = CrossbarCircuit::new(&params, &g).expect("circuit builds");

    // Correlated stimulus stream, like consecutive MVMs of a real
    // workload: each sample perturbs the previous one, which is the
    // regime warm-starting is designed for (a fully random stream
    // still amortizes the factorization, just with more iterations).
    let mut volts = vec![0.0f64; samples * SIZE];
    for i in 0..SIZE {
        volts[i] = params.v_supply * rng.next_f64();
    }
    for s in 1..samples {
        for i in 0..SIZE {
            let prev = volts[(s - 1) * SIZE + i];
            let jitter = 0.2 * params.v_supply * (rng.next_f64() - 0.5);
            volts[s * SIZE + i] = (prev + jitter).clamp(0.0, params.v_supply);
        }
    }

    // Warm-up: fault in code paths and the factorization registry so
    // neither rep 0 nor the cold loop pays one-time costs.
    let first = &volts[..SIZE];
    circuit.solve(first).expect("warm-up cold solve");
    let mut cache = SolverCache::for_circuit(&circuit);
    circuit
        .solve_amortized(first, &mut cache)
        .expect("warm-up amortized solve");

    let mut cold_best = f64::INFINITY;
    let mut cold_iters = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let mut iters = 0usize;
        for v in volts.chunks_exact(SIZE) {
            let report = circuit.solve(v).expect("cold solve");
            iters += report.newton_iterations;
        }
        cold_best = cold_best.min(start.elapsed().as_secs_f64());
        cold_iters = iters;
    }

    let mut amortized_best = f64::INFINITY;
    let mut amortized_iters = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        // Fresh cache per rep: the timed region includes content
        // keying and the registry fetch, exactly what a newly
        // programmed tile pays.
        let mut cache = SolverCache::for_circuit(&circuit);
        let reports = circuit
            .solve_batch(&volts, samples, &mut cache)
            .expect("amortized batch solve");
        amortized_best = amortized_best.min(start.elapsed().as_secs_f64());
        amortized_iters = reports.iter().map(|r| r.newton_iterations).sum();
    }

    let cold_ns = cold_best * 1e9 / samples as f64;
    let amortized_ns = amortized_best * 1e9 / samples as f64;
    let speedup = cold_ns / amortized_ns;

    println!(
        "solve_bench: {SIZE}x{SIZE}, {samples} samples, best of {reps} reps\n\
         {:<12} {:>14.1} ns/solve  {:>5} Newton iterations\n\
         {:<12} {:>14.1} ns/solve  {:>5} Newton iterations\n\
         {:<12} {:>14.2}x",
        "cold", cold_ns, cold_iters, "amortized", amortized_ns, amortized_iters, "speedup", speedup
    );

    let json = Json::Obj(vec![
        ("rows".to_string(), Json::from(SIZE)),
        ("cols".to_string(), Json::from(SIZE)),
        ("samples".to_string(), Json::from(samples)),
        ("reps".to_string(), Json::from(reps)),
        ("cold_ns_per_solve".to_string(), Json::from(cold_ns)),
        (
            "amortized_ns_per_solve".to_string(),
            Json::from(amortized_ns),
        ),
        ("cold_newton_iters".to_string(), Json::from(cold_iters)),
        (
            "amortized_newton_iters".to_string(),
            Json::from(amortized_iters),
        ),
        (
            "gate".to_string(),
            Json::Obj(vec![("amortized_speedup".to_string(), Json::from(speedup))]),
        ),
    ]);
    std::fs::write(&out_path, json.to_string() + "\n").unwrap_or_else(|e| {
        eprintln!("solve_bench: cannot write {}: {e}", out_path.display());
        std::process::exit(2);
    });
    println!("wrote {}", out_path.display());
}

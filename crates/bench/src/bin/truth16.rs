use funcsim::{evaluate_spec, ArchConfig, CircuitEngine};
use geniex_bench::setup::{
    accuracy_design_point, cached_f64_blob, standard_workload, DEFAULT_SIZE,
};
use std::time::Instant;
use store::KeyBuilder;
use vision::{rescale_for_fxp, SynthSpec, SynthVision};

fn main() {
    // GENIEX_TRUTH16_PER_CLASS shrinks the evaluation subset for smoke
    // runs (CI uses 1 image per class; the default 4 reproduces the
    // headline 32-image measurement).
    let per_class = std::env::var("GENIEX_TRUTH16_PER_CLASS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let subset = SynthVision::generate(SynthSpec::SynthS, per_class, 999).unwrap();
    let run = geniex_bench::manifest::start(
        "truth16",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("images", telemetry::Json::from(subset.len() as u64)),
        ],
    );
    let workload = standard_workload(SynthSpec::SynthS);
    let calib_data = SynthVision::generate(SynthSpec::SynthS, 8, 1).unwrap();
    let (calib, _) = calib_data.full_batch().unwrap();
    let spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5).unwrap();
    let arch = ArchConfig::default().with_xbar(accuracy_design_point(DEFAULT_SIZE));
    // 32 images: enough to separate 50.8% from 52.3% only coarsely, but
    // enough to confirm which side of ideal the truth sits on.
    //
    // The measurement is deterministic, so the result is store-cached,
    // keyed by the full rescaled spec content (weights included), the
    // architecture, and the evaluation subset.
    let t = Instant::now();
    let mut kb = KeyBuilder::new(store::KIND_SWEEP);
    kb.str("op", "truth16_eval")
        .usize("per_class", per_class)
        .u64("subset_seed", 999)
        .usize("batch", 16)
        .nested("spec", &spec)
        .nested("arch", &arch);
    let row = cached_f64_blob(&kb.finish(), || {
        Ok::<_, funcsim::FuncsimError>(vec![evaluate_spec(
            spec.clone(),
            &arch,
            &CircuitEngine,
            &subset,
            16,
        )?])
    })
    .unwrap();
    let truth = row[0];
    println!(
        "TRUTH16 {truth:.4} over {} images in {:.0?}",
        subset.len(),
        t.elapsed()
    );
    geniex_bench::manifest::finish(run, &[("circuit_accuracy", telemetry::Json::from(truth))]);
}

//! Ablation: device variations and stuck-at faults on top of the
//! analytical backend.
//!
//! The paper motivates GENIEx partly by noting that non-ideality
//! effects are "exacerbated further due to the device variations"
//! (Section 1). This sweep quantifies that: classification accuracy
//! versus programming spread (lognormal sigma) and stuck-at fault
//! rates.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_variations
//! ```

use funcsim::{evaluate_spec, AnalyticalEngine, ArchConfig, IdealEngine, VariationEngine};
use geniex_bench::setup::{accuracy_design_point, results_dir, standard_workload, DEFAULT_SIZE};
use geniex_bench::table::{fix, pct, Table};
use vision::{rescale_for_fxp, SynthSpec, SynthVision};
use xbar::VariationConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_variations",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("seed", telemetry::Json::from(1234u64)),
        ],
    );
    let workload = standard_workload(SynthSpec::SynthS);
    let calib_data = SynthVision::generate(SynthSpec::SynthS, 8, 1)?;
    let (calib, _) = calib_data.full_batch()?;
    let spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5)?;
    let arch = ArchConfig::default().with_xbar(accuracy_design_point(DEFAULT_SIZE));

    println!("FP32 reference accuracy: {}%", pct(workload.fp32_accuracy));
    let mut table = Table::new(&["sigma", "stuck_rate", "ideal_pct", "analytical_pct"]);

    for (sigma, stuck) in [
        (0.0, 0.0),
        (0.1, 0.0),
        (0.2, 0.0),
        (0.4, 0.0),
        (0.0, 0.01),
        (0.0, 0.05),
        (0.2, 0.01),
    ] {
        let config = VariationConfig {
            conductance_sigma: sigma,
            stuck_off_rate: stuck / 2.0,
            stuck_on_rate: stuck / 2.0,
            seed: 1234,
        };
        let ideal = evaluate_spec(
            spec.clone(),
            &arch,
            &VariationEngine::new(IdealEngine, config)?,
            &workload.test,
            16,
        )?;
        let analytical = evaluate_spec(
            spec.clone(),
            &arch,
            &VariationEngine::new(AnalyticalEngine, config)?,
            &workload.test,
            16,
        )?;
        println!(
            "sigma {sigma:.1} stuck {stuck:.2}: ideal-arith {}%, analytical {}%",
            pct(ideal),
            pct(analytical)
        );
        table.row(&[fix(sigma, 2), fix(stuck, 3), pct(ideal), pct(analytical)]);
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("ablation_variations.csv"))?;
    println!("expected: accuracy degrades with spread and fault rate; IR drop compounds it");
    geniex_bench::manifest::finish(
        run,
        &[(
            "fp32_accuracy",
            telemetry::Json::from(workload.fp32_accuracy),
        )],
    );
    Ok(())
}

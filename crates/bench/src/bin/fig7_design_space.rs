//! Figure 7: impact of crossbar design parameters on classification
//! accuracy (CIFAR-100 stand-in: MicroResNet on synth-s, 16-bit FxP,
//! 4-bit streams and slices).
//!
//! (a) crossbar size sweep, (b) ON-resistance sweep, (c) ON/OFF ratio
//! sweep — each comparing ideal FxP vs GENIEx-modelled accuracy;
//! (d) analytical vs GENIEx at Vsupply = 0.25 V and 0.5 V, showing the
//! analytical model overestimating degradation.
//!
//! Pass an axis to run a subset: `--axis size|ron|onoff|model`.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin fig7_design_space [-- --axis size]
//! ```

use funcsim::{evaluate_spec, AnalyticalEngine, ArchConfig, GeniexEngine, IdealEngine};
use geniex_bench::setup::{
    accuracy_design_point, results_dir, standard_workload, train_surrogate_for_workload,
    SurrogateBudget, DEFAULT_SIZE, ON_OFFS, RONS, SIZES,
};
use geniex_bench::table::{pct, Table};
use vision::{rescale_for_fxp, NetworkSpec, SynthSpec, SynthVision};
use xbar::CrossbarParams;

struct Context {
    spec: NetworkSpec,
    test: SynthVision,
    calib: nn::Tensor,
    fp32: f64,
}

fn context() -> Context {
    let workload = standard_workload(SynthSpec::SynthS);
    let train = SynthVision::generate(SynthSpec::SynthS, 8, 1).expect("calibration set");
    let (calib, _) = train.full_batch().expect("calibration batch");
    let spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5).expect("fxp calibration");
    Context {
        spec,
        test: workload.test,
        calib,
        fp32: workload.fp32_accuracy,
    }
}

/// Accuracy under ideal / analytical / GENIEx backends at one design
/// point.
fn accuracies(ctx: &Context, xbar: &CrossbarParams) -> (f64, f64, f64) {
    let arch = ArchConfig::default().with_xbar(xbar.clone());
    let surrogate = train_surrogate_for_workload(
        xbar,
        &SurrogateBudget::default(),
        &ctx.spec,
        &arch,
        &ctx.calib,
    );
    let ideal = evaluate_spec(ctx.spec.clone(), &arch, &IdealEngine, &ctx.test, 16)
        .expect("ideal evaluation");
    let analytical = evaluate_spec(ctx.spec.clone(), &arch, &AnalyticalEngine, &ctx.test, 16)
        .expect("analytical evaluation");
    let geniex = evaluate_spec(
        ctx.spec.clone(),
        &arch,
        &GeniexEngine::new(surrogate),
        &ctx.test,
        16,
    )
    .expect("geniex evaluation");
    (ideal, analytical, geniex)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let axis = args
        .iter()
        .position(|a| a == "--axis")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    let run = geniex_bench::manifest::start(
        "fig7_design_space",
        &[
            ("axis", telemetry::Json::from(axis)),
            ("default_size", telemetry::Json::from(DEFAULT_SIZE)),
        ],
    );
    let ctx = context();
    println!("FP32 reference accuracy: {}%", pct(ctx.fp32));
    let out_dir = results_dir();
    let headers = ["design", "ideal_pct", "analytical_pct", "geniex_pct"];

    if axis == "all" || axis == "size" {
        println!("\n== Fig 7(a): accuracy vs crossbar size ==");
        let mut t = Table::new(&headers);
        for &size in &SIZES {
            let (i, a, g) = accuracies(&ctx, &accuracy_design_point(size));
            t.row(&[format!("{size}x{size}"), pct(i), pct(a), pct(g)]);
        }
        print!("{}", t.render());
        t.write_csv(out_dir.join("fig7a_size.csv"))?;
    }

    if axis == "all" || axis == "ron" {
        println!("\n== Fig 7(b): accuracy vs ON resistance ==");
        let mut t = Table::new(&headers);
        for &ron in &RONS {
            let mut xb = accuracy_design_point(DEFAULT_SIZE);
            xb.r_on = ron;
            let (i, a, g) = accuracies(&ctx, &xb);
            t.row(&[format!("{}k", ron / 1e3), pct(i), pct(a), pct(g)]);
        }
        print!("{}", t.render());
        t.write_csv(out_dir.join("fig7b_ron.csv"))?;
    }

    if axis == "all" || axis == "onoff" {
        println!("\n== Fig 7(c): accuracy vs ON/OFF ratio ==");
        let mut t = Table::new(&headers);
        for &ratio in &ON_OFFS {
            let mut xb = accuracy_design_point(DEFAULT_SIZE);
            xb.on_off_ratio = ratio;
            let (i, a, g) = accuracies(&ctx, &xb);
            t.row(&[format!("{ratio}"), pct(i), pct(a), pct(g)]);
        }
        print!("{}", t.render());
        t.write_csv(out_dir.join("fig7c_onoff.csv"))?;
    }

    if axis == "all" || axis == "model" {
        println!("\n== Fig 7(d): analytical vs GENIEx across supply voltage ==");
        let mut t = Table::new(&headers);
        for v_supply in [0.25, 0.5] {
            let mut xb = accuracy_design_point(DEFAULT_SIZE);
            xb.v_supply = v_supply;
            let (i, a, g) = accuracies(&ctx, &xb);
            t.row(&[format!("{v_supply}V"), pct(i), pct(a), pct(g)]);
        }
        print!("{}", t.render());
        t.write_csv(out_dir.join("fig7d_model.csv"))?;
        println!(
            "paper trend: the analytical model overestimates degradation \
             (lower accuracy) relative to GENIEx at both voltages"
        );
    }
    geniex_bench::manifest::finish(run, &[("fp32_accuracy", telemetry::Json::from(ctx.fp32))]);
    Ok(())
}

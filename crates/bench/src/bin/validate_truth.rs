//! Ground-truth validation: runs the *full circuit solver* inside the
//! functional simulator on a small design point and compares every
//! model against it.
//!
//! The paper cannot do this — HSPICE in the application loop is
//! exactly what GENIEx exists to avoid — but our circuit solver is
//! fast enough at 8×8 to measure the true accuracy on a small image
//! subset and check the ordering directly:
//!
//! ```text
//! analytical  <=  geniex ≈ truth  <=  ideal   (in accuracy terms)
//! ```
//!
//! ```text
//! cargo run --release -p geniex-bench --bin validate_truth
//! ```

use funcsim::{
    evaluate_spec, AnalyticalEngine, ArchConfig, CircuitEngine, GeniexEngine, IdealEngine,
};
use geniex_bench::setup::{
    results_dir, standard_workload, train_surrogate_for_workload, SurrogateBudget,
};
use geniex_bench::table::{pct, Table};
use std::time::Instant;
use vision::{rescale_for_fxp, SynthSpec, SynthVision};
use xbar::CrossbarParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let manifest = geniex_bench::manifest::start(
        "validate_truth",
        &[
            ("xbar_size", telemetry::Json::from(8u64)),
            ("r_on", telemetry::Json::from(50e3)),
            ("on_off_ratio", telemetry::Json::from(2.0)),
            ("images", telemetry::Json::from(16u64)),
        ],
    );
    let workload = standard_workload(SynthSpec::SynthS);
    let calib_data = SynthVision::generate(SynthSpec::SynthS, 8, 1)?;
    let (calib, _) = calib_data.full_batch()?;
    let spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5)?;

    // Small subset: the circuit backend solves every (tile, slice,
    // stream) crossbar op with Newton, which is orders of magnitude
    // slower than any model.
    let subset = SynthVision::generate(SynthSpec::SynthS, 2, 999)?; // 16 images
                                                                    // A hostile small design point so degradation is visible.
    let xbar = CrossbarParams::builder(8, 8)
        .r_on(50e3)
        .on_off_ratio(2.0)
        .build()?;
    let arch = ArchConfig::default().with_xbar(xbar.clone());
    let surrogate =
        train_surrogate_for_workload(&xbar, &SurrogateBudget::default(), &spec, &arch, &calib);

    let mut table = Table::new(&["model", "accuracy_pct", "seconds"]);
    let mut run = |name: &str, engine: &dyn funcsim::CrossbarEngine| {
        let t = Instant::now();
        let acc = evaluate_spec(spec.clone(), &arch, engine, &subset, 16).expect("evaluation");
        println!("{name:>12}: {}% in {:.1?}", pct(acc), t.elapsed());
        table.row(&[
            name.to_string(),
            pct(acc),
            format!("{:.1}", t.elapsed().as_secs_f64()),
        ]);
        acc
    };

    let ideal = run("ideal", &IdealEngine);
    let analytical = run("analytical", &AnalyticalEngine);
    let geniex = run("geniex", &GeniexEngine::new(surrogate));
    let truth = run("circuit", &CircuitEngine);

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("validate_truth.csv"))?;
    println!(
        "orderings: ideal {} / truth {} / geniex {} / analytical {}",
        pct(ideal),
        pct(truth),
        pct(geniex),
        pct(analytical)
    );
    println!(
        "target shape: geniex tracks the circuit truth; analytical \
         overestimates the degradation (sits at or below truth)"
    );
    geniex_bench::manifest::finish(
        manifest,
        &[
            ("ideal_accuracy", telemetry::Json::from(ideal)),
            ("analytical_accuracy", telemetry::Json::from(analytical)),
            ("geniex_accuracy", telemetry::Json::from(geniex)),
            ("circuit_accuracy", telemetry::Json::from(truth)),
        ],
    );
    Ok(())
}

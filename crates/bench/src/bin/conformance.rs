//! Conformance suite runner: executes every registered law
//! (differential oracles, physics invariants, metamorphic relations)
//! and writes a JSONL report through the telemetry manifest.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin conformance
//! cargo run --release -p geniex-bench --bin conformance -- --list
//! cargo run --release -p geniex-bench --bin conformance -- --law oracle/gemv --cases 32
//! GENIEX_CONFORMANCE_SEED=7 cargo run --release -p geniex-bench --bin conformance
//! ```
//!
//! On any violation the process prints the failing cases, emits the
//! one-line `GENIEX_CONFORMANCE_SEED=<n> ...` reproduction command,
//! and exits non-zero. Per-law records land in
//! `results/logs/conformance.jsonl`.

use conformance::{run_laws, Law, SuiteConfig};
use telemetry::Json;

struct Args {
    law_filter: Option<String>,
    cases: Option<u64>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        law_filter: None,
        cases: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--law" => {
                args.law_filter = Some(it.next().ok_or("--law needs a substring argument")?);
            }
            "--cases" => {
                let n = it.next().ok_or("--cases needs a count argument")?;
                args.cases = Some(n.parse().map_err(|_| format!("bad case count `{n}`"))?);
            }
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: conformance [--list] [--law <substring>] [--cases <n>]".to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let mut laws: Vec<Box<dyn Law>> = conformance::registry();
    if let Some(filter) = &args.law_filter {
        laws.retain(|l| l.name().contains(filter.as_str()));
        if laws.is_empty() {
            eprintln!("no law matches `{filter}` (run with --list to see the registry)");
            std::process::exit(2);
        }
    }
    if args.list {
        for law in &laws {
            println!("{:<44} {}", law.name(), law.tolerance());
        }
        return;
    }

    let mut config = SuiteConfig::from_env();
    if args.cases.is_some() {
        config.cases_override = args.cases;
    }

    let run = geniex_bench::manifest::start(
        "conformance",
        &[
            ("seed", Json::from(config.seed)),
            (
                "cases_override",
                config.cases_override.map_or(Json::Null, Json::from),
            ),
            (
                "law_filter",
                args.law_filter.as_deref().map_or(Json::Null, Json::from),
            ),
            ("laws", Json::from(laws.len())),
            ("threads", Json::from(parallel::default_threads())),
        ],
    );

    println!(
        "conformance suite: {} laws, seed {}",
        laws.len(),
        config.seed
    );
    let report = run_laws(&laws, &config);
    for law in &report.laws {
        let status = if law.passed() { "pass" } else { "FAIL" };
        println!(
            "  [{status}] {:<44} {:>3} cases {:>8.1} ms",
            law.name, law.cases_run, law.wall_ms
        );
        for failure in &law.failures {
            println!("         case {}: {}", failure.case, failure.detail);
        }
        telemetry::emit(
            "conformance",
            "conformance.law",
            vec![
                ("law".to_string(), Json::from(law.name)),
                ("category".to_string(), Json::from(law.category.as_str())),
                ("tolerance".to_string(), Json::from(law.tolerance)),
                ("cases".to_string(), Json::from(law.cases_run)),
                ("failures".to_string(), Json::from(law.failures.len())),
                ("wall_ms".to_string(), Json::from(law.wall_ms)),
                ("passed".to_string(), Json::from(law.passed())),
            ],
        );
    }
    println!(
        "{} laws, {} cases, {} violation(s)",
        report.laws.len(),
        report.total_cases(),
        report.total_failures()
    );

    let repro = report.repro_line();
    geniex_bench::manifest::finish(
        run,
        &[
            ("laws", Json::from(report.laws.len())),
            ("cases", Json::from(report.total_cases())),
            ("failures", Json::from(report.total_failures())),
            ("passed", Json::from(report.passed())),
        ],
    );
    if let Some(line) = repro {
        eprintln!("reproduce with:\n  {line}");
        std::process::exit(1);
    }
}

//! Ablation: surrogate ensembling.
//!
//! Independently initialized surrogates make roughly uncorrelated
//! prediction errors; averaging k of them cuts the random component of
//! the f_R error by ≈ √k at k× the (still GEMV-cheap) inference cost.
//! This quantifies the NF RMSE as the ensemble grows.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_ensemble
//! ```

use geniex::dataset::DatasetConfig;
use geniex::TrainConfig;
use geniex_bench::setup::{
    cached_dataset, cached_f64_blob, cached_surrogate, design_point, results_dir, DEFAULT_SIZE,
};
use geniex_bench::table::{fix, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{Canonical, KeyBuilder};
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_ensemble",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("members", telemetry::Json::from(4u64)),
            ("samples", telemetry::Json::from(3000u64)),
        ],
    );
    let params = design_point(DEFAULT_SIZE);
    let n = DEFAULT_SIZE;
    let data = cached_dataset(
        &params,
        &DatasetConfig {
            samples: 3000,
            seed: 7,
            ..DatasetConfig::default()
        },
    );

    // Train (or load) 4 members with different init seeds on
    // identical data.
    let mut members = Vec::new();
    for seed in [3u64, 13, 23, 33] {
        members.push(cached_surrogate(
            &data,
            200,
            seed,
            &TrainConfig {
                epochs: 100,
                ..TrainConfig::default()
            },
        ));
    }

    // Held-out stimuli, labelled on the circuit. The (V, G) draws are
    // deterministic from the seed; only the solver truth is cached.
    let mut rng = StdRng::seed_from_u64(515);
    let mut drawn = Vec::new();
    for _ in 0..30 {
        let v_sparsity = rng.gen_range(0.0..0.9);
        let g_sparsity = rng.gen_range(0.0..0.9);
        let v: Vec<f64> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < v_sparsity {
                    0.0
                } else {
                    params.v_supply * rng.gen_range(1..=16) as f64 / 16.0
                }
            })
            .collect();
        let g = ConductanceMatrix::random_sparse(&params, g_sparsity, &mut rng);
        drawn.push((v, g));
    }
    let mut kb = KeyBuilder::new(store::KIND_SWEEP);
    kb.str("op", "ablation_ensemble_truth")
        .u64("seed", 515)
        .usize("stimuli", drawn.len());
    params.canonicalize(&mut kb);
    let truth_flat = cached_f64_blob(&kb.finish(), || {
        let mut flat = Vec::with_capacity(drawn.len() * n);
        for (v, g) in &drawn {
            flat.extend(CrossbarCircuit::new(&params, g)?.solve(v)?.currents);
        }
        Ok::<_, Box<dyn std::error::Error>>(flat)
    })?;
    let mut stimuli = Vec::new();
    for ((v, g), truth) in drawn.into_iter().zip(truth_flat.chunks_exact(n)) {
        let ideal = ideal_mvm(&v, &g)?;
        stimuli.push((v, g, ideal, truth.to_vec()));
    }

    let floor = 0.05 * params.g_off() * params.v_supply;
    let mut table = Table::new(&["members", "nf_rmse"]);
    for k in 1..=members.len() {
        let mut sq = 0.0f64;
        let mut count = 0usize;
        for (v, g, ideal, truth) in &stimuli {
            // Average predicted currents over the first k members.
            let mut mean = vec![0.0f64; n];
            for m in &members[..k] {
                let pred = m.clone().predict_currents(v, g)?;
                for (acc, p) in mean.iter_mut().zip(&pred) {
                    *acc += p / k as f64;
                }
            }
            for j in 0..n {
                if ideal[j].abs() > floor {
                    let nf_true = (ideal[j] - truth[j]) / ideal[j];
                    let nf_pred = (ideal[j] - mean[j]) / ideal[j];
                    sq += (nf_true - nf_pred).powi(2);
                    count += 1;
                }
            }
        }
        let rmse = (sq / count.max(1) as f64).sqrt();
        println!("{k} member(s): NF RMSE {rmse:.4}");
        table.row(&[k.to_string(), fix(rmse, 4)]);
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("ablation_ensemble.csv"))?;
    println!("expected: RMSE falls roughly like 1/sqrt(k) until the shared bias floor");
    geniex_bench::manifest::finish(run, &[("rows", telemetry::Json::from(table.len() as u64))]);
    Ok(())
}

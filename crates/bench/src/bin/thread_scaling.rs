//! Thread-scaling benchmark: times the circuit-solve sweep on a
//! 1-thread pool vs a pool at the configured width, checks the two
//! runs are bit-identical, and records the speedup.
//!
//! Writes `results/thread_scaling.csv` and a run manifest. On a
//! single-core machine the speedup is ~1×; CI's multi-core runners
//! demonstrate the real scaling.

use parallel::ThreadPool;
use std::fmt::Write as _;
use std::time::Instant;
use xbar::sweep::{random_stimulus, Stimulus};
use xbar::{ideal_mvm, CrossbarCircuit, CrossbarParams};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZE: usize = 16;
const N_STIMULI: usize = 24;
const REPS: usize = 3;

fn draw_stimuli(params: &CrossbarParams) -> Vec<Stimulus> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..N_STIMULI)
        .map(|_| {
            let v_sparsity = rng.gen_range(0.0..0.9);
            let g_sparsity = rng.gen_range(0.0..0.9);
            random_stimulus(params, v_sparsity, g_sparsity, &mut rng)
        })
        .collect()
}

fn solve_all(pool: &ThreadPool, params: &CrossbarParams, stimuli: &[Stimulus]) -> Vec<f64> {
    let solved = pool.par_map_grained(stimuli, 1, |stimulus| {
        let circuit = CrossbarCircuit::new(params, &stimulus.conductances).expect("circuit build");
        let report = circuit.solve(&stimulus.voltages).expect("circuit solve");
        let ideal = ideal_mvm(&stimulus.voltages, &stimulus.conductances).expect("ideal mvm");
        (ideal, report.currents)
    });
    let mut out = Vec::new();
    for (ideal, non_ideal) in solved {
        out.extend(ideal);
        out.extend(non_ideal);
    }
    out
}

fn best_time(pool: &ThreadPool, params: &CrossbarParams, stimuli: &[Stimulus]) -> (f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut result = Vec::new();
    for _ in 0..REPS {
        let t = Instant::now();
        result = solve_all(pool, params, stimuli);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let threads = parallel::default_threads();
    let run = geniex_bench::manifest::start(
        "thread_scaling",
        &[
            ("size", telemetry::Json::from(SIZE)),
            ("stimuli", telemetry::Json::from(N_STIMULI)),
            ("parallel_threads", telemetry::Json::from(threads)),
        ],
    );
    let params = CrossbarParams::builder(SIZE, SIZE)
        .build()
        .expect("valid design point");
    let stimuli = draw_stimuli(&params);

    let serial_pool = ThreadPool::with_name(1, "scaling-serial");
    let parallel_pool = ThreadPool::with_name(threads, "scaling-parallel");
    // Warm both pools once so thread spawn cost and cold caches stay
    // out of the timing.
    let _ = solve_all(&serial_pool, &params, &stimuli);
    let _ = solve_all(&parallel_pool, &params, &stimuli);

    let (serial_s, serial_out) = best_time(&serial_pool, &params, &stimuli);
    let (parallel_s, parallel_out) = best_time(&parallel_pool, &params, &stimuli);

    // Determinism cross-check: same bits regardless of pool width.
    assert_eq!(serial_out.len(), parallel_out.len());
    for (i, (a, b)) in serial_out.iter().zip(&parallel_out).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "solve output {i} differs between 1 and {threads} threads"
        );
    }

    let speedup = serial_s / parallel_s;
    println!(
        "THREAD_SCALING threads={threads} serial_s={serial_s:.4} parallel_s={parallel_s:.4} \
         speedup={speedup:.2}x (bit-identical)"
    );

    let mut csv = String::from("threads,serial_s,parallel_s,speedup\n");
    let _ = writeln!(csv, "{threads},{serial_s:.6},{parallel_s:.6},{speedup:.4}");
    let path = geniex_bench::setup::results_dir().join("thread_scaling.csv");
    std::fs::create_dir_all(path.parent().unwrap()).expect("results dir");
    std::fs::write(&path, csv).expect("write csv");
    eprintln!("[scaling] wrote {}", path.display());

    geniex_bench::manifest::finish(
        run,
        &[
            ("serial_s", telemetry::Json::from(serial_s)),
            ("parallel_s", telemetry::Json::from(parallel_s)),
            ("speedup", telemetry::Json::from(speedup)),
        ],
    );
}

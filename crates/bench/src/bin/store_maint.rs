//! Maintenance tool for the on-disk artifact store (`results/store/`).
//!
//! ```text
//! cargo run --release -p geniex-bench --bin store_maint -- ls
//! cargo run --release -p geniex-bench --bin store_maint -- verify
//! cargo run --release -p geniex-bench --bin store_maint -- gc [--older-than-days N]
//! ```
//!
//! * `ls` — list every entry (kind, key, size, age).
//! * `verify` — re-read every entry, checking magic, version, and
//!   checksum; corrupt entries are quarantined, stale ones reported.
//! * `gc` — delete entries (optionally only those older than N days)
//!   plus quarantined and orphaned temporary files.

use std::io::Write;
use std::time::{Duration, SystemTime};

use geniex_bench::setup::store;

/// Print a line, exiting quietly if stdout's pipe closed (`ls | head`).
macro_rules! outln {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    };
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("ls");
    let store = store();
    outln!(
        "store root: {} (mode: {})",
        store.root().display(),
        store.mode().name()
    );

    match cmd {
        "ls" => {
            let entries = store.entries()?;
            if entries.is_empty() {
                outln!("(empty)");
                return Ok(());
            }
            let now = SystemTime::now();
            let mut total = 0u64;
            outln!("{:<6} {:<32} {:>12} {:>10}", "kind", "key", "bytes", "age");
            for e in &entries {
                let age = e
                    .modified
                    .and_then(|m| now.duration_since(m).ok())
                    .map(human_age)
                    .unwrap_or_else(|| "?".into());
                outln!(
                    "{:<6} {:<32} {:>12} {:>10}",
                    e.kind,
                    e.key_hex,
                    e.bytes,
                    age
                );
                total += e.bytes;
            }
            outln!("{} entries, {} bytes total", entries.len(), total);
        }
        "verify" => {
            let report = store.verify()?;
            outln!(
                "{} ok, {} stale (old format/schema), {} corrupt (quarantined)",
                report.ok,
                report.stale,
                report.corrupt
            );
            if report.corrupt > 0 {
                std::process::exit(1);
            }
        }
        "gc" => {
            let older_than = match args.get(1).map(String::as_str) {
                Some("--older-than-days") => {
                    let days: u64 = args
                        .get(2)
                        .ok_or("--older-than-days requires a value")?
                        .parse()?;
                    Some(Duration::from_secs(days * 24 * 3600))
                }
                Some(other) => return Err(format!("unknown gc option: {other}").into()),
                None => None,
            };
            let (removed, bytes) = store.gc(older_than)?;
            outln!("removed {removed} entries ({bytes} bytes)");
        }
        other => {
            eprintln!("unknown command: {other} (expected ls | verify | gc)");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn human_age(d: Duration) -> String {
    let s = d.as_secs();
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m", s / 60)
    } else if s < 86400 {
        format!("{}h", s / 3600)
    } else {
        format!("{}d", s / 86400)
    }
}

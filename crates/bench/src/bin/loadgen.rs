//! Load harness for `geniex-serve`: drives a running server with
//! concurrent clients, spot-checks answers bit-for-bit against a
//! locally built funcsim oracle, and writes
//! `results/BENCH_serve.json` with throughput, latency percentiles,
//! and the batch-occupancy histogram.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--duration-s S]
//!         [--concurrency C] [--rate R] [--kind mvm|infer]
//!         [--check-every K] [--no-oracle] [--compare] [--reps R]
//!         [--batch N] [--linger-us N] [--warmup N] [--seed S]
//!         [--out PATH] [--ping]
//! ```
//!
//! Closed-loop by default (each worker fires its next request as soon
//! as the previous answer lands); `--rate R` switches to an open loop
//! with Poisson-ish exponential inter-arrivals at R requests/s total.
//! `--compare` runs two phases against the same server — `single`
//! (`Configure(1, 0)`, no batching) then `batched` (`Configure(batch,
//! linger)`) — and records `batched_speedup` under the summary's
//! `gate` object for `bench_gate --serve`. `--reps R` repeats the
//! phase pair R times back to back (single, batched, single, …) and
//! the gate ratio is the best per-rep pair — each rep's phases share
//! one machine window, so drift on a shared host cancels out of the
//! ratio instead of biasing whichever phase ran last. `--ping` just
//! checks the server answers (CI readiness polling) and exits.
//!
//! The oracle rebuilds the server's workload locally from the same
//! `GENIEX_SERVE_*` environment, so run loadgen with the environment
//! the server was started with.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Client, ServeConfig, ServeWorkload};
use telemetry::json::{parse, Json};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Mvm,
    Infer,
}

#[derive(Clone)]
struct LoadCfg {
    addr: String,
    requests: u64,
    duration_s: f64,
    concurrency: usize,
    rate: f64,
    kind: Kind,
    check_every: u64,
    oracle: bool,
    compare: bool,
    reps: u64,
    batch: u32,
    linger_us: u64,
    warmup: u64,
    seed: u64,
    out: PathBuf,
}

impl Default for LoadCfg {
    fn default() -> LoadCfg {
        LoadCfg {
            addr: std::env::var("GENIEX_SERVE_ADDR")
                .unwrap_or_else(|_| "127.0.0.1:4917".to_string()),
            requests: 400,
            duration_s: 0.0,
            concurrency: 8,
            rate: 0.0,
            kind: Kind::Mvm,
            check_every: 16,
            oracle: true,
            compare: false,
            reps: 1,
            batch: 16,
            linger_us: 200,
            warmup: 64,
            seed: 42,
            out: geniex_bench::setup::results_dir().join("BENCH_serve.json"),
        }
    }
}

struct PhaseStats {
    name: &'static str,
    max_batch: u32,
    linger_us: u64,
    requests: u64,
    errors: u64,
    oracle_checks: u64,
    mismatches: u64,
    elapsed_s: f64,
    rps: f64,
    latency_us: Percentiles,
    occupancy_bounds: Vec<f64>,
    occupancy_counts: Vec<u64>,
    occupancy_mean: f64,
}

struct Percentiles {
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

fn percentiles(latencies_us: &mut [f64]) -> Percentiles {
    if latencies_us.is_empty() {
        return Percentiles {
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    latencies_us.sort_by(f64::total_cmp);
    let at = |q: f64| {
        let idx = ((latencies_us.len() - 1) as f64 * q).round() as usize;
        latencies_us[idx]
    };
    Percentiles {
        mean: latencies_us.iter().sum::<f64>() / latencies_us.len() as f64,
        p50: at(0.50),
        p95: at(0.95),
        p99: at(0.99),
        max: *latencies_us.last().expect("non-empty"),
    }
}

/// Pulls `batch_occupancy` `bounds`/`buckets` out of a `/stats`
/// document.
fn occupancy(stats_json: &str) -> Result<(Vec<f64>, Vec<u64>), String> {
    let root = parse(stats_json)?;
    let hist = root
        .get("batch_occupancy")
        .ok_or("stats without batch_occupancy")?;
    let nums = |key: &str| -> Result<Vec<f64>, String> {
        hist.get(key)
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_f64).collect())
            .ok_or_else(|| format!("batch_occupancy without '{key}'"))
    };
    let bounds = nums("bounds")?;
    let counts = nums("buckets")?.into_iter().map(|c| c as u64).collect();
    Ok((bounds, counts))
}

/// Everything a worker needs to generate and verify requests.
#[derive(Clone, Copy)]
struct FireCtx<'a> {
    oracle: Option<&'a ServeWorkload>,
    shape: [usize; 3],
    kind: Kind,
    scfg: &'a ServeConfig,
}

/// One request by index: generates deterministic content, sends it,
/// and optionally re-derives the expected answer locally.
fn fire(
    client: &mut Client,
    ctx: FireCtx<'_>,
    salt: u64,
    index: u64,
    check: bool,
) -> Result<(f64, bool, bool), String> {
    let FireCtx {
        oracle,
        shape,
        kind,
        scfg,
    } = ctx;
    let start = Instant::now();
    match kind {
        Kind::Mvm => {
            let codes = serve::workload::request_codes(
                oracle.map_or(funcsim::FxpFormat::paper_default(), |o| o.input_format),
                scfg.k,
                scfg.seed,
                salt ^ index,
            );
            let answer = client
                .mvm(codes.clone())
                .map_err(|e| format!("mvm #{index}: {e}"))?;
            let us = start.elapsed().as_secs_f64() * 1e6;
            if let (true, Some(oracle)) = (check, oracle) {
                let expected = oracle
                    .matrix
                    .mvm_codes(&codes, 1)
                    .map_err(|e| format!("oracle mvm #{index}: {e}"))?;
                if answer != expected {
                    eprintln!(
                        "loadgen: ORACLE MISMATCH on mvm #{index}: served {answer:?} != expected {expected:?}"
                    );
                    return Ok((us, true, true));
                }
                return Ok((us, true, false));
            }
            Ok((us, false, false))
        }
        Kind::Infer => {
            let pixels = serve::workload::request_image(shape, scfg.seed, salt ^ index);
            let logits = client
                .infer(
                    [shape[0] as u32, shape[1] as u32, shape[2] as u32],
                    pixels.clone(),
                )
                .map_err(|e| format!("infer #{index}: {e}"))?;
            let us = start.elapsed().as_secs_f64() * 1e6;
            if let (true, Some(oracle)) = (check, oracle) {
                let network = oracle.network.as_ref().ok_or("oracle has no network")?;
                let images = nn::Tensor::from_vec(pixels, &[1, shape[0], shape[1], shape[2]])
                    .map_err(|e| format!("oracle tensor #{index}: {e}"))?;
                let expected = network
                    .forward(&images)
                    .map_err(|e| format!("oracle forward #{index}: {e}"))?;
                if logits != expected.data() {
                    eprintln!("loadgen: ORACLE MISMATCH on infer #{index}");
                    return Ok((us, true, true));
                }
                return Ok((us, true, false));
            }
            Ok((us, false, false))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    name: &'static str,
    addr: SocketAddr,
    cfg: &LoadCfg,
    scfg: &ServeConfig,
    oracle: Option<&ServeWorkload>,
    max_batch: u32,
    linger_us: u64,
    salt: u64,
) -> Result<PhaseStats, String> {
    let mut control = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    control
        .configure(max_batch, linger_us)
        .map_err(|e| format!("configure: {e}"))?;

    let ctx = FireCtx {
        oracle,
        shape: oracle.map_or([1, 1, 1], |o| o.input_shape),
        kind: cfg.kind,
        scfg,
    };

    // Warm up untimed so one-time costs (page faults, socket setup on
    // the server, branch warmup) don't pollute the measured window.
    {
        let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        for i in 0..cfg.warmup {
            fire(&mut client, ctx, salt ^ 0xFFFF_0000, i, false)?;
        }
    }

    let stats_before = control.stats().map_err(|e| format!("stats: {e}"))?;
    let (bounds, counts_before) = occupancy(&stats_before)?;

    // Open-loop mode: one global Poisson-ish arrival schedule, workers
    // take every C-th slot. A worker that falls behind sends
    // immediately — the defining open-loop property.
    let schedule: Arc<Vec<f64>> = Arc::new(if cfg.rate > 0.0 {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ salt);
        let mut t = 0.0f64;
        (0..cfg.requests)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -(1.0 - u).ln() / cfg.rate;
                t
            })
            .collect()
    } else {
        Vec::new()
    });

    let next = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let checks = Arc::new(AtomicU64::new(0));
    let mismatches = Arc::new(AtomicU64::new(0));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let deadline = if cfg.duration_s > 0.0 {
        Some(started + Duration::from_secs_f64(cfg.duration_s))
    } else {
        None
    };

    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.concurrency)
            .map(|_| {
                let next = Arc::clone(&next);
                let errors = Arc::clone(&errors);
                let checks = Arc::clone(&checks);
                let mismatches = Arc::clone(&mismatches);
                let failures = Arc::clone(&failures);
                let schedule = Arc::clone(&schedule);
                scope.spawn(move || {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(e) => {
                            failures
                                .lock()
                                .expect("failures")
                                .push(format!("connect: {e}"));
                            return Vec::new();
                        }
                    };
                    let mut lat = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.requests {
                            break;
                        }
                        if let Some(d) = deadline {
                            if Instant::now() > d {
                                break;
                            }
                        }
                        if let Some(at) = schedule.get(i as usize) {
                            let due = started + Duration::from_secs_f64(*at);
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                        }
                        let check =
                            cfg.oracle && cfg.check_every > 0 && i.is_multiple_of(cfg.check_every);
                        match fire(&mut client, ctx, salt, i, check) {
                            Ok((us, checked, mismatched)) => {
                                lat.push(us);
                                if checked {
                                    checks.fetch_add(1, Ordering::Relaxed);
                                }
                                if mismatched {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(e) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                failures.lock().expect("failures").push(e);
                                break;
                            }
                        }
                    }
                    lat
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker thread"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    for failure in failures.lock().expect("failures").iter().take(5) {
        eprintln!("loadgen: {failure}");
    }

    let stats_after = control.stats().map_err(|e| format!("stats: {e}"))?;
    let (_, counts_after) = occupancy(&stats_after)?;
    let occupancy_counts: Vec<u64> = counts_after
        .iter()
        .zip(&counts_before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    let occ_total: u64 = occupancy_counts.iter().sum();
    let occupancy_mean = if occ_total > 0 {
        occupancy_counts
            .iter()
            .zip(&bounds)
            .map(|(&c, &b)| c as f64 * b)
            .sum::<f64>()
            / occ_total as f64
    } else {
        0.0
    };

    let mut lat = latencies;
    let requests = lat.len() as u64;
    let latency_us = percentiles(&mut lat);
    Ok(PhaseStats {
        name,
        max_batch,
        linger_us,
        requests,
        errors: errors.load(Ordering::Relaxed),
        oracle_checks: checks.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        elapsed_s,
        rps: if elapsed_s > 0.0 {
            requests as f64 / elapsed_s
        } else {
            0.0
        },
        latency_us,
        occupancy_bounds: bounds,
        occupancy_counts,
        occupancy_mean,
    })
}

fn phase_json(p: &PhaseStats) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::from(p.name)),
        ("max_batch".to_string(), Json::from(u64::from(p.max_batch))),
        ("linger_us".to_string(), Json::from(p.linger_us)),
        ("requests".to_string(), Json::from(p.requests)),
        ("errors".to_string(), Json::from(p.errors)),
        ("oracle_checks".to_string(), Json::from(p.oracle_checks)),
        ("mismatches".to_string(), Json::from(p.mismatches)),
        ("elapsed_s".to_string(), Json::from(p.elapsed_s)),
        ("rps".to_string(), Json::from(p.rps)),
        (
            "latency_us".to_string(),
            Json::Obj(vec![
                ("mean".to_string(), Json::from(p.latency_us.mean)),
                ("p50".to_string(), Json::from(p.latency_us.p50)),
                ("p95".to_string(), Json::from(p.latency_us.p95)),
                ("p99".to_string(), Json::from(p.latency_us.p99)),
                ("max".to_string(), Json::from(p.latency_us.max)),
            ]),
        ),
        (
            "batch_occupancy".to_string(),
            Json::Obj(vec![
                (
                    "bounds".to_string(),
                    Json::Arr(p.occupancy_bounds.iter().map(|&b| Json::from(b)).collect()),
                ),
                (
                    "counts".to_string(),
                    Json::Arr(p.occupancy_counts.iter().map(|&c| Json::from(c)).collect()),
                ),
                ("mean".to_string(), Json::from(p.occupancy_mean)),
            ]),
        ),
    ])
}

fn parse_args(cfg: &mut LoadCfg, mut argv: impl Iterator<Item = String>) -> Result<bool, String> {
    let mut ping = false;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let num = |name: &str, v: String| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("{name} expects an integer, got '{v}'"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--requests" => cfg.requests = num("--requests", value("--requests")?)?.max(1),
            "--duration-s" => {
                cfg.duration_s = value("--duration-s")?
                    .parse::<f64>()
                    .map_err(|_| "--duration-s expects seconds".to_string())?
            }
            "--concurrency" => {
                cfg.concurrency = num("--concurrency", value("--concurrency")?)?.max(1) as usize
            }
            "--rate" => {
                cfg.rate = value("--rate")?
                    .parse::<f64>()
                    .map_err(|_| "--rate expects requests/s".to_string())?
            }
            "--kind" => {
                cfg.kind = match value("--kind")?.as_str() {
                    "mvm" => Kind::Mvm,
                    "infer" => Kind::Infer,
                    other => return Err(format!("unknown kind '{other}'")),
                }
            }
            "--check-every" => cfg.check_every = num("--check-every", value("--check-every")?)?,
            "--no-oracle" => cfg.oracle = false,
            "--compare" => cfg.compare = true,
            "--reps" => cfg.reps = num("--reps", value("--reps")?)?.max(1),
            "--batch" => cfg.batch = num("--batch", value("--batch")?)?.max(1) as u32,
            "--linger-us" => cfg.linger_us = num("--linger-us", value("--linger-us")?)?,
            "--warmup" => cfg.warmup = num("--warmup", value("--warmup")?)?,
            "--seed" => cfg.seed = num("--seed", value("--seed")?)?,
            "--out" => cfg.out = PathBuf::from(value("--out")?),
            "--ping" => ping = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(ping)
}

fn main() -> ExitCode {
    let mut cfg = LoadCfg::default();
    let ping = match parse_args(&mut cfg, std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    let addr: SocketAddr = match cfg.addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: bad --addr '{}': {e}", cfg.addr);
            return ExitCode::from(2);
        }
    };

    if ping {
        return match Client::connect(addr).map(|mut c| c.ping()) {
            Ok(Ok(())) => ExitCode::SUCCESS,
            Ok(Err(e)) => {
                eprintln!("loadgen: ping failed: {e}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("loadgen: cannot reach {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let scfg = ServeConfig::from_env();
    let manifest = geniex_bench::manifest::start(
        "loadgen",
        &[
            ("addr", Json::from(cfg.addr.as_str())),
            ("requests", Json::from(cfg.requests)),
            ("duration_s", Json::from(cfg.duration_s)),
            ("concurrency", Json::from(cfg.concurrency)),
            ("rate", Json::from(cfg.rate)),
            (
                "kind",
                Json::from(match cfg.kind {
                    Kind::Mvm => "mvm",
                    Kind::Infer => "infer",
                }),
            ),
            ("check_every", Json::from(cfg.check_every)),
            ("oracle", Json::Bool(cfg.oracle)),
            ("compare", Json::Bool(cfg.compare)),
            ("reps", Json::from(cfg.reps)),
            ("batch", Json::from(u64::from(cfg.batch))),
            ("linger_us", Json::from(cfg.linger_us)),
            ("warmup", Json::from(cfg.warmup)),
            ("seed", Json::from(cfg.seed)),
        ],
    );

    // The oracle mirrors the server's workload from the same env, so
    // spot-checks recompute the exact same fixed-point pipeline.
    let oracle = if cfg.oracle {
        eprintln!("loadgen: building local oracle workload (GENIEX_SERVE_* env)");
        match serve::workload::build(&scfg) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("loadgen: oracle build failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    // Reps interleave the phase list so machine drift lands on both
    // phases instead of biasing whichever ran later.
    let round: Vec<(&'static str, u32, u64, u64)> = if cfg.compare {
        vec![
            ("single", 1, 0, 0x5157_0000),
            ("batched", cfg.batch, cfg.linger_us, 0xBA7C_0000),
        ]
    } else {
        vec![("load", cfg.batch, cfg.linger_us, 0x10AD_0000)]
    };
    let phases: Vec<(&'static str, u32, u64, u64)> = (0..cfg.reps)
        .flat_map(|r| {
            round
                .iter()
                .map(move |&(name, batch, linger, salt)| (name, batch, linger, salt ^ r))
        })
        .collect();

    let mut results = Vec::new();
    for (name, batch, linger, salt) in phases {
        eprintln!(
            "loadgen: phase '{name}' (batch={batch}, linger={linger}us, \
             {} requests, concurrency {})",
            cfg.requests, cfg.concurrency
        );
        match run_phase(
            name,
            addr,
            &cfg,
            &scfg,
            oracle.as_ref(),
            batch,
            linger,
            salt,
        ) {
            Ok(p) => {
                eprintln!(
                    "loadgen: phase '{name}': {:.0} req/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us, \
                     mean occupancy {:.2}, {} oracle checks, {} mismatches",
                    p.rps,
                    p.latency_us.p50,
                    p.latency_us.p95,
                    p.latency_us.p99,
                    p.occupancy_mean,
                    p.oracle_checks,
                    p.mismatches
                );
                results.push(p);
            }
            Err(e) => {
                eprintln!("loadgen: phase '{name}' failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut top = vec![
        ("addr".to_string(), Json::from(cfg.addr.as_str())),
        (
            "kind".to_string(),
            Json::from(match cfg.kind {
                Kind::Mvm => "mvm",
                Kind::Infer => "infer",
            }),
        ),
        ("concurrency".to_string(), Json::from(cfg.concurrency)),
        ("requests".to_string(), Json::from(cfg.requests)),
        ("rate".to_string(), Json::from(cfg.rate)),
        ("reps".to_string(), Json::from(cfg.reps)),
        (
            "phases".to_string(),
            Json::Arr(results.iter().map(phase_json).collect()),
        ),
    ];
    // Each rep's single and batched phases run back to back, so their
    // ratio sees the same machine conditions; the best rep is the
    // least-interference estimate of the batching speedup. Comparing
    // phases across different reps would let a lucky window on one
    // side distort the ratio.
    let mut gate_speedup = None;
    if cfg.compare {
        let speedup = results
            .chunks(2)
            .filter(|pair| {
                pair.len() == 2
                    && pair[0].name == "single"
                    && pair[1].name == "batched"
                    && pair[0].rps > 0.0
            })
            .map(|pair| pair[1].rps / pair[0].rps)
            .fold(0.0, f64::max);
        if speedup > 0.0 {
            gate_speedup = Some(speedup);
            top.push((
                "gate".to_string(),
                Json::Obj(vec![("batched_speedup".to_string(), Json::from(speedup))]),
            ));
        }
    }

    let total_errors: u64 = results.iter().map(|p| p.errors).sum();
    let total_mismatches: u64 = results.iter().map(|p| p.mismatches).sum();
    let total_checks: u64 = results.iter().map(|p| p.oracle_checks).sum();

    let out_text = Json::Obj(top).to_string();
    if let Some(dir) = cfg.out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&cfg.out, out_text + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", cfg.out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("loadgen: wrote {}", cfg.out.display());
    if let Some(speedup) = gate_speedup {
        eprintln!("loadgen: batched_speedup = {speedup:.2}x");
    }

    geniex_bench::manifest::finish(
        manifest,
        &[
            ("errors", Json::from(total_errors)),
            ("oracle_checks", Json::from(total_checks)),
            ("mismatches", Json::from(total_mismatches)),
            (
                "batched_speedup",
                gate_speedup.map_or(Json::Null, Json::from),
            ),
        ],
    );

    if total_errors > 0 || total_mismatches > 0 {
        eprintln!(
            "loadgen: FAIL ({total_errors} request errors, {total_mismatches} oracle mismatches)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Ablation: sparsity-stratified vs dense-only training sets.
//!
//! The paper stresses that bit-slicing makes real (V, G) patterns very
//! sparse and that the training set must "exhaustively capture the
//! resulting sparse data distributions". This ablation trains one
//! surrogate on stratified sparsity grades and one on dense-only
//! samples, then validates both on sparse held-out stimuli.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_sparsity
//! ```

use geniex::benchmark::{compare_models, BenchmarkConfig};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use geniex_bench::setup::{design_point, results_dir, DEFAULT_SIZE};
use geniex_bench::table::{fix, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_sparsity",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("samples", telemetry::Json::from(3000u64)),
            ("epochs", telemetry::Json::from(80u64)),
        ],
    );
    let params = design_point(DEFAULT_SIZE);
    let mut table = Table::new(&["training_set", "geniex_rmse", "analytical_rmse"]);
    let mut finals: Vec<(String, f64)> = Vec::new();

    for (label, grades) in [
        ("stratified (0-0.9)", vec![0.0, 0.25, 0.5, 0.75, 0.9]),
        ("dense-only (0)", vec![0.0]),
        ("sparse-only (0.9)", vec![0.9]),
    ] {
        let data = generate(
            &params,
            &DatasetConfig {
                samples: 3000,
                seed: 7,
                sparsity_grades: grades,
                dac_levels: 16,
            },
        )?;
        let mut surrogate = Geniex::new(&params, 200, 3)?;
        surrogate.train(
            &data,
            &TrainConfig {
                epochs: 80,
                batch_size: 32,
                learning_rate: 1e-3,
                seed: 4,
                ..TrainConfig::default()
            },
        )?;
        // Validation stimuli cover the whole sparsity range.
        let cmp = compare_models(
            &params,
            &surrogate,
            &BenchmarkConfig {
                stimuli: 40,
                seed: 99,
                dac_levels: 16,
            },
        )?;
        println!(
            "{label:>20}: NF RMSE {:.4} (analytical {:.4})",
            cmp.geniex_rmse, cmp.analytical_rmse
        );
        table.row(&[
            label.to_string(),
            fix(cmp.geniex_rmse, 4),
            fix(cmp.analytical_rmse, 4),
        ]);
        finals.push((format!("geniex_rmse[{label}]"), cmp.geniex_rmse));
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("ablation_sparsity.csv"))?;
    println!("expected: stratified training generalizes best across the sparsity range");
    let fields: Vec<(&str, telemetry::Json)> = finals
        .iter()
        .map(|(k, v)| (k.as_str(), telemetry::Json::from(*v)))
        .collect();
    geniex_bench::manifest::finish(run, &fields);
    Ok(())
}

//! Ablation: sparsity-stratified vs dense-only training sets.
//!
//! The paper stresses that bit-slicing makes real (V, G) patterns very
//! sparse and that the training set must "exhaustively capture the
//! resulting sparse data distributions". This ablation trains one
//! surrogate on stratified sparsity grades and one on dense-only
//! samples, then validates both on sparse held-out stimuli.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_sparsity
//! ```

use geniex::benchmark::{compare_models, BenchmarkConfig};
use geniex::dataset::DatasetConfig;
use geniex::TrainConfig;
use geniex_bench::setup::{
    cached_dataset, cached_f64_blob, cached_surrogate, design_point, results_dir, DEFAULT_SIZE,
};
use geniex_bench::table::{fix, Table};
use store::KeyBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_sparsity",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("samples", telemetry::Json::from(3000u64)),
            ("epochs", telemetry::Json::from(80u64)),
        ],
    );
    let params = design_point(DEFAULT_SIZE);
    let mut table = Table::new(&["training_set", "geniex_rmse", "analytical_rmse"]);
    let mut finals: Vec<(String, f64)> = Vec::new();

    for (label, grades) in [
        ("stratified (0-0.9)", vec![0.0, 0.25, 0.5, 0.75, 0.9]),
        ("dense-only (0)", vec![0.0]),
        ("sparse-only (0.9)", vec![0.9]),
    ] {
        let data = cached_dataset(
            &params,
            &DatasetConfig {
                samples: 3000,
                seed: 7,
                sparsity_grades: grades,
                dac_levels: 16,
            },
        );
        let train_config = TrainConfig {
            epochs: 80,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 4,
            ..TrainConfig::default()
        };
        let surrogate = cached_surrogate(&data, 200, 3, &train_config);
        // Validation stimuli cover the whole sparsity range; the
        // validation solves are store-cached per training variant.
        let mut kb = KeyBuilder::new(store::KIND_SWEEP);
        kb.str("op", "ablation_sparsity_row")
            .nested("dataset", &data)
            .usize("hidden", 200)
            .u64("init_seed", 3)
            .nested("train", &train_config);
        let row = cached_f64_blob(&kb.finish(), || {
            let cmp = compare_models(
                &params,
                &surrogate,
                &BenchmarkConfig {
                    stimuli: 40,
                    seed: 99,
                    dac_levels: 16,
                },
            )?;
            Ok::<_, Box<dyn std::error::Error>>(vec![cmp.geniex_rmse, cmp.analytical_rmse])
        })?;
        let (geniex_rmse, analytical_rmse) = (row[0], row[1]);
        println!("{label:>20}: NF RMSE {geniex_rmse:.4} (analytical {analytical_rmse:.4})");
        table.row(&[
            label.to_string(),
            fix(geniex_rmse, 4),
            fix(analytical_rmse, 4),
        ]);
        finals.push((format!("geniex_rmse[{label}]"), geniex_rmse));
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("ablation_sparsity.csv"))?;
    println!("expected: stratified training generalizes best across the sparsity range");
    let fields: Vec<(&str, telemetry::Json)> = finals
        .iter()
        .map(|(k, v)| (k.as_str(), telemetry::Json::from(*v)))
        .collect();
    geniex_bench::manifest::finish(run, &fields);
    Ok(())
}

//! Self-time / critical-path breakdown of a Chrome Trace Event file.
//!
//! Post-processes a trace written by a `GENIEX_TRACE=1` run (see
//! DESIGN.md §13) into the profiling view: per-phase inclusive times
//! and per-span-name self times, sorted by where the cycles actually
//! went.
//!
//! Usage: `trace_report <run.trace.json>` — with no argument, picks
//! the newest `*.trace.json` under `results/logs/`.

use std::path::PathBuf;
use std::process::ExitCode;

use geniex_bench::setup::results_dir;
use geniex_bench::trace_report;

fn newest_trace() -> Option<PathBuf> {
    let dir = results_dir().join("logs");
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        let path = entry.path();
        if !path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".trace.json"))
        {
            continue;
        }
        let modified = entry.metadata().ok()?.modified().ok()?;
        if best.as_ref().is_none_or(|(t, _)| modified > *t) {
            best = Some((modified, path));
        }
    }
    best.map(|(_, path)| path)
}

fn main() -> ExitCode {
    let path = match std::env::args().nth(1) {
        Some(arg) if arg == "--help" || arg == "-h" => {
            println!("usage: trace_report [run.trace.json]");
            return ExitCode::SUCCESS;
        }
        Some(arg) => PathBuf::from(arg),
        None => match newest_trace() {
            Some(p) => p,
            None => {
                eprintln!(
                    "trace_report: no *.trace.json under {} — run a binary with GENIEX_TRACE=1",
                    results_dir().join("logs").display()
                );
                return ExitCode::from(2);
            }
        },
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match trace_report::analyze(&text) {
        Ok(report) => {
            println!("file: {}", path.display());
            print!("{}", trace_report::render(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_report: {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

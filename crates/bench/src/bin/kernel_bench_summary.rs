//! Summarizes the kernel microbenchmarks into `results/BENCH_kernels.json`.
//!
//! Reads the CSV written by the `kernels` bench when run with
//! `GENIEX_BENCH_OUT` (rows `kernels/<group>/<variant>/<shape>,ns`),
//! pairs every `naive` row with its `blocked` counterpart, and records
//! the per-shape speedups. Exits non-zero if the blocked GEMM is slower
//! than the naive ikj loop at the 64×64 crossbar shape — the guardrail
//! CI enforces against kernel regressions.
//!
//! Usage: `kernel_bench_summary [csv-path]` (default
//! `results/bench_kernels.csv`, or `$GENIEX_BENCH_OUT` if set).

use std::collections::BTreeMap;
use telemetry::Json;

struct Pair {
    naive_ns: f64,
    blocked_ns: f64,
}

fn parse_csv(text: &str) -> BTreeMap<String, Pair> {
    let mut naive = BTreeMap::new();
    let mut blocked = BTreeMap::new();
    for line in text.lines().skip(1) {
        let Some((label, ns)) = line.rsplit_once(',') else {
            continue;
        };
        let Ok(ns) = ns.trim().parse::<f64>() else {
            continue;
        };
        // kernels/<group>/<variant>/<shape> — keep the last write per
        // label so a re-run appended to an old file stays current.
        let parts: Vec<&str> = label.split('/').collect();
        if parts.len() != 4 || parts[0] != "kernels" {
            continue;
        }
        let key = format!("{}/{}", parts[1], parts[3]);
        match parts[2] {
            "naive" => {
                naive.insert(key, ns);
            }
            "blocked" => {
                blocked.insert(key, ns);
            }
            _ => {}
        }
    }
    let mut pairs = BTreeMap::new();
    for (key, naive_ns) in naive {
        if let Some(&blocked_ns) = blocked.get(&key) {
            pairs.insert(
                key,
                Pair {
                    naive_ns,
                    blocked_ns,
                },
            );
        }
    }
    pairs
}

fn main() {
    let csv_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::var("GENIEX_BENCH_OUT").unwrap_or_else(|_| "results/bench_kernels.csv".into())
    });
    let text = std::fs::read_to_string(&csv_path).unwrap_or_else(|e| {
        eprintln!("kernel_bench_summary: cannot read {csv_path}: {e}");
        eprintln!("run `GENIEX_BENCH_OUT={csv_path} cargo bench --bench kernels` first");
        std::process::exit(2);
    });
    let pairs = parse_csv(&text);
    if pairs.is_empty() {
        eprintln!("kernel_bench_summary: no naive/blocked pairs in {csv_path}");
        std::process::exit(2);
    }

    let mut entries = Vec::new();
    println!(
        "{:<34} {:>12} {:>12} {:>9}",
        "kernel", "naive", "blocked", "speedup"
    );
    for (key, p) in &pairs {
        let speedup = p.naive_ns / p.blocked_ns;
        println!(
            "{key:<34} {naive:>9.1} ns {blocked:>9.1} ns {speedup:>8.2}x",
            naive = p.naive_ns,
            blocked = p.blocked_ns,
        );
        entries.push(Json::Obj(vec![
            ("kernel".into(), Json::from(key.as_str())),
            ("naive_ns".into(), Json::from(p.naive_ns)),
            ("blocked_ns".into(), Json::from(p.blocked_ns)),
            ("speedup".into(), Json::from(speedup)),
        ]));
    }

    let speedup_of = |key: &str| pairs.get(key).map(|p| p.naive_ns / p.blocked_ns);
    let mut top = vec![
        ("csv".into(), Json::from(csv_path.as_str())),
        (
            "threads".into(),
            Json::from(parallel::global().threads() as u64),
        ),
        ("kernels".into(), Json::Arr(entries)),
    ];
    for (field, key) in [
        ("matmul_64_speedup", "matmul/64"),
        ("matmul_transpose_64_speedup", "matmul_transpose/64"),
        ("gemv_batch_64x64xb64_speedup", "gemv_batch/64x64xb64"),
    ] {
        if let Some(s) = speedup_of(key) {
            top.push((field.into(), Json::from(s)));
        }
    }
    let json = Json::Obj(top);
    let out_path = geniex_bench::setup::results_dir().join("BENCH_kernels.json");
    std::fs::create_dir_all(out_path.parent().unwrap()).expect("results dir");
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_kernels.json");
    eprintln!("[kernels] wrote {}", out_path.display());

    // Guardrail: the register-blocked GEMM must never lose to the naive
    // ikj loop at the canonical crossbar shape.
    if let Some(s) = speedup_of("matmul/64") {
        if s < 1.0 {
            eprintln!(
                "kernel_bench_summary: blocked matmul is {s:.2}x at 64x64 (slower than naive)"
            );
            std::process::exit(1);
        }
    }
}

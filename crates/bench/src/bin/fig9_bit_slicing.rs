//! Figure 9: impact of the stream (input) and slice (weight) widths on
//! classification accuracy under non-idealities (16-bit FxP network).
//!
//! The paper sweeps {1, 2, 4}-bit streams × {1, 2, 4}-bit slices and
//! finds 1–2-bit configurations near ideal, 4/4 visibly degraded, and
//! the 1/1 corner slightly *worse* than its neighbours (extreme
//! sparsity makes NF go negative through the device non-linearity).
//!
//! ```text
//! cargo run --release -p geniex-bench --bin fig9_bit_slicing
//! ```

use funcsim::{evaluate_spec, ArchConfig, GeniexEngine, IdealEngine};
use geniex_bench::setup::{
    accuracy_design_point, results_dir, standard_workload, train_surrogate_for_workload,
    SurrogateBudget, DEFAULT_SIZE,
};
use geniex_bench::table::{pct, Table};
use vision::{rescale_for_fxp, SynthSpec, SynthVision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "fig9_bit_slicing",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("stream_bits", telemetry::Json::from("1,2,4")),
            ("slice_bits", telemetry::Json::from("1,2,4")),
        ],
    );
    let mut workload = standard_workload(SynthSpec::SynthS);
    // Narrow digits multiply the crossbar-op count per MVM by up to
    // (15/4)^2 ≈ 14x; halve the test set so the 1-bit cells stay
    // tractable on one core.
    workload.test = SynthVision::generate(SynthSpec::SynthS, 8, geniex_bench::setup::TEST_SEED)?;
    let calib_data = SynthVision::generate(SynthSpec::SynthS, 8, 1)?;
    let (calib, _) = calib_data.full_batch()?;
    let net_spec = rescale_for_fxp(&workload.model.to_spec(), &calib, 3.5)?;
    let xbar = accuracy_design_point(DEFAULT_SIZE);

    println!("FP32 reference accuracy: {}%", pct(workload.fp32_accuracy));
    let mut table = Table::new(&["stream_bits", "slice_bits", "ideal_pct", "geniex_pct"]);

    for stream in [1u32, 2, 4] {
        for slice in [1u32, 2, 4] {
            let arch = ArchConfig::default()
                .with_xbar(xbar.clone())
                .with_bit_slicing(stream, slice);
            // The surrogate sees different digit distributions per
            // slicing config, so harvest + retrain per cell.
            let surrogate = train_surrogate_for_workload(
                &xbar,
                &SurrogateBudget::default(),
                &net_spec,
                &arch,
                &calib,
            );
            let ideal = evaluate_spec(net_spec.clone(), &arch, &IdealEngine, &workload.test, 16)?;
            let geniex = evaluate_spec(
                net_spec.clone(),
                &arch,
                &GeniexEngine::new(surrogate),
                &workload.test,
                16,
            )?;
            println!(
                "stream {stream}-bit / slice {slice}-bit: ideal {}%, geniex {}%",
                pct(ideal),
                pct(geniex)
            );
            table.row(&[
                stream.to_string(),
                slice.to_string(),
                pct(ideal),
                pct(geniex),
            ]);
        }
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("fig9_bit_slicing.csv"))?;
    println!(
        "paper trends: 1-2-bit streams/slices near ideal FxP; 4/4 degrades; \
         the 1/1 corner can dip below its neighbours (NF < 0 regime)"
    );
    geniex_bench::manifest::finish(
        run,
        &[(
            "fp32_accuracy",
            telemetry::Json::from(workload.fp32_accuracy),
        )],
    );
    Ok(())
}

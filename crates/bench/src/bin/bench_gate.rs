//! Perf-regression gate over kernel benchmark summaries and the serve
//! load harness.
//!
//! Compares a current `BENCH_kernels.json`-style summary against the
//! committed baseline (`results/BENCH_baseline.json`) on speedup
//! ratios — machine-relative, so the baseline transfers across hosts —
//! and exits non-zero with a one-line repro when any kernel regresses
//! past the tolerance. With `--serve`, also gates the serve load
//! harness (`results/BENCH_serve.json` from `loadgen --compare`)
//! against `results/BENCH_serve_baseline.json` on the same
//! machine-relative terms (e.g. `batched_speedup`).
//!
//! Usage:
//!
//! ```text
//! bench_gate [current.json]
//!            [--baseline <path>] [--tolerance <fraction>]
//!            [--update] [--inject-regression <kernel>[:factor]]
//!            [--serve] [--serve-only] [--require-serve]
//!            [--serve-current <path>] [--serve-baseline <path>]
//! ```
//!
//! Defaults: current `results/BENCH_kernels.json`, baseline
//! `results/BENCH_baseline.json`, tolerance `$GENIEX_GATE_TOLERANCE`
//! (0.10). `--update` rewrites the baselines from the current
//! summaries after a passing run — the explicit opt-in for ratcheting.
//! `--inject-regression` worsens one metric before comparing so CI can
//! prove the gate trips; prefix the name with `serve:` to target a
//! serve metric (`--inject-regression serve:batched_speedup:3.0`).
//! `--require-serve` fails when the current serve summary is missing;
//! plain `--serve` warns and skips the section instead, so local runs
//! without a server don't break.

use std::path::PathBuf;
use std::process::ExitCode;

use geniex_bench::gate;
use geniex_bench::setup::results_dir;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut current_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut serve_current_path: Option<PathBuf> = None;
    let mut serve_baseline_path: Option<PathBuf> = None;
    let mut tolerance: Option<f64> = None;
    let mut update = false;
    let mut serve = false;
    let mut serve_only = false;
    let mut require_serve = false;
    let mut inject: Option<(String, f64)> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => match argv.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return fail("--baseline needs a path"),
            },
            "--serve-current" => match argv.next() {
                Some(p) => serve_current_path = Some(PathBuf::from(p)),
                None => return fail("--serve-current needs a path"),
            },
            "--serve-baseline" => match argv.next() {
                Some(p) => serve_baseline_path = Some(PathBuf::from(p)),
                None => return fail("--serve-baseline needs a path"),
            },
            "--tolerance" => {
                let parsed = argv.next().and_then(|t| t.parse::<f64>().ok());
                match parsed.filter(|t| t.is_finite() && *t >= 0.0) {
                    Some(t) => tolerance = Some(t),
                    None => return fail("--tolerance needs a non-negative fraction"),
                }
            }
            "--update" => update = true,
            "--serve" => serve = true,
            "--serve-only" => {
                serve = true;
                serve_only = true;
            }
            "--require-serve" => {
                serve = true;
                require_serve = true;
            }
            "--inject-regression" => {
                let Some(spec) = argv.next() else {
                    return fail("--inject-regression needs <kernel>[:factor]");
                };
                // A trailing `:number` is the factor; anything else is
                // part of the metric name (e.g. `serve:batched_speedup`).
                let (name, factor) = match spec.rsplit_once(':') {
                    Some((k, f)) => match f.parse::<f64>() {
                        Ok(f) => (k.to_string(), f),
                        Err(_) => (spec, 2.0),
                    },
                    None => (spec, 2.0),
                };
                inject = Some((name, factor));
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [current.json] [--baseline <path>] \
                     [--tolerance <fraction>] [--update] \
                     [--inject-regression <kernel>[:factor]] \
                     [--serve] [--serve-only] [--require-serve] \
                     [--serve-current <path>] [--serve-baseline <path>]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && current_path.is_none() => {
                current_path = Some(PathBuf::from(other));
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let tolerance = tolerance.unwrap_or_else(gate::gate_tolerance);
    // A serve-namespaced injection implies the serve section.
    let serve_inject = match &inject {
        Some((name, factor)) => match name.strip_prefix("serve:") {
            Some(metric) => {
                serve = true;
                Some((metric.to_string(), *factor))
            }
            None => None,
        },
        None => None,
    };
    let kernel_inject = inject.filter(|(name, _)| !name.starts_with("serve:"));

    let mut passed = true;

    if !serve_only {
        let current_path = current_path.unwrap_or_else(|| results_dir().join("BENCH_kernels.json"));
        let baseline_path =
            baseline_path.unwrap_or_else(|| results_dir().join("BENCH_baseline.json"));

        let read = |path: &PathBuf, role: &str| -> Result<gate::KernelSummary, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {role} {}: {e}", path.display()))?;
            gate::parse_summary(&text).map_err(|e| format!("bad {role} {}: {e}", path.display()))
        };
        let baseline = match read(&baseline_path, "baseline") {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let mut current = match read(&current_path, "current summary") {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        if let Some((kernel, factor)) = kernel_inject {
            if let Err(e) = gate::inject_regression(&mut current, &kernel, factor) {
                return fail(&e);
            }
            eprintln!("bench_gate: injected {factor}x slowdown into '{kernel}' (self-test)");
        }

        let report = gate::compare(&baseline, &current, tolerance);
        print!("{}", gate::render(&report, tolerance));
        passed &= report.passed();

        if passed && update {
            if let Err(e) = std::fs::copy(&current_path, &baseline_path) {
                return fail(&format!(
                    "cannot update baseline {}: {e}",
                    baseline_path.display()
                ));
            }
            println!("baseline updated: {}", baseline_path.display());
        }
    }

    if serve {
        let serve_current_path =
            serve_current_path.unwrap_or_else(|| results_dir().join("BENCH_serve.json"));
        let serve_baseline_path =
            serve_baseline_path.unwrap_or_else(|| results_dir().join("BENCH_serve_baseline.json"));

        let baseline_text = match std::fs::read_to_string(&serve_baseline_path) {
            Ok(t) => t,
            Err(e) => {
                return fail(&format!(
                    "cannot read serve baseline {}: {e}",
                    serve_baseline_path.display()
                ))
            }
        };
        let baseline = match gate::parse_serve_summary(&baseline_text) {
            Ok(s) => s,
            Err(e) => {
                return fail(&format!(
                    "bad serve baseline {}: {e}",
                    serve_baseline_path.display()
                ))
            }
        };

        match std::fs::read_to_string(&serve_current_path) {
            Err(e) if !require_serve => {
                // No fresh load-harness run on this machine: warn and
                // skip, so a local kernel-only bench_gate still works.
                eprintln!(
                    "bench_gate: serve gate skipped, no current summary at {} ({e})",
                    serve_current_path.display()
                );
            }
            Err(e) => {
                return fail(&format!(
                    "cannot read current serve summary {}: {e}",
                    serve_current_path.display()
                ));
            }
            Ok(text) => {
                let mut current = match gate::parse_serve_summary(&text) {
                    Ok(s) => s,
                    Err(e) => {
                        return fail(&format!(
                            "bad current serve summary {}: {e}",
                            serve_current_path.display()
                        ))
                    }
                };
                if let Some((metric, factor)) = serve_inject {
                    if let Err(e) = gate::inject_serve_regression(&mut current, &metric, factor) {
                        return fail(&e);
                    }
                    eprintln!(
                        "bench_gate: injected {factor}x loss into serve '{metric}' (self-test)"
                    );
                }
                let report = gate::compare_serve(&baseline, &current, tolerance);
                print!("{}", gate::render_serve(&report, tolerance));
                passed &= report.passed();

                if passed && update {
                    if let Err(e) = std::fs::write(
                        &serve_baseline_path,
                        gate::serve_baseline_json(&current) + "\n",
                    ) {
                        return fail(&format!(
                            "cannot update serve baseline {}: {e}",
                            serve_baseline_path.display()
                        ));
                    }
                    println!("serve baseline updated: {}", serve_baseline_path.display());
                }
            }
        }
    }

    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Perf-regression gate over kernel benchmark summaries.
//!
//! Compares a current `BENCH_kernels.json`-style summary against the
//! committed baseline (`results/BENCH_baseline.json`) on speedup
//! ratios — machine-relative, so the baseline transfers across hosts —
//! and exits non-zero with a one-line repro when any kernel regresses
//! past the tolerance.
//!
//! Usage:
//!   bench_gate [current.json]
//!              [--baseline <path>] [--tolerance <fraction>]
//!              [--update] [--inject-regression <kernel>[:factor]]
//!
//! Defaults: current `results/BENCH_kernels.json`, baseline
//! `results/BENCH_baseline.json`, tolerance `$GENIEX_GATE_TOLERANCE`
//! (0.10). `--update` rewrites the baseline from the current summary
//! after a passing run — the explicit opt-in for ratcheting.
//! `--inject-regression` worsens one kernel before comparing so CI can
//! prove the gate trips.

use std::path::PathBuf;
use std::process::ExitCode;

use geniex_bench::gate;
use geniex_bench::setup::results_dir;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut current_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut tolerance: Option<f64> = None;
    let mut update = false;
    let mut inject: Option<(String, f64)> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => match argv.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return fail("--baseline needs a path"),
            },
            "--tolerance" => {
                let parsed = argv.next().and_then(|t| t.parse::<f64>().ok());
                match parsed.filter(|t| t.is_finite() && *t >= 0.0) {
                    Some(t) => tolerance = Some(t),
                    None => return fail("--tolerance needs a non-negative fraction"),
                }
            }
            "--update" => update = true,
            "--inject-regression" => {
                let Some(spec) = argv.next() else {
                    return fail("--inject-regression needs <kernel>[:factor]");
                };
                let (kernel, factor) = match spec.rsplit_once(':') {
                    Some((k, f)) => match f.parse::<f64>() {
                        Ok(f) => (k.to_string(), f),
                        Err(_) => return fail(&format!("bad injection factor in '{spec}'")),
                    },
                    None => (spec, 2.0),
                };
                inject = Some((kernel, factor));
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [current.json] [--baseline <path>] \
                     [--tolerance <fraction>] [--update] \
                     [--inject-regression <kernel>[:factor]]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && current_path.is_none() => {
                current_path = Some(PathBuf::from(other));
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let current_path = current_path.unwrap_or_else(|| results_dir().join("BENCH_kernels.json"));
    let baseline_path = baseline_path.unwrap_or_else(|| results_dir().join("BENCH_baseline.json"));
    let tolerance = tolerance.unwrap_or_else(gate::gate_tolerance);

    let read = |path: &PathBuf, role: &str| -> Result<gate::KernelSummary, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {role} {}: {e}", path.display()))?;
        gate::parse_summary(&text).map_err(|e| format!("bad {role} {}: {e}", path.display()))
    };
    let baseline = match read(&baseline_path, "baseline") {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let mut current = match read(&current_path, "current summary") {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    if let Some((kernel, factor)) = inject {
        if let Err(e) = gate::inject_regression(&mut current, &kernel, factor) {
            return fail(&e);
        }
        eprintln!("bench_gate: injected {factor}x slowdown into '{kernel}' (self-test)");
    }

    let report = gate::compare(&baseline, &current, tolerance);
    print!("{}", gate::render(&report, tolerance));

    if !report.passed() {
        return ExitCode::FAILURE;
    }
    if update {
        if let Err(e) = std::fs::copy(&current_path, &baseline_path) {
            return fail(&format!(
                "cannot update baseline {}: {e}",
                baseline_path.display()
            ));
        }
        println!("baseline updated: {}", baseline_path.display());
    }
    ExitCode::SUCCESS
}

//! Perf-regression gate over kernel benchmark summaries, the serve
//! load harness, and the amortized-solver benchmark.
//!
//! Compares a current `BENCH_kernels.json`-style summary against the
//! committed baseline (`results/BENCH_baseline.json`) on speedup
//! ratios — machine-relative, so the baseline transfers across hosts —
//! and exits non-zero with a one-line repro when any kernel regresses
//! past the tolerance. With `--serve`, also gates the serve load
//! harness (`results/BENCH_serve.json` from `loadgen --compare`)
//! against `results/BENCH_serve_baseline.json`; with `--solve`, the
//! amortized-solver leg (`results/BENCH_solve.json` from `solve_bench`)
//! against `results/BENCH_solve_baseline.json` — both on the same
//! machine-relative terms (e.g. `batched_speedup`, `amortized_speedup`).
//!
//! Usage:
//!
//! ```text
//! bench_gate [current.json]
//!            [--baseline <path>] [--tolerance <fraction>]
//!            [--update] [--inject-regression <kernel>[:factor]]
//!            [--serve] [--serve-only] [--require-serve]
//!            [--serve-current <path>] [--serve-baseline <path>]
//!            [--solve] [--solve-only] [--require-solve]
//!            [--solve-current <path>] [--solve-baseline <path>]
//! ```
//!
//! Defaults: current `results/BENCH_kernels.json`, baseline
//! `results/BENCH_baseline.json`, tolerance `$GENIEX_GATE_TOLERANCE`
//! (0.10). `--update` rewrites the baselines from the current
//! summaries after a passing run — the explicit opt-in for ratcheting.
//! `--inject-regression` worsens one metric before comparing so CI can
//! prove the gate trips; prefix the name with `serve:` or `solve:` to
//! target that leg's metric
//! (`--inject-regression solve:amortized_speedup:3.0`).
//! `--require-serve` / `--require-solve` fail when the leg's current
//! summary is missing; plain `--serve` / `--solve` warn and skip the
//! section instead, so local runs without a fresh benchmark don't
//! break.

use std::path::PathBuf;
use std::process::ExitCode;

use geniex_bench::gate;
use geniex_bench::setup::results_dir;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::from(2)
}

/// One ratio-gated leg (serve or solve): both read `gate`-object JSON
/// summaries and differ only in paths, labels, and the failure repro
/// line baked into `render`.
struct RatioLeg {
    label: &'static str,
    current_path: PathBuf,
    baseline_path: PathBuf,
    require: bool,
    inject: Option<(String, f64)>,
    render: fn(&gate::GateReport, f64) -> String,
}

/// Runs one ratio leg. Returns `Ok(passed)`; a missing current summary
/// on a non-required leg warns and counts as passed.
fn run_ratio_leg(leg: RatioLeg, tolerance: f64, update: bool) -> Result<bool, String> {
    let baseline_text = std::fs::read_to_string(&leg.baseline_path).map_err(|e| {
        format!(
            "cannot read {} baseline {}: {e}",
            leg.label,
            leg.baseline_path.display()
        )
    })?;
    let baseline = gate::parse_serve_summary(&baseline_text).map_err(|e| {
        format!(
            "bad {} baseline {}: {e}",
            leg.label,
            leg.baseline_path.display()
        )
    })?;

    let text = match std::fs::read_to_string(&leg.current_path) {
        Ok(t) => t,
        Err(e) if !leg.require => {
            // No fresh run on this machine: warn and skip, so a local
            // kernel-only bench_gate still works.
            eprintln!(
                "bench_gate: {} gate skipped, no current summary at {} ({e})",
                leg.label,
                leg.current_path.display()
            );
            return Ok(true);
        }
        Err(e) => {
            return Err(format!(
                "cannot read current {} summary {}: {e}",
                leg.label,
                leg.current_path.display()
            ));
        }
    };
    let mut current = gate::parse_serve_summary(&text).map_err(|e| {
        format!(
            "bad current {} summary {}: {e}",
            leg.label,
            leg.current_path.display()
        )
    })?;
    if let Some((metric, factor)) = &leg.inject {
        gate::inject_serve_regression(&mut current, metric, *factor)?;
        eprintln!(
            "bench_gate: injected {factor}x loss into {} '{metric}' (self-test)",
            leg.label
        );
    }
    let report = gate::compare_serve(&baseline, &current, tolerance);
    print!("{}", (leg.render)(&report, tolerance));

    if report.passed() && update {
        std::fs::write(
            &leg.baseline_path,
            gate::serve_baseline_json(&current) + "\n",
        )
        .map_err(|e| {
            format!(
                "cannot update {} baseline {}: {e}",
                leg.label,
                leg.baseline_path.display()
            )
        })?;
        println!(
            "{} baseline updated: {}",
            leg.label,
            leg.baseline_path.display()
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    let mut current_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut serve_current_path: Option<PathBuf> = None;
    let mut serve_baseline_path: Option<PathBuf> = None;
    let mut solve_current_path: Option<PathBuf> = None;
    let mut solve_baseline_path: Option<PathBuf> = None;
    let mut tolerance: Option<f64> = None;
    let mut update = false;
    let mut serve = false;
    let mut solve = false;
    let mut kernels_skipped = false;
    let mut require_serve = false;
    let mut require_solve = false;
    let mut inject: Option<(String, f64)> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => match argv.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return fail("--baseline needs a path"),
            },
            "--serve-current" => match argv.next() {
                Some(p) => serve_current_path = Some(PathBuf::from(p)),
                None => return fail("--serve-current needs a path"),
            },
            "--serve-baseline" => match argv.next() {
                Some(p) => serve_baseline_path = Some(PathBuf::from(p)),
                None => return fail("--serve-baseline needs a path"),
            },
            "--solve-current" => match argv.next() {
                Some(p) => solve_current_path = Some(PathBuf::from(p)),
                None => return fail("--solve-current needs a path"),
            },
            "--solve-baseline" => match argv.next() {
                Some(p) => solve_baseline_path = Some(PathBuf::from(p)),
                None => return fail("--solve-baseline needs a path"),
            },
            "--tolerance" => {
                let parsed = argv.next().and_then(|t| t.parse::<f64>().ok());
                match parsed.filter(|t| t.is_finite() && *t >= 0.0) {
                    Some(t) => tolerance = Some(t),
                    None => return fail("--tolerance needs a non-negative fraction"),
                }
            }
            "--update" => update = true,
            "--serve" => serve = true,
            "--serve-only" => {
                serve = true;
                kernels_skipped = true;
            }
            "--require-serve" => {
                serve = true;
                require_serve = true;
            }
            "--solve" => solve = true,
            "--solve-only" => {
                solve = true;
                kernels_skipped = true;
            }
            "--require-solve" => {
                solve = true;
                require_solve = true;
            }
            "--inject-regression" => {
                let Some(spec) = argv.next() else {
                    return fail("--inject-regression needs <kernel>[:factor]");
                };
                // A trailing `:number` is the factor; anything else is
                // part of the metric name (e.g. `serve:batched_speedup`).
                let (name, factor) = match spec.rsplit_once(':') {
                    Some((k, f)) => match f.parse::<f64>() {
                        Ok(f) => (k.to_string(), f),
                        Err(_) => (spec, 2.0),
                    },
                    None => (spec, 2.0),
                };
                inject = Some((name, factor));
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [current.json] [--baseline <path>] \
                     [--tolerance <fraction>] [--update] \
                     [--inject-regression <kernel>[:factor]] \
                     [--serve] [--serve-only] [--require-serve] \
                     [--serve-current <path>] [--serve-baseline <path>] \
                     [--solve] [--solve-only] [--require-solve] \
                     [--solve-current <path>] [--solve-baseline <path>]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && current_path.is_none() => {
                current_path = Some(PathBuf::from(other));
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let tolerance = tolerance.unwrap_or_else(gate::gate_tolerance);
    // A namespaced injection implies its section.
    let serve_inject = match &inject {
        Some((name, factor)) => match name.strip_prefix("serve:") {
            Some(metric) => {
                serve = true;
                Some((metric.to_string(), *factor))
            }
            None => None,
        },
        None => None,
    };
    let solve_inject = match &inject {
        Some((name, factor)) => match name.strip_prefix("solve:") {
            Some(metric) => {
                solve = true;
                Some((metric.to_string(), *factor))
            }
            None => None,
        },
        None => None,
    };
    let kernel_inject =
        inject.filter(|(name, _)| !name.starts_with("serve:") && !name.starts_with("solve:"));

    let mut passed = true;

    if !kernels_skipped {
        let current_path = current_path.unwrap_or_else(|| results_dir().join("BENCH_kernels.json"));
        let baseline_path =
            baseline_path.unwrap_or_else(|| results_dir().join("BENCH_baseline.json"));

        let read = |path: &PathBuf, role: &str| -> Result<gate::KernelSummary, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {role} {}: {e}", path.display()))?;
            gate::parse_summary(&text).map_err(|e| format!("bad {role} {}: {e}", path.display()))
        };
        let baseline = match read(&baseline_path, "baseline") {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let mut current = match read(&current_path, "current summary") {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        if let Some((kernel, factor)) = kernel_inject {
            if let Err(e) = gate::inject_regression(&mut current, &kernel, factor) {
                return fail(&e);
            }
            eprintln!("bench_gate: injected {factor}x slowdown into '{kernel}' (self-test)");
        }

        let report = gate::compare(&baseline, &current, tolerance);
        print!("{}", gate::render(&report, tolerance));
        passed &= report.passed();

        if passed && update {
            if let Err(e) = std::fs::copy(&current_path, &baseline_path) {
                return fail(&format!(
                    "cannot update baseline {}: {e}",
                    baseline_path.display()
                ));
            }
            println!("baseline updated: {}", baseline_path.display());
        }
    }

    if serve {
        let leg = RatioLeg {
            label: "serve",
            current_path: serve_current_path
                .unwrap_or_else(|| results_dir().join("BENCH_serve.json")),
            baseline_path: serve_baseline_path
                .unwrap_or_else(|| results_dir().join("BENCH_serve_baseline.json")),
            require: require_serve,
            inject: serve_inject,
            render: gate::render_serve,
        };
        match run_ratio_leg(leg, tolerance, update) {
            Ok(ok) => passed &= ok,
            Err(e) => return fail(&e),
        }
    }

    if solve {
        let leg = RatioLeg {
            label: "solve",
            current_path: solve_current_path
                .unwrap_or_else(|| results_dir().join("BENCH_solve.json")),
            baseline_path: solve_baseline_path
                .unwrap_or_else(|| results_dir().join("BENCH_solve_baseline.json")),
            require: require_solve,
            inject: solve_inject,
            render: gate::render_solve,
        };
        match run_ratio_leg(leg, tolerance, update) {
            Ok(ok) => passed &= ok,
            Err(e) => return fail(&e),
        }
    }

    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

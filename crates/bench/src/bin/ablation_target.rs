//! Ablation: the paper's key formulation choice — predict the ratio
//! `f_R = I_ideal / I_non_ideal` instead of the current itself.
//!
//! Neural networks are poor at multiplicative interactions between
//! their inputs; predicting `I_non_ideal(V, G)` directly forces the
//! network to learn the V·G product, while the ratio target factors it
//! out (Section 4, "NN Formulation"). This ablation trains both
//! variants on identical data and compares their NF RMSE.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_target
//! ```

use geniex::dataset::DatasetConfig;
use geniex::TrainConfig;
use geniex_bench::setup::{
    cached_dataset, cached_f64_blob, cached_surrogate, design_point, results_dir, store,
    DEFAULT_SIZE,
};
use geniex_bench::table::{fix, Table};
use nn::{loss::mse, Adam, Mlp, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{Canonical, KeyBuilder};
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_target",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("samples", telemetry::Json::from(3000u64)),
            ("epochs", telemetry::Json::from(80u64)),
        ],
    );
    let params = design_point(DEFAULT_SIZE);
    let n = DEFAULT_SIZE;
    let data = cached_dataset(
        &params,
        &DatasetConfig {
            samples: 3000,
            seed: 7,
            ..DatasetConfig::default()
        },
    );

    // --- Variant A: ratio target (the GENIEx formulation). ----------
    let ratio_model = cached_surrogate(
        &data,
        200,
        3,
        &TrainConfig {
            epochs: 80,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 4,
            ..TrainConfig::default()
        },
    );

    // --- Variant B: direct current target. --------------------------
    // Same inputs; labels are the non-ideal currents normalized by the
    // crossbar's full-scale column current. The trained MLP is stored
    // as an artifact; on a miss, the label currents themselves come
    // from a store-cached blob so the circuit solves run at most once.
    let in_dim = n + n * n;
    let i_scale = n as f64 * params.v_supply * params.g_on();
    let mut mlp_key = KeyBuilder::new(store::KIND_SURROGATE);
    mlp_key
        .str("flavor", "direct_mlp")
        .nested("dataset", &data)
        .usize("hidden", 200)
        .u64("init_seed", 3)
        .usize("epochs", 80)
        .f64("learning_rate", 1e-3)
        .u64("shuffle_seed", 4);
    let mlp_key = mlp_key.finish();
    let cached_mlp = store()
        .load(&mlp_key)
        .and_then(|bytes| Mlp::load(&mut std::io::Cursor::new(bytes)).ok());
    let mut direct_model = match cached_mlp {
        Some(model) => {
            eprintln!("[ablation_target] loaded cached direct-target MLP ({mlp_key})");
            model
        }
        None => {
            let mut label_key = KeyBuilder::new(store::KIND_SWEEP);
            label_key
                .str("op", "ablation_target_direct_labels")
                .nested("dataset", &data);
            let y_all_f64 = cached_f64_blob(&label_key.finish(), || {
                let mut y = Vec::with_capacity(data.len() * n);
                for s in &data.samples {
                    // Re-solve the circuit for the raw non-ideal
                    // currents (the dataset stores only the ratio).
                    let volts: Vec<f64> = s
                        .v_levels
                        .iter()
                        .map(|&l| l as f64 * params.v_supply)
                        .collect();
                    let levels: Vec<f64> = s.g_levels.iter().map(|&l| l as f64).collect();
                    let g = ConductanceMatrix::from_levels(&params, &levels)?;
                    let currents = CrossbarCircuit::new(&params, &g)?.solve(&volts)?.currents;
                    y.extend(currents.into_iter().map(|c| c / i_scale));
                }
                Ok::<_, Box<dyn std::error::Error>>(y)
            })?;
            let y_all: Vec<f32> = y_all_f64.iter().map(|&y| y as f32).collect();
            let mut x_all = Vec::with_capacity(data.len() * in_dim);
            for s in &data.samples {
                x_all.extend_from_slice(&s.v_levels);
                x_all.extend_from_slice(&s.g_levels);
            }
            let mut model = Mlp::new(&[in_dim, 200, n], 3)?;
            let mut optimizer = Adam::new(1e-3);
            let samples = data.len();
            let mut order: Vec<usize> = (0..samples).collect();
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..80 {
                use rand::seq::SliceRandom;
                order.shuffle(&mut rng);
                for chunk in order.chunks(32) {
                    let bs = chunk.len();
                    let mut xb = Vec::with_capacity(bs * in_dim);
                    let mut yb = Vec::with_capacity(bs * n);
                    for &i in chunk {
                        xb.extend_from_slice(&x_all[i * in_dim..(i + 1) * in_dim]);
                        yb.extend_from_slice(&y_all[i * n..(i + 1) * n]);
                    }
                    let x = Tensor::from_vec(xb, &[bs, in_dim])?;
                    let y = Tensor::from_vec(yb, &[bs, n])?;
                    let pred = model.forward_train(&x);
                    let (_, grad) = mse(&pred, &y)?;
                    model.zero_grad();
                    model.backward(&grad);
                    optimizer.step(&mut model);
                }
            }
            let mut bytes = Vec::new();
            if model.save(&mut bytes).is_ok() {
                let _ = store().save(&mlp_key, &bytes);
            }
            model
        }
    };

    // --- Validation: NF RMSE of both variants. -----------------------
    // Stimuli are drawn deterministically; the solver ground truth is
    // store-cached like every other expensive intermediate.
    let mut rng = StdRng::seed_from_u64(515);
    let mut drawn = Vec::new();
    for _ in 0..40 {
        let v_sparsity = rng.gen_range(0.0..0.9);
        let g_sparsity = rng.gen_range(0.0..0.9);
        let v_levels: Vec<f32> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < v_sparsity {
                    0.0
                } else {
                    rng.gen_range(1..=16) as f32 / 16.0
                }
            })
            .collect();
        let g_levels: Vec<f32> = (0..n * n)
            .map(|_| {
                if rng.gen::<f64>() < g_sparsity {
                    0.0
                } else {
                    rng.gen::<f32>()
                }
            })
            .collect();
        drawn.push((v_levels, g_levels));
    }
    let mut truth_key = KeyBuilder::new(store::KIND_SWEEP);
    truth_key
        .str("op", "ablation_target_truth")
        .u64("seed", 515)
        .usize("stimuli", drawn.len());
    params.canonicalize(&mut truth_key);
    let truth_flat = cached_f64_blob(&truth_key.finish(), || {
        let mut flat = Vec::with_capacity(drawn.len() * n);
        for (v_levels, g_levels) in &drawn {
            let volts: Vec<f64> = v_levels
                .iter()
                .map(|&l| l as f64 * params.v_supply)
                .collect();
            let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
            let g = ConductanceMatrix::from_levels(&params, &levels)?;
            flat.extend(CrossbarCircuit::new(&params, &g)?.solve(&volts)?.currents);
        }
        Ok::<_, Box<dyn std::error::Error>>(flat)
    })?;

    let mut nf_ref = Vec::new();
    let mut nf_ratio = Vec::new();
    let mut nf_direct = Vec::new();
    let floor = 0.05 * params.g_off() * params.v_supply;
    for ((v_levels, g_levels), truth) in drawn.iter().zip(truth_flat.chunks_exact(n)) {
        let volts: Vec<f64> = v_levels
            .iter()
            .map(|&l| l as f64 * params.v_supply)
            .collect();
        let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
        let g = ConductanceMatrix::from_levels(&params, &levels)?;
        let ideal = ideal_mvm(&volts, &g)?;

        let ratio_currents = ratio_model.clone().predict_currents(&volts, &g)?;
        let mut input = Vec::with_capacity(in_dim);
        input.extend_from_slice(v_levels);
        input.extend_from_slice(g_levels);
        let direct_out = direct_model.forward(&Tensor::from_vec(input, &[1, in_dim])?);
        let direct_currents: Vec<f64> = direct_out
            .data()
            .iter()
            .map(|&y| y as f64 * i_scale)
            .collect();

        for j in 0..n {
            if ideal[j].abs() > floor {
                nf_ref.push((ideal[j] - truth[j]) / ideal[j]);
                nf_ratio.push((ideal[j] - ratio_currents[j]) / ideal[j]);
                nf_direct.push((ideal[j] - direct_currents[j]) / ideal[j]);
            }
        }
    }
    let rmse = |a: &[f64], b: &[f64]| {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    };
    let ratio_rmse = rmse(&nf_ref, &nf_ratio);
    let direct_rmse = rmse(&nf_ref, &nf_direct);

    let mut table = Table::new(&["target", "nf_rmse"]);
    table.row(&["ratio f_R (paper)".into(), fix(ratio_rmse, 4)]);
    table.row(&["direct current".into(), fix(direct_rmse, 4)]);
    println!("{}", table.render());
    table.write_csv(results_dir().join("ablation_target.csv"))?;
    println!(
        "expected: the ratio target wins — it spares the network the \
         multiplicative V x G interaction"
    );
    geniex_bench::manifest::finish(
        run,
        &[
            ("ratio_rmse", telemetry::Json::from(ratio_rmse)),
            ("direct_rmse", telemetry::Json::from(direct_rmse)),
        ],
    );
    Ok(())
}

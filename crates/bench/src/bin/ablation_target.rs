//! Ablation: the paper's key formulation choice — predict the ratio
//! `f_R = I_ideal / I_non_ideal` instead of the current itself.
//!
//! Neural networks are poor at multiplicative interactions between
//! their inputs; predicting `I_non_ideal(V, G)` directly forces the
//! network to learn the V·G product, while the ratio target factors it
//! out (Section 4, "NN Formulation"). This ablation trains both
//! variants on identical data and compares their NF RMSE.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin ablation_target
//! ```

use geniex::dataset::{generate, simulate_sample, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use geniex_bench::setup::{design_point, results_dir, DEFAULT_SIZE};
use geniex_bench::table::{fix, Table};
use nn::{loss::mse, Adam, Mlp, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "ablation_target",
        &[
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
            ("samples", telemetry::Json::from(3000u64)),
            ("epochs", telemetry::Json::from(80u64)),
        ],
    );
    let params = design_point(DEFAULT_SIZE);
    let n = DEFAULT_SIZE;
    let data = generate(
        &params,
        &DatasetConfig {
            samples: 3000,
            seed: 7,
            ..DatasetConfig::default()
        },
    )?;

    // --- Variant A: ratio target (the GENIEx formulation). ----------
    let mut ratio_model = Geniex::new(&params, 200, 3)?;
    ratio_model.train(
        &data,
        &TrainConfig {
            epochs: 80,
            batch_size: 32,
            learning_rate: 1e-3,
            seed: 4,
            ..TrainConfig::default()
        },
    )?;

    // --- Variant B: direct current target. --------------------------
    // Same inputs; labels are the non-ideal currents normalized by the
    // crossbar's full-scale column current.
    let in_dim = n + n * n;
    let i_scale = n as f64 * params.v_supply * params.g_on();
    let mut x_all = Vec::with_capacity(data.len() * in_dim);
    let mut y_all = Vec::with_capacity(data.len() * n);
    for s in &data.samples {
        x_all.extend_from_slice(&s.v_levels);
        x_all.extend_from_slice(&s.g_levels);
        // Reconstruct the non-ideal currents from f_R and the ideal MVM
        // (exactly what the sample was labelled from).
        let sample = simulate_sample(&params, &s.v_levels, &s.g_levels)?;
        let volts: Vec<f64> = s
            .v_levels
            .iter()
            .map(|&l| l as f64 * params.v_supply)
            .collect();
        let levels: Vec<f64> = s.g_levels.iter().map(|&l| l as f64).collect();
        let g = ConductanceMatrix::from_levels(&params, &levels)?;
        let circuit = CrossbarCircuit::new(&params, &g)?;
        let currents = circuit.solve(&volts)?.currents;
        let _ = sample;
        for c in currents {
            y_all.push((c / i_scale) as f32);
        }
    }
    let mut direct_model = Mlp::new(&[in_dim, 200, n], 3)?;
    let mut optimizer = Adam::new(1e-3);
    let samples = data.len();
    let mut order: Vec<usize> = (0..samples).collect();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..80 {
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        for chunk in order.chunks(32) {
            let bs = chunk.len();
            let mut xb = Vec::with_capacity(bs * in_dim);
            let mut yb = Vec::with_capacity(bs * n);
            for &i in chunk {
                xb.extend_from_slice(&x_all[i * in_dim..(i + 1) * in_dim]);
                yb.extend_from_slice(&y_all[i * n..(i + 1) * n]);
            }
            let x = Tensor::from_vec(xb, &[bs, in_dim])?;
            let y = Tensor::from_vec(yb, &[bs, n])?;
            let pred = direct_model.forward_train(&x);
            let (_, grad) = mse(&pred, &y)?;
            direct_model.zero_grad();
            direct_model.backward(&grad);
            optimizer.step(&mut direct_model);
        }
    }

    // --- Validation: NF RMSE of both variants. -----------------------
    let mut rng = StdRng::seed_from_u64(515);
    let mut nf_ref = Vec::new();
    let mut nf_ratio = Vec::new();
    let mut nf_direct = Vec::new();
    let floor = 0.05 * params.g_off() * params.v_supply;
    for _ in 0..40 {
        let v_sparsity = rng.gen_range(0.0..0.9);
        let g_sparsity = rng.gen_range(0.0..0.9);
        let v_levels: Vec<f32> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < v_sparsity {
                    0.0
                } else {
                    rng.gen_range(1..=16) as f32 / 16.0
                }
            })
            .collect();
        let g_levels: Vec<f32> = (0..n * n)
            .map(|_| {
                if rng.gen::<f64>() < g_sparsity {
                    0.0
                } else {
                    rng.gen::<f32>()
                }
            })
            .collect();
        let volts: Vec<f64> = v_levels
            .iter()
            .map(|&l| l as f64 * params.v_supply)
            .collect();
        let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
        let g = ConductanceMatrix::from_levels(&params, &levels)?;
        let truth = CrossbarCircuit::new(&params, &g)?.solve(&volts)?.currents;
        let ideal = ideal_mvm(&volts, &g)?;

        let ratio_currents = ratio_model.clone().predict_currents(&volts, &g)?;
        let mut input = Vec::with_capacity(in_dim);
        input.extend_from_slice(&v_levels);
        input.extend_from_slice(&g_levels);
        let direct_out = direct_model.forward(&Tensor::from_vec(input, &[1, in_dim])?);
        let direct_currents: Vec<f64> = direct_out
            .data()
            .iter()
            .map(|&y| y as f64 * i_scale)
            .collect();

        for j in 0..n {
            if ideal[j].abs() > floor {
                nf_ref.push((ideal[j] - truth[j]) / ideal[j]);
                nf_ratio.push((ideal[j] - ratio_currents[j]) / ideal[j]);
                nf_direct.push((ideal[j] - direct_currents[j]) / ideal[j]);
            }
        }
    }
    let rmse = |a: &[f64], b: &[f64]| {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    };
    let ratio_rmse = rmse(&nf_ref, &nf_ratio);
    let direct_rmse = rmse(&nf_ref, &nf_direct);

    let mut table = Table::new(&["target", "nf_rmse"]);
    table.row(&["ratio f_R (paper)".into(), fix(ratio_rmse, 4)]);
    table.row(&["direct current".into(), fix(direct_rmse, 4)]);
    println!("{}", table.render());
    table.write_csv(results_dir().join("ablation_target.csv"))?;
    println!(
        "expected: the ratio target wins — it spares the network the \
         multiplicative V x G interaction"
    );
    geniex_bench::manifest::finish(
        run,
        &[
            ("ratio_rmse", telemetry::Json::from(ratio_rmse)),
            ("direct_rmse", telemetry::Json::from(direct_rmse)),
        ],
    );
    Ok(())
}

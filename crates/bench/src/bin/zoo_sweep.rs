//! Non-ideality zoo sweep: strength ladders for every zoo model on a
//! single tile, plus an RxNN-scale end-to-end leg driving the full
//! netlist → SolverCache → funcsim path.
//!
//! The sweep quantifies how each pluggable model degrades MVM currents
//! relative to the clean ideal backend — drift over decades of
//! retention time, lognormal spread and stuck-at faults over strength,
//! and read noise over sigma — on a `GENIEX_ZOO_SIZE` tile (default
//! 64; CI's zoo-smoke step runs 256, the RxNN array size).
//!
//! The end-to-end leg then programs one drifted tile at the same size
//! through the circuit backend: the stack transforms the target
//! conductances, `xbar::netlist::to_spice` materializes the SPICE deck
//! the external-simulator path would consume, and a funcsim
//! `ZooEngine<CircuitEngine>` tile solves a small stimulus panel
//! through `SolverCache::solve_batch` — the amortized path benchmarked
//! by `solve_bench`.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin zoo_sweep
//! GENIEX_ZOO_SIZE=256 cargo run --release -p geniex-bench --bin zoo_sweep
//! ```
//!
//! `GENIEX_ZOO_E2E_SAMPLES` bounds the end-to-end panel (default 4),
//! keeping the 256×256 leg time-boxed to a few seconds.

use std::time::Instant;

use funcsim::{CircuitEngine, CrossbarEngine, IdealEngine, ZooEngine};
use geniex_bench::setup::results_dir;
use geniex_bench::table::{fix, Table};
use telemetry::Json;
use xbar::zoo::{ConductanceDrift, LognormalSpread, NonIdealityStack, ReadNoise, StuckAtFaults};
use xbar::{netlist, ConductanceMatrix, CrossbarParams};

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Deterministic xorshift64* stream in [0, 1).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Mean |I_zoo - I_clean| / mean |I_clean| over a stimulus panel.
fn mean_rel_deviation(
    size: usize,
    stack: NonIdealityStack,
    g_levels: &[f32],
    panel: &[f32],
    n: usize,
) -> f64 {
    let params = CrossbarParams::builder(size, size)
        .build()
        .expect("design point");
    let clean = IdealEngine
        .program(&params, g_levels)
        .expect("clean tile")
        .currents_batch(panel, n)
        .expect("clean MVMs");
    let zoo = ZooEngine::new(IdealEngine, stack)
        .program(&params, g_levels)
        .expect("zoo tile")
        .currents_batch(panel, n)
        .expect("zoo MVMs");
    let denom: f64 = clean
        .iter()
        .map(|c| c.abs())
        .sum::<f64>()
        .max(f64::MIN_POSITIVE);
    zoo.iter()
        .zip(&clean)
        .map(|(z, c)| (z - c).abs())
        .sum::<f64>()
        / denom
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = env_count("GENIEX_ZOO_SIZE", 64);
    let e2e_samples = env_count("GENIEX_ZOO_E2E_SAMPLES", 4);
    let seed = 42u64;
    let run = geniex_bench::manifest::start(
        "zoo_sweep",
        &[
            ("size", Json::from(size)),
            ("e2e_samples", Json::from(e2e_samples)),
            ("seed", Json::from(seed)),
        ],
    );

    let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ seed);
    let g_levels: Vec<f32> = (0..size * size)
        .map(|_| 0.05 + 0.9 * rng.next_f64() as f32)
        .collect();
    let n = 4usize;
    let panel: Vec<f32> = (0..n * size).map(|_| rng.next_f64() as f32).collect();

    let mut table = Table::new(&["model", "strength", "mean_rel_deviation"]);
    let mut sweep = |model: &str, strength: f64, stack: NonIdealityStack| {
        let dev = mean_rel_deviation(size, stack, &g_levels, &panel, n);
        println!("{model:<12} strength {strength:<8.3} deviation {dev:.5}");
        table.row(&[model.to_string(), fix(strength, 3), fix(dev, 5)]);
    };

    for nu in [0.0, 0.02, 0.05, 0.1] {
        let stack = NonIdealityStack::new(seed).with_model(Box::new(ConductanceDrift {
            t: 1e3,
            t0: 1.0,
            nu,
        }))?;
        sweep("drift", nu, stack);
    }
    for sigma in [0.0, 0.1, 0.2, 0.4] {
        let stack = NonIdealityStack::new(seed).with_model(Box::new(LognormalSpread { sigma }))?;
        sweep("lognormal", sigma, stack);
    }
    for rate in [0.0, 0.01, 0.05] {
        let stack = NonIdealityStack::new(seed).with_model(Box::new(StuckAtFaults {
            stuck_off_rate: rate / 2.0,
            stuck_on_rate: rate / 2.0,
        }))?;
        sweep("stuck_at", rate, stack);
    }
    for sigma in [0.0, 0.02, 0.05] {
        let stack = NonIdealityStack::new(seed).with_model(Box::new(ReadNoise { sigma }))?;
        sweep("read_noise", sigma, stack);
    }

    println!("\n{}", table.render());
    table.write_csv(results_dir().join("zoo_sweep.csv"))?;
    println!("expected: deviation grows monotonically with every model's strength");

    // End-to-end leg: one drifted tile through the ground-truth
    // circuit path at full array size.
    let params = CrossbarParams::builder(size, size).build()?;
    let stack = NonIdealityStack::new(seed)
        .with_model(Box::new(LognormalSpread { sigma: 0.1 }))?
        .with_model(Box::new(ConductanceDrift {
            t: 1e3,
            t0: 1.0,
            nu: 0.05,
        }))?
        .with_model(Box::new(ReadNoise { sigma: 0.02 }))?;

    // The stack-transformed conductances materialized as the SPICE
    // deck an external simulator would consume.
    let levels: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
    let target = ConductanceMatrix::from_levels(&params, &levels)?;
    let programmed = stack.program(&params, &target, 0)?;
    let v_bias: Vec<f64> = (0..size)
        .map(|i| params.v_supply * (i % 2) as f64)
        .collect();
    let deck = netlist::to_spice(&params, &programmed, &v_bias)?;
    let netlist_bytes = deck.len();
    println!("\ne2e: {size}x{size} SPICE deck is {netlist_bytes} bytes");

    // The same stack driving the funcsim circuit backend: programming
    // and drift transform the tile before `CrossbarCircuit` assembly,
    // read noise perturbs each solved sample, and the solves run
    // through `SolverCache::solve_batch`.
    let start = Instant::now();
    let engine = ZooEngine::new(CircuitEngine, stack);
    let tile = engine.program(&params, &g_levels)?;
    let e2e_panel: Vec<f32> = (0..e2e_samples * size)
        .map(|_| rng.next_f64() as f32)
        .collect();
    let currents = tile.currents_batch(&e2e_panel, e2e_samples)?;
    let wall_s = start.elapsed().as_secs_f64();
    let mean_current = currents.iter().sum::<f64>() / currents.len() as f64;
    println!(
        "e2e: {e2e_samples} samples solved through SolverCache in {wall_s:.2}s \
         (mean bit-line current {mean_current:.3e} A)"
    );

    geniex_bench::manifest::finish(
        run,
        &[
            ("netlist_bytes", Json::from(netlist_bytes)),
            ("e2e_wall_s", Json::from(wall_s)),
            ("e2e_mean_current", Json::from(mean_current)),
        ],
    );
    Ok(())
}

//! Figure 3: impact of the non-linear non-idealities.
//!
//! (a) output-current distribution with linear-only vs full (linear +
//!     non-linear) non-idealities;
//! (b) relative error between the two cases grows with the maximum
//!     supply voltage.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin fig3_nonlinearity
//! ```

use geniex_bench::setup::{cached_f64_blob, results_dir, DEFAULT_SIZE};
use geniex_bench::table::{fix, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use store::{Canonical, KeyBuilder};
use xbar::sweep::random_stimulus;
use xbar::{CrossbarCircuit, CrossbarParams, NonIdealityConfig};

const STIMULI: usize = 15;
const SEED: u64 = 303;

/// Paired (linear-only, full) output-current samples.
type CurrentPairs = Vec<(f64, f64)>;

/// Mean relative difference between linear-only and full outputs at
/// one supply voltage, plus paired samples for the distribution plot.
/// The solver results are store-cached as a flat blob: mean relative
/// error first, then the (linear, full) pairs.
fn compare_at_voltage(v_supply: f64) -> Result<(f64, CurrentPairs), Box<dyn std::error::Error>> {
    let full_params = CrossbarParams::builder(DEFAULT_SIZE, DEFAULT_SIZE)
        .v_supply(v_supply)
        .build()?;
    let mut linear_params = full_params.clone();
    linear_params.nonideality = NonIdealityConfig::linear_only();

    let mut kb = KeyBuilder::new(store::KIND_SWEEP);
    kb.str("op", "fig3_compare")
        .usize("stimuli", STIMULI)
        .u64("seed", SEED);
    full_params.canonicalize(&mut kb);
    let flat = cached_f64_blob(&kb.finish(), || {
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut rel_sum = 0.0;
        let mut count = 0usize;
        let mut flat = vec![0.0];
        for _ in 0..STIMULI {
            let stimulus = random_stimulus(&full_params, 0.3, 0.3, &mut rng);
            let full = CrossbarCircuit::new(&full_params, &stimulus.conductances)?
                .solve(&stimulus.voltages)?
                .currents;
            let linear = CrossbarCircuit::new(&linear_params, &stimulus.conductances)?
                .solve(&stimulus.voltages)?
                .currents;
            for (f, l) in full.iter().zip(&linear) {
                if l.abs() > 1e-12 {
                    rel_sum += ((f - l) / l).abs();
                    count += 1;
                    flat.push(*l);
                    flat.push(*f);
                }
            }
        }
        flat[0] = rel_sum / count as f64;
        Ok::<_, Box<dyn std::error::Error>>(flat)
    })?;
    let samples = flat[1..]
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();
    Ok((flat[0], samples))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "fig3_nonlinearity",
        &[
            ("stimuli", telemetry::Json::from(STIMULI)),
            ("seed", telemetry::Json::from(SEED)),
            ("size", telemetry::Json::from(DEFAULT_SIZE)),
        ],
    );
    let out_dir = results_dir();

    println!("== Fig 3: linear-only vs linear+nonlinear outputs ==");
    let mut summary = Table::new(&["v_supply", "mean_rel_error_pct"]);
    let mut dist = Table::new(&["v_supply", "i_linear_uA", "i_full_uA"]);
    let mut rel_errors = Vec::new();
    for v_supply in [0.25, 0.5] {
        let (rel, samples) = compare_at_voltage(v_supply)?;
        summary.row(&[fix(v_supply, 2), fix(100.0 * rel, 2)]);
        rel_errors.push((format!("rel_error_{v_supply}"), rel));
        for (l, f) in samples {
            dist.row(&[fix(v_supply, 2), fix(l * 1e6, 4), fix(f * 1e6, 4)]);
        }
    }
    print!("{}", summary.render());
    summary.write_csv(out_dir.join("fig3b_relative_error.csv"))?;
    dist.write_csv(out_dir.join("fig3a_distributions.csv"))?;

    println!(
        "\npaper trend: the deviation between the cases grows with supply \
         voltage — the data-dependent non-linearity analytical models miss"
    );
    let fields: Vec<(&str, telemetry::Json)> = rel_errors
        .iter()
        .map(|(k, v)| (k.as_str(), telemetry::Json::from(*v)))
        .collect();
    geniex_bench::manifest::finish(run, &fields);
    Ok(())
}

//! Figure 2: analysis of NVM non-idealities.
//!
//! (a) ideal vs non-ideal output currents (scatter data);
//! (b) NF distribution vs crossbar size;
//! (c) NF distribution vs ON resistance;
//! (d) NF distribution vs conductance ON/OFF ratio.
//!
//! ```text
//! cargo run --release -p geniex-bench --bin fig2_nf_analysis
//! ```

use geniex_bench::setup::{
    cached_current_pairs, cached_nf_distribution, results_dir, DEFAULT_SIZE, ON_OFFS, RONS, SIZES,
};
use geniex_bench::table::{fix, Table};
use xbar::CrossbarParams;

const STIMULI: usize = 20;
const SEED: u64 = 2020;

fn summarize(
    table: &mut Table,
    label: &str,
    params: &CrossbarParams,
) -> Result<(), Box<dyn std::error::Error>> {
    let point = cached_nf_distribution(params, STIMULI, SEED, label)?;
    let s = point.summary;
    table.row(&[
        label.to_string(),
        fix(s.min, 4),
        fix(s.q1, 4),
        fix(s.median, 4),
        fix(s.q3, 4),
        fix(s.max, 4),
        fix(s.mean, 4),
        s.count.to_string(),
    ]);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = geniex_bench::manifest::start(
        "fig2_nf_analysis",
        &[
            ("stimuli", telemetry::Json::from(STIMULI)),
            ("seed", telemetry::Json::from(SEED)),
            ("default_size", telemetry::Json::from(DEFAULT_SIZE)),
        ],
    );
    let out_dir = results_dir();

    // (a) paired currents for the scatter plot.
    println!("== Fig 2(a): ideal vs non-ideal currents (64-point sample shown) ==");
    let params = CrossbarParams::builder(DEFAULT_SIZE, DEFAULT_SIZE).build()?;
    let pairs = cached_current_pairs(&params, 8, SEED)?;
    let mut scatter = Table::new(&["i_ideal_uA", "i_non_ideal_uA"]);
    for (i, n) in pairs.ideal.iter().zip(&pairs.non_ideal) {
        scatter.row(&[fix(i * 1e6, 4), fix(n * 1e6, 4)]);
    }
    println!("{} current pairs collected", scatter.len());
    scatter.write_csv(out_dir.join("fig2a_scatter.csv"))?;

    let headers = ["design", "min", "q1", "median", "q3", "max", "mean", "n"];

    // (b) crossbar size sweep.
    println!("\n== Fig 2(b): NF vs crossbar size ==");
    let mut t = Table::new(&headers);
    for &size in &SIZES {
        let p = CrossbarParams::builder(size, size).build()?;
        summarize(&mut t, &format!("{size}x{size}"), &p)?;
    }
    print!("{}", t.render());
    t.write_csv(out_dir.join("fig2b_size.csv"))?;

    // (c) ON-resistance sweep.
    println!("\n== Fig 2(c): NF vs ON resistance ==");
    let mut t = Table::new(&headers);
    for &ron in &RONS {
        let p = CrossbarParams::builder(DEFAULT_SIZE, DEFAULT_SIZE)
            .r_on(ron)
            .build()?;
        summarize(&mut t, &format!("{}k", ron / 1e3), &p)?;
    }
    print!("{}", t.render());
    t.write_csv(out_dir.join("fig2c_ron.csv"))?;

    // (d) ON/OFF ratio sweep.
    println!("\n== Fig 2(d): NF vs ON/OFF ratio ==");
    let mut t = Table::new(&headers);
    for &ratio in &ON_OFFS {
        let p = CrossbarParams::builder(DEFAULT_SIZE, DEFAULT_SIZE)
            .on_off_ratio(ratio)
            .build()?;
        summarize(&mut t, &format!("{ratio}"), &p)?;
    }
    print!("{}", t.render());
    t.write_csv(out_dir.join("fig2d_onoff.csv"))?;

    println!("\npaper trends: NF grows with size, shrinks with Ron, shrinks with ON/OFF ratio");
    geniex_bench::manifest::finish(
        run,
        &[(
            "tables",
            telemetry::Json::from("fig2a_scatter,fig2b_size,fig2c_ron,fig2d_onoff"),
        )],
    );
    Ok(())
}

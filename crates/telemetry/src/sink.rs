//! Event sinks: where structured telemetry events go.
//!
//! Metrics aggregate in place; *events* are the streaming side of the
//! telemetry system — one record per occurrence (a span closing, a
//! training epoch finishing, a layer SNR measurement), fanned out to
//! every registered sink. Two sinks ship with the crate: a JSON-lines
//! file sink (run manifests, post-hoc analysis) and an in-memory sink
//! (tests).

use std::collections::hash_map::DefaultHasher;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{parse, Json};

/// Stable-within-process numeric id for the calling thread. Masked to
/// 53 bits so it survives a trip through a JSON f64 exactly.
pub fn current_thread_id() -> u64 {
    let mut hasher = DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    hasher.finish() & ((1 << 53) - 1)
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Category, e.g. `"span"`, `"epoch"`, `"layer_snr"`.
    pub kind: String,
    /// Specific name within the category, e.g. `"funcsim.forward"`.
    pub name: String,
    /// Free-form payload.
    pub fields: Vec<(String, Json)>,
    /// Hashed id of the emitting thread (lets tests filter out events
    /// from concurrently running tests).
    pub thread: u64,
    /// Seconds since telemetry initialization in this process.
    pub elapsed_s: f64,
}

impl Event {
    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut pairs = vec![
            ("type".to_string(), Json::Str("event".into())),
            ("kind".to_string(), Json::Str(self.kind.clone())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("thread".to_string(), Json::Num(self.thread as f64)),
            ("elapsed_s".to_string(), Json::Num(self.elapsed_s)),
        ];
        pairs.push(("fields".to_string(), Json::Obj(self.fields.clone())));
        Json::Obj(pairs).to_string()
    }

    /// Parses a line produced by [`Event::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let value = parse(line)?;
        if value.get("type").and_then(Json::as_str) != Some("event") {
            return Err("not an event line".to_string());
        }
        let field = |key: &str| value.get(key).ok_or_else(|| format!("missing key '{key}'"));
        let fields = match field("fields")? {
            Json::Obj(pairs) => pairs.clone(),
            _ => return Err("'fields' is not an object".to_string()),
        };
        Ok(Event {
            kind: field("kind")?
                .as_str()
                .ok_or("'kind' is not a string")?
                .to_string(),
            name: field("name")?
                .as_str()
                .ok_or("'name' is not a string")?
                .to_string(),
            fields,
            thread: field("thread")?.as_u64().ok_or("'thread' is not a u64")?,
            elapsed_s: field("elapsed_s")?
                .as_f64()
                .ok_or("'elapsed_s' is not a number")?,
        })
    }

    /// Looks up a payload field.
    pub fn field(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Receives every emitted event.
pub trait Sink: Send + Sync {
    fn emit(&self, event: &Event);
    fn flush(&self) {}
}

/// Collects events in memory; intended for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// All events captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Events emitted by the calling thread (filters out concurrent
    /// tests sharing the global sink list).
    pub fn events_for_current_thread(&self) -> Vec<Event> {
        let me = current_thread_id();
        self.events()
            .into_iter()
            .filter(|e| e.thread == me)
            .collect()
    }

    /// Drops all captured events.
    pub fn clear(&self) {
        self.events.lock().expect("memory sink poisoned").clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Appends events to a JSON-lines file, flushing after every line so
/// logs survive a crash mid-run. Events are cold-path (spans, epochs,
/// per-layer summaries), so the per-line flush is not a hot cost.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file, creating parent directories.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open(path.into(), true)
    }

    /// Opens the file for appending, creating parent directories.
    pub fn append(path: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open(path.into(), false)
    }

    fn open(path: PathBuf, truncate: bool) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(truncate)
            .append(!truncate)
            .open(&path)?;
        Ok(JsonlSink {
            path,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one raw JSON line (used by run manifests for non-event
    /// records such as `run_start` and metric dumps).
    pub fn write_raw_line(&self, line: &str) -> io::Result<()> {
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        writeln!(writer, "{line}")?;
        writer.flush()
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        // Best effort: a full disk must not take down the simulation.
        let _ = self.write_raw_line(&event.to_json_line());
    }

    fn flush(&self) {
        if let Ok(mut writer) = self.writer.lock() {
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event {
            kind: "epoch".into(),
            name: "surrogate.train".into(),
            fields: vec![
                ("epoch".into(), Json::Num(3.0)),
                ("loss".into(), Json::Num(0.0125)),
                ("note".into(), Json::Str("val \"best\"".into())),
            ],
            thread: current_thread_id(),
            elapsed_s: 1.5,
        }
    }

    #[test]
    fn event_json_line_round_trip() {
        let event = sample_event();
        let line = event.to_json_line();
        assert!(!line.contains('\n'));
        let back = Event::from_json_line(&line).expect("parse");
        assert_eq!(back, event);
    }

    #[test]
    fn memory_sink_thread_filter() {
        let sink = MemorySink::new();
        sink.emit(&sample_event());
        let mut foreign = sample_event();
        foreign.thread = foreign.thread.wrapping_add(1);
        sink.emit(&foreign);
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events_for_current_thread().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!(
            "geniex-telemetry-test-{}-{}",
            std::process::id(),
            current_thread_id()
        ));
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        sink.emit(&sample_event());
        sink.write_raw_line("{\"type\":\"run_end\"}").expect("raw");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back = Event::from_json_line(lines[0]).expect("event line");
        assert_eq!(back.kind, "epoch");
        assert!(Event::from_json_line(lines[1]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Run manifests: one JSON-lines file per benchmark/figure run.
//!
//! A manifest records everything needed to interpret a results CSV
//! after the fact: the configuration that produced it, the git
//! revision, wall time, every telemetry event emitted during the run,
//! and a final snapshot of all metrics. Layout of a manifest file:
//!
//! ```text
//! {"type":"run_start","name":...,"git_rev":...,"unix_time_s":...,"threads":...,"config":{...}}
//! {"type":"event", ...}            // streamed while the run executes
//! ...
//! {"type":"metric","kind":"counter", ...}   // snapshot at finish
//! ...
//! {"type":"run_end","name":...,"wall_s":...,"final":{...}}
//! ```

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::sink::JsonlSink;

/// Best-effort current git commit hash, found by walking up from
/// `start` to a `.git` directory and resolving `HEAD` by hand (no git
/// binary or library needed).
pub fn git_rev(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            if let Some(reference) = head.strip_prefix("ref: ") {
                // Loose ref file, then packed-refs.
                if let Ok(hash) = std::fs::read_to_string(git.join(reference)) {
                    return Some(hash.trim().to_string());
                }
                if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
                    for line in packed.lines() {
                        if let Some(hash) = line.strip_suffix(reference) {
                            return Some(hash.trim().to_string());
                        }
                    }
                }
                return None;
            }
            return Some(head.to_string());
        }
        dir = d.parent();
    }
    None
}

/// Worker-thread count the process is configured for: `GENIEX_THREADS`
/// when set to a positive integer, else the machine's available
/// parallelism. Mirrors the thread-pool crate's resolution rule (which
/// sits above telemetry in the dependency graph, so the logic is
/// repeated here rather than imported).
pub fn configured_threads() -> usize {
    std::env::var("GENIEX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Live manifest for one run. Obtain via [`start_run`]; close with
/// [`RunManifest::finish`]. Dropping without `finish` still writes the
/// metric snapshot and `run_end` record (best effort).
pub struct RunManifest {
    name: String,
    sink: Arc<JsonlSink>,
    sink_id: u64,
    start: Instant,
    finished: bool,
}

/// Opens `<log_dir>/<name>.jsonl` (truncating any previous run),
/// enables telemetry, resets all metrics so the manifest's final
/// snapshot covers exactly this run, registers the file as an event
/// sink, and writes the `run_start` record.
pub fn start_run(log_dir: &Path, name: &str, config: &[(&str, Json)]) -> io::Result<RunManifest> {
    let sink = Arc::new(JsonlSink::create(log_dir.join(format!("{name}.jsonl")))?);
    crate::set_enabled(true);
    crate::reset_metrics();
    let unix_time_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let rev = git_rev(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
    let header = Json::Obj(vec![
        ("type".into(), "run_start".into()),
        ("name".into(), name.into()),
        ("git_rev".into(), rev.map_or(Json::Null, Json::Str)),
        ("unix_time_s".into(), unix_time_s.into()),
        ("threads".into(), Json::Num(configured_threads() as f64)),
        (
            "config".into(),
            Json::Obj(
                config
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
        ),
    ]);
    sink.write_raw_line(&header.to_string())?;
    let sink_id = crate::add_sink(sink.clone());
    Ok(RunManifest {
        name: name.to_string(),
        sink,
        sink_id,
        start: Instant::now(),
        finished: false,
    })
}

impl RunManifest {
    /// Path of the manifest file.
    pub fn path(&self) -> &Path {
        self.sink.path()
    }

    /// Detaches the sink, dumps a snapshot of every metric, and writes
    /// the `run_end` record with `final_fields` (the run's headline
    /// numbers, e.g. final accuracy or RMSE).
    pub fn finish(mut self, final_fields: &[(&str, Json)]) -> io::Result<PathBuf> {
        self.close(final_fields)?;
        Ok(self.sink.path().to_path_buf())
    }

    fn close(&mut self, final_fields: &[(&str, Json)]) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        crate::remove_sink(self.sink_id);
        for snapshot in crate::snapshot() {
            self.sink.write_raw_line(&snapshot.to_json().to_string())?;
        }
        let footer = Json::Obj(vec![
            ("type".into(), "run_end".into()),
            ("name".into(), self.name.as_str().into()),
            ("wall_s".into(), self.start.elapsed().as_secs_f64().into()),
            (
                "final".into(),
                Json::Obj(
                    final_fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]);
        self.sink.write_raw_line(&footer.to_string())
    }
}

impl Drop for RunManifest {
    fn drop(&mut self) {
        let _ = self.close(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::sink::current_thread_id;

    #[test]
    fn git_rev_resolves_this_repo() {
        // The workspace is a git repo, so walking up from the crate
        // directory must find a 40-hex-digit commit hash.
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let rev = git_rev(&here).expect("repo has a .git directory");
        assert_eq!(rev.len(), 40, "unexpected rev {rev:?}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn manifest_file_structure() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir().join(format!(
            "geniex-manifest-test-{}-{}",
            std::process::id(),
            current_thread_id()
        ));
        let manifest = start_run(
            &dir,
            "unit",
            &[("rows", Json::Num(64.0)), ("mode", "quick".into())],
        )
        .expect("start");
        crate::counter("unit.count").add(3);
        crate::emit("tick", "unit.tick", vec![("i".into(), Json::Num(1.0))]);
        let path = manifest
            .finish(&[("rmse", Json::Num(0.05))])
            .expect("finish");
        crate::set_enabled(false);

        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<Json> = text
            .lines()
            .map(|l| parse(l).expect("every line is valid JSON"))
            .collect();
        assert!(lines.len() >= 4);
        let first = &lines[0];
        assert_eq!(first.get("type").and_then(Json::as_str), Some("run_start"));
        assert_eq!(
            first
                .get("config")
                .and_then(|c| c.get("rows"))
                .and_then(Json::as_u64),
            Some(64)
        );
        assert!(first.get("git_rev").and_then(Json::as_str).is_some());
        assert!(first.get("threads").and_then(Json::as_u64).unwrap() >= 1);
        assert!(lines.iter().any(|l| {
            l.get("type").and_then(Json::as_str) == Some("event")
                && l.get("name").and_then(Json::as_str) == Some("unit.tick")
        }));
        assert!(lines.iter().any(|l| {
            l.get("kind").and_then(Json::as_str) == Some("counter")
                && l.get("name").and_then(Json::as_str) == Some("unit.count")
                && l.get("value").and_then(Json::as_u64) == Some(3)
        }));
        let last = lines.last().unwrap();
        assert_eq!(last.get("type").and_then(Json::as_str), Some("run_end"));
        assert_eq!(
            last.get("final")
                .and_then(|f| f.get("rmse"))
                .and_then(Json::as_f64),
            Some(0.05)
        );
        assert!(last.get("wall_s").and_then(Json::as_f64).unwrap() >= 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Run manifests: one JSON-lines file per benchmark/figure run.
//!
//! A manifest records everything needed to interpret a results CSV
//! after the fact: the configuration that produced it, the git
//! revision, wall time, every telemetry event emitted during the run,
//! and a final snapshot of all metrics. Layout of a manifest file:
//!
//! ```text
//! {"type":"run_start","name":...,"git_rev":...,"unix_time_s":...,"threads":...,"config":{...}}
//! {"type":"event", ...}            // streamed while the run executes
//! ...
//! {"type":"metric","kind":"counter", ...}   // snapshot at finish
//! ...
//! {"type":"run_end","name":...,"wall_s":...,"final":{...}}
//! ```

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::sink::JsonlSink;

/// Best-effort current git commit hash, found by walking up from
/// `start` to a `.git` directory and resolving `HEAD` by hand (no git
/// binary or library needed).
pub fn git_rev(start: &Path) -> Option<String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            if let Some(reference) = head.strip_prefix("ref: ") {
                // Loose ref file, then packed-refs.
                if let Ok(hash) = std::fs::read_to_string(git.join(reference)) {
                    return Some(hash.trim().to_string());
                }
                if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
                    for line in packed.lines() {
                        if let Some(hash) = line.strip_suffix(reference) {
                            return Some(hash.trim().to_string());
                        }
                    }
                }
                return None;
            }
            return Some(head.to_string());
        }
        dir = d.parent();
    }
    None
}

/// Worker-thread count the process is configured for: `GENIEX_THREADS`
/// when set to a positive integer, else the machine's available
/// parallelism. Mirrors the thread-pool crate's resolution rule (which
/// sits above telemetry in the dependency graph, so the logic is
/// repeated here rather than imported).
pub fn configured_threads() -> usize {
    std::env::var("GENIEX_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Peak resident set size of the current process in kiB, read from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs —
/// callers should then fall back to `/usr/bin/time -v` at the script
/// level (see `run_figs.sh`).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Live manifest for one run. Obtain via [`start_run`]; close with
/// [`RunManifest::finish`]. Dropping without `finish` still writes the
/// metric snapshot and `run_end` record (best effort).
pub struct RunManifest {
    name: String,
    sink: Arc<JsonlSink>,
    sink_id: u64,
    start: Instant,
    finished: bool,
    /// Whether this manifest owns an active trace (`GENIEX_TRACE=1`);
    /// closing the manifest then also writes the trace file.
    owns_trace: bool,
}

/// Whether `GENIEX_TRACE` requests a Chrome Trace file per run.
fn trace_requested() -> bool {
    std::env::var("GENIEX_TRACE")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
        })
        .unwrap_or(false)
}

/// Opens `<log_dir>/<name>.jsonl` (truncating any previous run),
/// enables telemetry, resets all metrics so the manifest's final
/// snapshot covers exactly this run, registers the file as an event
/// sink, and writes the `run_start` record. With `GENIEX_TRACE=1` it
/// also starts a Chrome Trace recording that closing the manifest
/// writes to `<log_dir>/<name>.trace.json`.
pub fn start_run(log_dir: &Path, name: &str, config: &[(&str, Json)]) -> io::Result<RunManifest> {
    let sink = Arc::new(JsonlSink::create(log_dir.join(format!("{name}.jsonl")))?);
    crate::set_enabled(true);
    crate::reset_metrics();
    // Best effort: a second concurrent run keeps its manifest but
    // cannot own the process-wide trace.
    let owns_trace = trace_requested()
        && crate::trace::start_trace(log_dir.join(format!("{name}.trace.json"))).is_ok();
    let unix_time_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let rev = git_rev(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));
    let header = Json::Obj(vec![
        ("type".into(), "run_start".into()),
        ("name".into(), name.into()),
        ("git_rev".into(), rev.map_or(Json::Null, Json::Str)),
        ("unix_time_s".into(), unix_time_s.into()),
        ("threads".into(), Json::Num(configured_threads() as f64)),
        (
            "config".into(),
            Json::Obj(
                config
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
        ),
    ]);
    sink.write_raw_line(&header.to_string())?;
    let sink_id = crate::add_sink(sink.clone());
    Ok(RunManifest {
        name: name.to_string(),
        sink,
        sink_id,
        start: Instant::now(),
        finished: false,
        owns_trace,
    })
}

impl RunManifest {
    /// Path of the manifest file.
    pub fn path(&self) -> &Path {
        self.sink.path()
    }

    /// Detaches the sink, dumps a snapshot of every metric, and writes
    /// the `run_end` record with `final_fields` (the run's headline
    /// numbers, e.g. final accuracy or RMSE).
    pub fn finish(mut self, final_fields: &[(&str, Json)]) -> io::Result<PathBuf> {
        self.close(final_fields)?;
        Ok(self.sink.path().to_path_buf())
    }

    fn close(&mut self, final_fields: &[(&str, Json)]) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        crate::remove_sink(self.sink_id);
        let trace_path = if self.owns_trace {
            crate::trace::finish_trace()?
        } else {
            None
        };
        for snapshot in crate::snapshot() {
            self.sink.write_raw_line(&snapshot.to_json().to_string())?;
        }
        let footer = Json::Obj(vec![
            ("type".into(), "run_end".into()),
            ("name".into(), self.name.as_str().into()),
            ("wall_s".into(), self.start.elapsed().as_secs_f64().into()),
            (
                "peak_rss_kb".into(),
                peak_rss_kb().map_or(Json::Null, Json::from),
            ),
            (
                "trace".into(),
                trace_path.map_or(Json::Null, |p| Json::Str(p.display().to_string())),
            ),
            (
                "final".into(),
                Json::Obj(
                    final_fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]);
        self.sink.write_raw_line(&footer.to_string())
    }
}

impl Drop for RunManifest {
    fn drop(&mut self) {
        let _ = self.close(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::sink::current_thread_id;

    #[test]
    fn git_rev_resolves_this_repo() {
        // The workspace is a git repo, so walking up from the crate
        // directory must find a 40-hex-digit commit hash.
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let rev = git_rev(&here).expect("repo has a .git directory");
        assert_eq!(rev.len(), 40, "unexpected rev {rev:?}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn manifest_file_structure() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir().join(format!(
            "geniex-manifest-test-{}-{}",
            std::process::id(),
            current_thread_id()
        ));
        let manifest = start_run(
            &dir,
            "unit",
            &[("rows", Json::Num(64.0)), ("mode", "quick".into())],
        )
        .expect("start");
        crate::counter("unit.count").add(3);
        crate::emit("tick", "unit.tick", vec![("i".into(), Json::Num(1.0))]);
        let path = manifest
            .finish(&[("rmse", Json::Num(0.05))])
            .expect("finish");
        crate::set_enabled(false);

        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<Json> = text
            .lines()
            .map(|l| parse(l).expect("every line is valid JSON"))
            .collect();
        assert!(lines.len() >= 4);
        let first = &lines[0];
        assert_eq!(first.get("type").and_then(Json::as_str), Some("run_start"));
        assert_eq!(
            first
                .get("config")
                .and_then(|c| c.get("rows"))
                .and_then(Json::as_u64),
            Some(64)
        );
        assert!(first.get("git_rev").and_then(Json::as_str).is_some());
        assert!(first.get("threads").and_then(Json::as_u64).unwrap() >= 1);
        assert!(lines.iter().any(|l| {
            l.get("type").and_then(Json::as_str) == Some("event")
                && l.get("name").and_then(Json::as_str) == Some("unit.tick")
        }));
        assert!(lines.iter().any(|l| {
            l.get("kind").and_then(Json::as_str) == Some("counter")
                && l.get("name").and_then(Json::as_str) == Some("unit.count")
                && l.get("value").and_then(Json::as_u64) == Some(3)
        }));
        let last = lines.last().unwrap();
        assert_eq!(last.get("type").and_then(Json::as_str), Some("run_end"));
        assert_eq!(
            last.get("final")
                .and_then(|f| f.get("rmse"))
                .and_then(Json::as_f64),
            Some(0.05)
        );
        assert!(last.get("wall_s").and_then(Json::as_f64).unwrap() >= 0.0);
        // Linux CI and dev machines have procfs; the footer then
        // carries a positive peak RSS.
        if peak_rss_kb().is_some() {
            assert!(last.get("peak_rss_kb").and_then(Json::as_u64).unwrap() > 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geniex_trace_env_writes_trace_file() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir().join(format!(
            "geniex-manifest-trace-test-{}-{}",
            std::process::id(),
            current_thread_id()
        ));
        std::env::set_var("GENIEX_TRACE", "1");
        let manifest = start_run(&dir, "traced", &[]).expect("start");
        std::env::remove_var("GENIEX_TRACE");
        assert!(crate::trace_active());
        {
            let _span = crate::span("traced.phase");
            crate::trace_instant("traced.tick", vec![]);
        }
        let path = manifest.finish(&[]).expect("finish");
        crate::set_enabled(false);
        assert!(!crate::trace_active());

        let trace_path = dir.join("traced.trace.json");
        let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
        let trace = parse(&trace_text).expect("trace is valid JSON");
        let events = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("traced.phase")));

        // The run_end footer links to the trace file.
        let text = std::fs::read_to_string(&path).expect("read manifest");
        let last = parse(text.lines().last().unwrap()).expect("footer");
        assert_eq!(
            last.get("trace").and_then(Json::as_str),
            Some(trace_path.display().to_string().as_str())
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Minimal JSON value type, writer, and parser.
//!
//! The telemetry crate is zero-dependency by design, so it carries its
//! own JSON support. Only the subset needed for JSON-lines event logs
//! and run manifests is implemented: objects, arrays, strings, finite
//! numbers, booleans, and null. Non-finite numbers serialize as `null`
//! (JSON has no representation for them).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a JSON document. Returns a descriptive error on malformed
/// input; trailing non-whitespace after the value is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("invalid escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a whole run of unescaped bytes at once;
                    // validating UTF-8 per run (not per character)
                    // keeps parsing linear on large documents.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let value = Json::Obj(vec![
            ("name".into(), Json::Str("fig9 \"bit\" slicing\n".into())),
            ("count".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(-1.25e-3)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "buckets".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
            ),
        ]);
        let text = value.to_string();
        let back = parse(&text).expect("parse");
        assert_eq!(back, value);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 3, \"b\": \"x\", \"c\": [1, 2]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(|a| a.len()), Some(2));
        assert_eq!(v.get("missing"), None);
    }
}

//! `geniex-telemetry` — zero-dependency observability for the GENIEx
//! reproduction: metrics, spans, structured events, and run manifests
//! across the solver → surrogate → functional-simulator stack.
//!
//! # Design
//!
//! - **Global, default-off.** One process-wide registry and enabled
//!   flag. Instrumentation stays compiled into hot paths; while
//!   disabled, every update costs a single relaxed atomic load.
//! - **Handles for hot paths.** [`counter`] / [`histogram`] / [`timer`]
//!   return `Arc` handles resolved once (at construction of the hot
//!   struct) so the per-update path never touches the registry lock.
//! - **Metrics aggregate, events stream.** Counters, gauges,
//!   fixed-bucket histograms, and timers accumulate in place and are
//!   rendered by [`report`] or dumped into run manifests. Structured
//!   [`Event`]s (epoch losses, layer SNRs, closing spans) fan out to
//!   registered [`Sink`]s — a JSON-lines file per benchmark run, or an
//!   in-memory sink in tests.
//! - **Run manifests.** [`start_run`] ties it together for a
//!   benchmark binary: it opens `results/logs/<name>.jsonl`, records
//!   config + git revision, streams events during the run, and
//!   [`RunManifest::finish`] appends a final snapshot of every metric
//!   plus the headline result.
//!
//! # Example
//!
//! ```
//! let _lock = telemetry::test_lock(); // serialize global state in doctests
//! telemetry::set_enabled(true);
//! let mvms = telemetry::counter("doc.mvm_ops");
//! let iters = telemetry::histogram("doc.newton_iters", &[1.0, 2.0, 4.0, 8.0]);
//! {
//!     let _span = telemetry::span("doc.solve");
//!     mvms.inc();
//!     iters.observe(3.0);
//! }
//! let report = telemetry::report();
//! assert!(report.contains("doc.mvm_ops"));
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]

pub mod json;
pub mod manifest;
pub mod metrics;
pub mod sink;
mod span;
pub mod trace;

pub use json::Json;
pub use manifest::{git_rev, peak_rss_kb, start_run, RunManifest};
pub use metrics::{
    exponential_buckets, linear_buckets, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricSnapshot, Timer,
};
pub use sink::{current_thread_id, Event, JsonlSink, MemorySink, Sink};
pub use span::Span;
pub use trace::{
    finish_trace, start_trace, trace_active, trace_begin, trace_counter, trace_end, trace_instant,
    trace_scope, TraceScope,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording. This is the hot-path
/// guard: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Process-relative clock origin for event timestamps.
fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

#[derive(Default)]
struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    timers: RwLock<BTreeMap<String, Arc<Timer>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn get_or_insert<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    create: impl FnOnce(String) -> T,
) -> Arc<T> {
    if let Some(found) = map.read().expect("registry poisoned").get(name) {
        return found.clone();
    }
    let mut map = map.write().expect("registry poisoned");
    map.entry(name.to_string())
        .or_insert_with(|| Arc::new(create(name.to_string())))
        .clone()
}

/// Gets or creates the counter with this name. Cache the handle in
/// hot structs; the lookup takes a registry read lock.
pub fn counter(name: &str) -> Arc<Counter> {
    get_or_insert(&registry().counters, name, Counter::new)
}

/// Gets or creates the gauge with this name.
pub fn gauge(name: &str) -> Arc<Gauge> {
    get_or_insert(&registry().gauges, name, Gauge::new)
}

/// Gets or creates the histogram with this name. The first caller's
/// `bounds` win; later calls with different bounds get the existing
/// histogram unchanged.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    get_or_insert(&registry().histograms, name, |n| Histogram::new(n, bounds))
}

/// Gets or creates the timer with this name.
pub fn timer(name: &str) -> Arc<Timer> {
    get_or_insert(&registry().timers, name, Timer::new)
}

/// Opens a scoped wall-time span; it records a `span.<path>` timer and
/// emits a `span` event when dropped. Spans nest per thread.
pub fn span(name: &str) -> Span {
    span::begin(name)
}

/// Zeroes every registered metric (names and histogram bounds are
/// kept). Run manifests call this so each run's final snapshot covers
/// exactly that run.
pub fn reset_metrics() {
    let reg = registry();
    for c in reg.counters.read().expect("registry poisoned").values() {
        c.reset();
    }
    for g in reg.gauges.read().expect("registry poisoned").values() {
        g.reset();
    }
    for h in reg.histograms.read().expect("registry poisoned").values() {
        h.reset();
    }
    for t in reg.timers.read().expect("registry poisoned").values() {
        t.reset();
    }
}

/// Snapshot of every registered metric, sorted by name within kind
/// (counters, gauges, histograms, timers).
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry();
    let mut out = Vec::new();
    for (name, c) in reg.counters.read().expect("registry poisoned").iter() {
        out.push(MetricSnapshot::Counter {
            name: name.clone(),
            value: c.get(),
        });
    }
    for (name, g) in reg.gauges.read().expect("registry poisoned").iter() {
        out.push(MetricSnapshot::Gauge {
            name: name.clone(),
            value: g.get(),
        });
    }
    for h in reg.histograms.read().expect("registry poisoned").values() {
        out.push(MetricSnapshot::Histogram(h.snapshot()));
    }
    for (name, t) in reg.timers.read().expect("registry poisoned").iter() {
        let (count, total_ns, max_ns) = t.get();
        out.push(MetricSnapshot::Timer {
            name: name.clone(),
            count,
            total_ns,
            max_ns,
        });
    }
    out
}

type SinkEntry = (u64, Arc<dyn Sink>);

fn sinks() -> &'static RwLock<Vec<SinkEntry>> {
    static SINKS: OnceLock<RwLock<Vec<SinkEntry>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

/// Registers an event sink; returns an id for [`remove_sink`].
pub fn add_sink(sink: Arc<dyn Sink>) -> u64 {
    let id = NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed);
    sinks()
        .write()
        .expect("sink list poisoned")
        .push((id, sink));
    id
}

/// Unregisters a sink (flushing it); returns whether it was present.
pub fn remove_sink(id: u64) -> bool {
    let removed = {
        let mut list = sinks().write().expect("sink list poisoned");
        list.iter()
            .position(|(sink_id, _)| *sink_id == id)
            .map(|idx| list.remove(idx).1)
    };
    match removed {
        Some(sink) => {
            sink.flush();
            true
        }
        None => false,
    }
}

/// Emits a structured event to every registered sink. No-op while
/// disabled. `kind` is the category (`"epoch"`, `"layer_snr"`, ...),
/// `name` the specific source, `fields` the payload.
pub fn emit(kind: &str, name: &str, fields: Vec<(String, Json)>) {
    if !enabled() {
        return;
    }
    let event = Event {
        kind: kind.to_string(),
        name: name.to_string(),
        fields,
        thread: current_thread_id(),
        elapsed_s: process_start().elapsed().as_secs_f64(),
    };
    for (_, sink) in sinks().read().expect("sink list poisoned").iter() {
        sink.emit(&event);
    }
}

fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 && v.abs() < 1e6 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

fn fmt_time_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "-".to_string()
    } else if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Renders a human-readable summary table of every registered metric.
pub fn report() -> String {
    let snaps = snapshot();
    if snaps.is_empty() {
        return "telemetry: no metrics registered\n".to_string();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>14}\n",
        "metric", "type", "count", "mean", "p50", "p95", "p99", "max", "total"
    ));
    out.push_str(&format!("{}\n", "-".repeat(150)));
    for snap in &snaps {
        let line = match snap {
            MetricSnapshot::Counter { name, value } => format!(
                "{name:<52} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>14}",
                "counter",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                fmt_num(*value as f64)
            ),
            MetricSnapshot::Gauge { name, value } => format!(
                "{name:<52} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>14}",
                "gauge",
                "-",
                "-",
                "-",
                "-",
                "-",
                "-",
                fmt_num(*value)
            ),
            MetricSnapshot::Histogram(h) => format!(
                "{:<52} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>14}",
                h.name,
                "histogram",
                h.count,
                fmt_num(h.mean()),
                fmt_num(h.p50()),
                fmt_num(h.p95()),
                fmt_num(h.p99()),
                fmt_num(h.max),
                fmt_num(h.sum)
            ),
            MetricSnapshot::Timer {
                name,
                count,
                total_ns,
                max_ns,
            } => {
                let mean_ns = if *count == 0 {
                    f64::NAN
                } else {
                    *total_ns as f64 / *count as f64
                };
                format!(
                    "{name:<52} {:>9} {count:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>14}",
                    "timer",
                    fmt_time_ns(mean_ns),
                    "-",
                    "-",
                    "-",
                    fmt_time_ns(*max_ns as f64),
                    fmt_time_ns(*total_ns as f64)
                )
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Serializes access to the process-global telemetry state (the
/// enabled flag, registry contents, sink list) for tests that toggle
/// it. Recovers from poisoning so one failed test doesn't cascade.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let a = counter("lib.shared");
        let b = counter("lib.shared");
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = histogram("lib.shared_hist", &[1.0, 2.0]);
        let h2 = histogram("lib.shared_hist", &[99.0]);
        assert!(Arc::ptr_eq(&h1, &h2), "first bounds win, same instance");
    }

    #[test]
    fn disabled_updates_are_noops() {
        let _guard = test_lock();
        set_enabled(false);
        let c = counter("lib.disabled_counter");
        let g = gauge("lib.disabled_gauge");
        let h = histogram("lib.disabled_hist", &[1.0]);
        let t = timer("lib.disabled_timer");
        let base = c.get();
        c.add(5);
        g.set(3.0);
        g.add(2.0);
        h.observe(0.5);
        t.record_ns(100);
        assert_eq!(c.get(), base);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(t.get().0, 0);

        // Events are dropped too, even with a sink registered.
        let mem = Arc::new(MemorySink::new());
        let id = add_sink(mem.clone());
        emit("kind", "lib.disabled_event", vec![]);
        remove_sink(id);
        assert!(mem.events_for_current_thread().is_empty());
    }

    #[test]
    fn concurrent_updates_from_scoped_threads() {
        let _guard = test_lock();
        set_enabled(true);
        let c = counter("lib.concurrent_counter");
        let h = histogram("lib.concurrent_hist", &linear_buckets(0.0, 1.0, 8));
        let g = gauge("lib.concurrent_gauge");
        let base_count = c.get();
        let base_hist = h.count();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1000;
        std::thread::scope(|scope| {
            for worker in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                let g = g.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.observe((worker % 8) as f64);
                        if i % 100 == 0 {
                            g.add(1.0);
                        }
                    }
                });
            }
        });
        assert_eq!(c.get() - base_count, THREADS * PER_THREAD);
        let snap = h.snapshot();
        assert_eq!(snap.count - base_hist, THREADS * PER_THREAD);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert_eq!(g.get(), (THREADS * (PER_THREAD / 100)) as f64);
        g.set(0.0);
        set_enabled(false);
    }

    #[test]
    fn histogram_bucketing_and_quantiles() {
        let _guard = test_lock();
        set_enabled(true);
        let h = histogram("lib.bucketing", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // Inclusive upper edges: 1.0 lands in the first bucket.
        assert_eq!(snap.buckets, vec![2, 1, 1, 1]);
        assert_eq!(snap.min, 0.5);
        assert_eq!(snap.max, 100.0);
        assert!((snap.sum - 106.0).abs() < 1e-12);
        assert_eq!(snap.quantile(0.5), 2.0);
        assert_eq!(snap.quantile(1.0), 100.0);
        set_enabled(false);
    }

    #[test]
    fn report_contains_all_kinds() {
        let _guard = test_lock();
        set_enabled(true);
        counter("lib.report_counter").add(7);
        gauge("lib.report_gauge").set(1.5);
        histogram("lib.report_hist", &[1.0]).observe(0.5);
        timer("lib.report_timer").record_ns(1_500_000);
        set_enabled(false);
        let text = report();
        for name in [
            "lib.report_counter",
            "lib.report_gauge",
            "lib.report_hist",
            "lib.report_timer",
        ] {
            assert!(text.contains(name), "report missing {name}:\n{text}");
        }
        assert!(text.contains("1.50 ms"), "timer not humanized:\n{text}");
    }

    #[test]
    fn timer_total_saturates_instead_of_wrapping() {
        let _guard = test_lock();
        set_enabled(true);
        let t = timer("lib.saturating_timer");
        t.reset();
        t.record_ns(u64::MAX - 10);
        t.record_ns(1_000);
        let (count, total_ns, max_ns) = t.get();
        assert_eq!(count, 2);
        assert_eq!(total_ns, u64::MAX, "total must pin at MAX, not wrap");
        assert_eq!(max_ns, u64::MAX - 10);
        t.reset();
        set_enabled(false);
    }

    #[test]
    fn report_includes_percentile_columns() {
        let _guard = test_lock();
        set_enabled(true);
        let h = histogram("lib.report_pcts", &[1.0, 2.0, 4.0, 8.0]);
        h.reset();
        for _ in 0..95 {
            h.observe(0.5);
        }
        for _ in 0..5 {
            h.observe(7.0);
        }
        set_enabled(false);
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 1.0);
        assert_eq!(snap.p95(), 1.0);
        assert_eq!(snap.p99(), 8.0);
        let text = report();
        assert!(text.contains("p50"), "missing p50 header:\n{text}");
        assert!(text.contains("p95") && text.contains("p99"));
        let json = MetricSnapshot::Histogram(snap).to_json();
        assert_eq!(json.get("p99").and_then(Json::as_f64), Some(8.0));
    }

    #[test]
    fn concurrent_emit_and_sink_registration() {
        let _guard = test_lock();
        set_enabled(true);
        // One sink stays registered for the whole test; other sinks
        // are added and removed concurrently with emitters. The stable
        // sink must observe every event, untorn.
        let stable = Arc::new(MemorySink::new());
        let stable_id = add_sink(stable.clone());
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        std::thread::scope(|scope| {
            for worker in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        emit(
                            "race",
                            "lib.sink_race",
                            vec![
                                ("worker".to_string(), Json::from(worker)),
                                ("i".to_string(), Json::from(i)),
                            ],
                        );
                    }
                });
            }
            // Churn the sink list while emitters run.
            scope.spawn(|| {
                for _ in 0..50 {
                    let extra = Arc::new(MemorySink::new());
                    let id = add_sink(extra);
                    std::thread::yield_now();
                    assert!(remove_sink(id));
                }
            });
        });
        remove_sink(stable_id);
        set_enabled(false);
        let events = stable.events();
        let race_events: Vec<_> = events.iter().filter(|e| e.kind == "race").collect();
        assert_eq!(
            race_events.len(),
            THREADS * PER_THREAD,
            "lost events under sink churn"
        );
        // Untorn: every event carries both fields, and each (worker, i)
        // pair appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for event in &race_events {
            let worker = event
                .field("worker")
                .and_then(Json::as_u64)
                .expect("worker");
            let i = event.field("i").and_then(Json::as_u64).expect("i");
            assert!(seen.insert((worker, i)), "duplicate event ({worker}, {i})");
        }
        assert_eq!(seen.len(), THREADS * PER_THREAD);
    }

    #[test]
    fn span_events_reach_sinks() {
        let _guard = test_lock();
        set_enabled(true);
        let mem = Arc::new(MemorySink::new());
        let id = add_sink(mem.clone());
        {
            let _outer = span("lib.span_outer");
            let _inner = span("lib.span_inner");
        }
        remove_sink(id);
        set_enabled(false);
        let events = mem.events_for_current_thread();
        let paths: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        // Inner drops first.
        assert_eq!(
            paths,
            vec!["lib.span_outer/lib.span_inner", "lib.span_outer"]
        );
        for event in &events {
            let seconds = event.field("seconds").and_then(Json::as_f64).unwrap();
            assert!(seconds >= 0.0);
        }
    }
}

//! Metric primitives: counters, gauges, histograms, and timers.
//!
//! All metrics are lock-free and safe to update from any thread. Every
//! update method first checks the global enabled flag, so a disabled
//! metric costs exactly one relaxed atomic load — cheap enough to leave
//! instrumentation in hot paths (per-MVM counters, solver inner loops)
//! unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

/// Monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(name: String) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins floating-point value.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    pub(crate) fn new(name: String) -> Self {
        Gauge {
            name,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` atomically (compare-and-swap loop).
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Atomically folds `v` into a min (or max) stored as f64 bits.
fn fold_extreme(bits: &AtomicU64, v: f64, want_min: bool) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let cur = f64::from_bits(current);
        let better = if cur.is_nan() {
            true
        } else if want_min {
            v < cur
        } else {
            v > cur
        };
        if !better {
            return;
        }
        match bits.compare_exchange_weak(current, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Fixed-bucket histogram over f64 observations.
///
/// `bounds` are inclusive upper bucket edges; one overflow bucket is
/// appended, so `buckets.len() == bounds.len() + 1`. Bounds are fixed
/// at creation: the first caller of [`crate::histogram`] for a given
/// name decides them.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(name: String, bounds: &[f64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            name,
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::NAN.to_bits()),
            max_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS-add into the f64 sum.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        fold_extreme(&self.min_bits, v, true);
        fold_extreme(&self.max_bits, v, false);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.clone(),
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<f64>,
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    /// NaN when no observations were recorded.
    pub min: f64,
    /// NaN when no observations were recorded.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation, NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile (0..=1) from the bucket edges: returns the
    /// upper bound of the bucket containing the q-th observation.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Median estimate (upper edge of the bucket holding the 50th
    /// percentile observation); NaN when empty.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate from the bucket edges; NaN when empty.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate from the bucket edges; NaN when empty.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Accumulated durations (for spans and explicit op timing).
#[derive(Debug)]
pub struct Timer {
    name: String,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Timer {
    pub(crate) fn new(name: String) -> Self {
        Timer {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one elapsed duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one elapsed duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulate: a very long run (or a clock glitch
        // feeding a huge duration) must pin the total at u64::MAX, not
        // wrap back to a small number.
        let _ = self
            .total_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |total| {
                Some(total.saturating_add(ns))
            });
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Times a closure (timed even when disabled; recording is gated).
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !crate::enabled() {
            return f();
        }
        let start = std::time::Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// (count, total ns, max ns).
    pub fn get(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of any metric, for reports and manifests.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    Counter {
        name: String,
        value: u64,
    },
    Gauge {
        name: String,
        value: f64,
    },
    Histogram(HistogramSnapshot),
    Timer {
        name: String,
        count: u64,
        total_ns: u64,
        max_ns: u64,
    },
}

impl MetricSnapshot {
    /// Metric name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. } => name,
            MetricSnapshot::Gauge { name, .. } => name,
            MetricSnapshot::Histogram(h) => &h.name,
            MetricSnapshot::Timer { name, .. } => name,
        }
    }

    /// JSON form used in run manifests.
    pub fn to_json(&self) -> Json {
        match self {
            MetricSnapshot::Counter { name, value } => Json::Obj(vec![
                ("type".into(), "metric".into()),
                ("kind".into(), "counter".into()),
                ("name".into(), name.as_str().into()),
                ("value".into(), (*value).into()),
            ]),
            MetricSnapshot::Gauge { name, value } => Json::Obj(vec![
                ("type".into(), "metric".into()),
                ("kind".into(), "gauge".into()),
                ("name".into(), name.as_str().into()),
                ("value".into(), (*value).into()),
            ]),
            MetricSnapshot::Histogram(h) => Json::Obj(vec![
                ("type".into(), "metric".into()),
                ("kind".into(), "histogram".into()),
                ("name".into(), h.name.as_str().into()),
                ("count".into(), h.count.into()),
                ("sum".into(), h.sum.into()),
                ("min".into(), h.min.into()),
                ("max".into(), h.max.into()),
                ("mean".into(), h.mean().into()),
                ("p50".into(), h.p50().into()),
                ("p95".into(), h.p95().into()),
                ("p99".into(), h.p99().into()),
                (
                    "bounds".into(),
                    Json::Arr(h.bounds.iter().map(|&b| Json::Num(b)).collect()),
                ),
                (
                    "buckets".into(),
                    Json::Arr(h.buckets.iter().map(|&n| Json::Num(n as f64)).collect()),
                ),
            ]),
            MetricSnapshot::Timer {
                name,
                count,
                total_ns,
                max_ns,
            } => Json::Obj(vec![
                ("type".into(), "metric".into()),
                ("kind".into(), "timer".into()),
                ("name".into(), name.as_str().into()),
                ("count".into(), (*count).into()),
                ("total_s".into(), (*total_ns as f64 * 1e-9).into()),
                ("max_s".into(), (*max_ns as f64 * 1e-9).into()),
            ]),
        }
    }
}

/// `count` bucket bounds spaced exponentially from `start` by `factor`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    let mut bounds = Vec::with_capacity(count);
    let mut edge = start;
    for _ in 0..count {
        bounds.push(edge);
        edge *= factor;
    }
    bounds
}

/// `count` bucket bounds spaced linearly from `start` by `step`.
pub fn linear_buckets(start: f64, step: f64, count: usize) -> Vec<f64> {
    (0..count).map(|i| start + step * i as f64).collect()
}

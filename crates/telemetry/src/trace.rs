//! Hierarchical tracing: timeline events exported as Chrome Trace
//! Event JSON (loadable in Perfetto or `chrome://tracing`).
//!
//! Metrics answer "how much"; the trace answers "when and under what".
//! While a trace is active, every [`crate::span`] (and the explicit
//! [`trace_scope`]/[`trace_instant`]/[`trace_counter`] calls in the
//! solver, functional simulator, and thread pool) records a timestamped
//! event into an in-memory buffer; [`finish_trace`] writes the buffer
//! as one `{"traceEvents": [...]}` JSON file.
//!
//! # Cost discipline
//!
//! Tracing is default-off and independent of the metrics enabled flag:
//! with no trace active every hook is a single relaxed atomic load.
//! Hot callers that would have to *build* attribute vectors gate on
//! [`trace_active`] first so the allocations only happen inside a
//! trace. The buffer is bounded ([`GENIEX_TRACE_CAP`][start_trace]);
//! past the cap events are dropped and counted rather than growing
//! without limit.
//!
//! # Well-formedness guarantee
//!
//! The writer validates the stream per thread: an `E` (end) with no
//! open `B` (begin) is discarded, and any `B` still open when the
//! trace finishes (a worker mid-task, a dropped guard) gets a
//! synthesized closing `E` — so every emitted `B` has a matching `E`
//! and the file is always valid JSON, even for truncated runs.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// Phase of one trace event, mirroring the Chrome Trace Event `ph`
/// field subset this exporter uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// `B`: a duration span opens on this thread.
    Begin,
    /// `E`: the innermost open span on this thread closes.
    End,
    /// `i`: a point-in-time marker (thread scoped).
    Instant,
    /// `C`: a counter sample (rendered as a track of values).
    Counter,
}

impl TracePhase {
    fn ph(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
            TracePhase::Counter => "C",
        }
    }
}

/// One buffered trace event.
#[derive(Debug, Clone)]
struct TraceEvent {
    phase: TracePhase,
    name: String,
    /// Nanoseconds since process start.
    ts_ns: u64,
    /// Small sequential per-thread track id (not the hashed sink id —
    /// Perfetto renders these as track labels).
    tid: u64,
    args: Vec<(String, Json)>,
}

/// Whether a trace is currently recording (one relaxed atomic load —
/// the hot-path guard, like [`crate::enabled`] for metrics).
#[inline]
pub fn trace_active() -> bool {
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);

struct TraceState {
    path: PathBuf,
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

fn trace_state() -> &'static Mutex<Option<TraceState>> {
    static STATE: OnceLock<Mutex<Option<TraceState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

/// Thread-name registry for the trace's metadata events. Registered
/// once per thread on its first traced event; survives across traces
/// (track ids are process-stable).
fn thread_names() -> &'static Mutex<Vec<(u64, String)>> {
    static NAMES: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TRACE_TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Small sequential id of the calling thread's trace track, assigning
/// (and registering the thread's name) on first use.
pub fn trace_tid() -> u64 {
    TRACE_TID.with(|cell| {
        let mut tid = cell.get();
        if tid == 0 {
            tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(tid);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_string);
            thread_names()
                .lock()
                .expect("thread-name registry poisoned")
                .push((tid, name));
        }
        tid
    })
}

/// Default event-buffer capacity; override with `GENIEX_TRACE_CAP`.
const DEFAULT_CAP: usize = 2_000_000;

/// Starts recording a trace that [`finish_trace`] will write to
/// `path`. The buffer holds at most `GENIEX_TRACE_CAP` events (default
/// two million); further events are dropped and counted.
///
/// # Errors
///
/// Returns [`io::ErrorKind::AlreadyExists`] if a trace is already
/// active (one trace per process at a time).
pub fn start_trace(path: impl Into<PathBuf>) -> io::Result<()> {
    let cap = std::env::var("GENIEX_TRACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CAP);
    let mut state = trace_state().lock().expect("trace state poisoned");
    if state.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "a trace is already active",
        ));
    }
    *state = Some(TraceState {
        path: path.into(),
        events: Vec::new(),
        cap,
        dropped: 0,
    });
    TRACE_ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

fn push(event: TraceEvent) {
    let mut state = trace_state().lock().expect("trace state poisoned");
    let Some(state) = state.as_mut() else {
        return;
    };
    if state.events.len() >= state.cap {
        state.dropped += 1;
        return;
    }
    state.events.push(event);
}

fn now_ns() -> u64 {
    crate::process_start()
        .elapsed()
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// Records a span-begin event on the calling thread's track. Prefer
/// [`trace_scope`] (RAII) or [`crate::span`]; this low-level form
/// exists for callers that manage the end themselves.
pub fn trace_begin(name: &str, args: Vec<(String, Json)>) {
    if !trace_active() {
        return;
    }
    push(TraceEvent {
        phase: TracePhase::Begin,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: trace_tid(),
        args,
    });
}

/// Records the matching span-end event for the innermost open begin on
/// this thread.
pub fn trace_end(name: &str, args: Vec<(String, Json)>) {
    if !trace_active() {
        return;
    }
    push(TraceEvent {
        phase: TracePhase::End,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: trace_tid(),
        args,
    });
}

/// Records a point-in-time marker (e.g. one Newton iteration's
/// residual, a work steal).
pub fn trace_instant(name: &str, args: Vec<(String, Json)>) {
    if !trace_active() {
        return;
    }
    push(TraceEvent {
        phase: TracePhase::Instant,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: trace_tid(),
        args,
    });
}

/// Records a counter sample; Perfetto renders the series as a value
/// track (used for the pool-utilization gauge).
pub fn trace_counter(name: &str, value: f64) {
    if !trace_active() {
        return;
    }
    push(TraceEvent {
        phase: TracePhase::Counter,
        name: name.to_string(),
        ts_ns: now_ns(),
        tid: trace_tid(),
        args: vec![("value".to_string(), Json::Num(value))],
    });
}

/// RAII duration span on the trace timeline only (no timer metric, no
/// span-stack path join — see [`crate::span`] for the full-fat
/// version). Inert when no trace is active. Callers that build
/// non-trivial attribute vectors should gate on [`trace_active`] so
/// the allocation is skipped outside a trace.
#[derive(Debug)]
#[must_use = "the span closes when this guard drops"]
pub struct TraceScope {
    name: Option<String>,
}

/// Opens a [`TraceScope`]; the matching end event is recorded when the
/// returned guard drops.
pub fn trace_scope(name: &str, args: Vec<(String, Json)>) -> TraceScope {
    if !trace_active() {
        return TraceScope { name: None };
    }
    trace_begin(name, args);
    TraceScope {
        name: Some(name.to_string()),
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            trace_end(&name, Vec::new());
        }
    }
}

fn write_event(out: &mut impl Write, e: &TraceEvent, first: &mut bool) -> io::Result<()> {
    let mut pairs = vec![
        ("ph".to_string(), Json::Str(e.phase.ph().to_string())),
        ("pid".to_string(), Json::Num(1.0)),
        ("tid".to_string(), Json::Num(e.tid as f64)),
        ("ts".to_string(), Json::Num(e.ts_ns as f64 / 1e3)),
        ("name".to_string(), Json::Str(e.name.clone())),
    ];
    if e.phase == TracePhase::Instant {
        pairs.push(("s".to_string(), Json::Str("t".to_string())));
    }
    if !e.args.is_empty() {
        pairs.push(("args".to_string(), Json::Obj(e.args.clone())));
    }
    let sep = if *first { "\n " } else { ",\n " };
    *first = false;
    write!(out, "{sep}{}", Json::Obj(pairs))
}

/// Stops recording, validates the event stream (see the module docs),
/// writes the Chrome Trace Event JSON file, and returns its path —
/// `Ok(None)` when no trace was active.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn finish_trace() -> io::Result<Option<PathBuf>> {
    let state = {
        let mut state = trace_state().lock().expect("trace state poisoned");
        TRACE_ACTIVE.store(false, Ordering::Relaxed);
        state.take()
    };
    let Some(state) = state else {
        return Ok(None);
    };
    if let Some(parent) = state.path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = BufWriter::new(File::create(&state.path)?);
    write!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;

    // Thread-name metadata events (only for tracks that appear).
    let mut tids: Vec<u64> = state.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for (tid, name) in thread_names()
        .lock()
        .expect("thread-name registry poisoned")
        .iter()
    {
        if tids.binary_search(tid).is_err() {
            continue;
        }
        let meta = Json::Obj(vec![
            ("ph".to_string(), Json::Str("M".to_string())),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(*tid as f64)),
            ("name".to_string(), Json::Str("thread_name".to_string())),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::Str(name.clone()))]),
            ),
        ]);
        let sep = if first { "\n " } else { ",\n " };
        first = false;
        write!(out, "{sep}{meta}")?;
    }

    // Per-thread begin/end balancing: drop orphan ends, remember open
    // begins so they can be closed synthetically at the final
    // timestamp.
    let mut open: Vec<(u64, Vec<&TraceEvent>)> = Vec::new();
    let stack_of = |open: &mut Vec<(u64, Vec<&TraceEvent>)>, tid: u64| -> usize {
        match open.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                open.push((tid, Vec::new()));
                open.len() - 1
            }
        }
    };
    let mut last_ts = 0u64;
    for e in &state.events {
        last_ts = last_ts.max(e.ts_ns);
        match e.phase {
            TracePhase::Begin => {
                let i = stack_of(&mut open, e.tid);
                open[i].1.push(e);
            }
            TracePhase::End => {
                let i = stack_of(&mut open, e.tid);
                // Only an end naming the innermost open begin closes
                // it; anything else (orphan end, end whose begin was
                // dropped at the cap) is discarded.
                match open[i].1.last() {
                    Some(begin) if begin.name == e.name => {
                        open[i].1.pop();
                    }
                    _ => continue,
                }
            }
            TracePhase::Instant | TracePhase::Counter => {}
        }
        write_event(&mut out, e, &mut first)?;
    }
    for (tid, stack) in &open {
        for begin in stack.iter().rev() {
            let close = TraceEvent {
                phase: TracePhase::End,
                name: begin.name.clone(),
                ts_ns: last_ts,
                tid: *tid,
                args: vec![("synthesized".to_string(), Json::Bool(true))],
            };
            write_event(&mut out, &close, &mut first)?;
        }
    }
    writeln!(out, "\n]}}")?;
    out.flush()?;
    if state.dropped > 0 {
        eprintln!(
            "telemetry: trace buffer cap reached, dropped {} events ({})",
            state.dropped,
            state.path.display()
        );
    }
    Ok(Some(state.path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn temp_trace_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "geniex-trace-test-{}-{}-{tag}.trace.json",
            std::process::id(),
            crate::current_thread_id()
        ))
    }

    /// Walks a parsed trace and asserts per-tid B/E balance. Returns
    /// event count by phase.
    fn check_balanced(trace: &Json) -> (usize, usize) {
        let events = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
        let (mut begins, mut ends) = (0, 0);
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
            let name = e.get("name").and_then(Json::as_str).expect("name");
            let idx = match stacks.iter().position(|(t, _)| *t == tid) {
                Some(i) => i,
                None => {
                    stacks.push((tid, Vec::new()));
                    stacks.len() - 1
                }
            };
            match ph {
                "B" => {
                    begins += 1;
                    stacks[idx].1.push(name.to_string());
                }
                "E" => {
                    ends += 1;
                    let open = stacks[idx].1.pop().expect("E without open B");
                    assert_eq!(open, name, "E closes the innermost B");
                }
                _ => {}
            }
        }
        for (tid, stack) in &stacks {
            assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
        }
        (begins, ends)
    }

    #[test]
    fn trace_file_is_valid_and_balanced() {
        let _guard = crate::test_lock();
        let path = temp_trace_path("balanced");
        start_trace(&path).expect("start");
        {
            let _outer = trace_scope("outer", vec![("k".into(), Json::Num(1.0))]);
            let _inner = trace_scope("inner", Vec::new());
            trace_instant("tick", vec![("i".into(), Json::Num(0.0))]);
            trace_counter("active", 2.0);
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = trace_scope("worker-span", Vec::new());
                trace_instant("worker-tick", Vec::new());
            });
        });
        let written = finish_trace().expect("finish").expect("path");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).expect("read");
        let trace = parse(&text).expect("valid JSON");
        let (begins, ends) = check_balanced(&trace);
        assert_eq!(begins, 3);
        assert_eq!(ends, 3);
        // Two threads traced; both have name metadata.
        let metas = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert!(metas >= 2, "expected thread_name metadata, got {metas}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unmatched_begin_gets_synthesized_end() {
        let _guard = crate::test_lock();
        let path = temp_trace_path("synth");
        start_trace(&path).expect("start");
        trace_begin("left-open", Vec::new());
        trace_end("left-open", Vec::new());
        trace_begin("never-closed", Vec::new());
        // Orphan end on a fresh name must be discarded, not break
        // the stream.
        trace_end("orphan", Vec::new());
        finish_trace().expect("finish");
        let text = std::fs::read_to_string(&path).expect("read");
        let trace = parse(&text).expect("valid JSON");
        let (begins, ends) = check_balanced(&trace);
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        assert!(text.contains("synthesized"));
        assert!(!text.contains("orphan"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inactive_trace_is_inert() {
        let _guard = crate::test_lock();
        assert!(!trace_active());
        trace_begin("noop", Vec::new());
        trace_instant("noop", Vec::new());
        trace_counter("noop", 1.0);
        let _scope = trace_scope("noop", Vec::new());
        assert!(finish_trace().expect("finish").is_none());
    }

    #[test]
    fn second_start_is_rejected_and_cap_drops() {
        let _guard = crate::test_lock();
        let path = temp_trace_path("cap");
        std::env::set_var("GENIEX_TRACE_CAP", "4");
        start_trace(&path).expect("start");
        std::env::remove_var("GENIEX_TRACE_CAP");
        assert!(start_trace(temp_trace_path("other")).is_err());
        for i in 0..8 {
            trace_instant("tick", vec![("i".into(), Json::Num(i as f64))]);
        }
        finish_trace().expect("finish");
        let text = std::fs::read_to_string(&path).expect("read");
        let trace = parse(&text).expect("valid JSON");
        let ticks = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("tick"))
            .count();
        assert_eq!(ticks, 4, "cap must bound the buffer");
        std::fs::remove_file(&path).ok();
    }
}

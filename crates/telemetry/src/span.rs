//! RAII scoped timers ("spans") with nesting, identity, and
//! attributes.
//!
//! A span measures the wall time between its creation and drop. Spans
//! nest per thread: a span opened while another is active records
//! under the joined path (`outer/inner`), so the summary table shows
//! where time went hierarchically. Each span carries a process-unique
//! id and its parent's id (0 for roots), and can accumulate structured
//! attributes via [`Span::attr`]. Each closing span feeds a timer
//! metric named `span.<path>`, emits a `span` event carrying
//! `seconds`/`id`/`parent` plus the attributes, and — when a trace is
//! recording (see [`crate::trace`]) — contributes a begin/end pair to
//! the Chrome Trace timeline.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::Json;
use crate::trace;

thread_local! {
    /// (leaf name, span id) per open span on this thread.
    static SPAN_STACK: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide span id source; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Live span handle; records on drop. Create via [`crate::span`].
#[derive(Debug)]
pub struct Span {
    /// Full nesting path including this span's own name. `None` when
    /// both telemetry and tracing were off at creation (drop is then a
    /// no-op).
    path: Option<String>,
    /// Leaf name (trace events use this; Perfetto shows nesting
    /// natively, so the joined path would be redundant there).
    name: String,
    /// Process-unique id.
    id: u64,
    /// Id of the enclosing span on this thread, 0 for a root span.
    parent: u64,
    start: Instant,
    attrs: Vec<(String, Json)>,
}

pub(crate) fn begin(name: &str) -> Span {
    if !crate::enabled() && !trace::trace_active() {
        return Span {
            path: None,
            name: String::new(),
            id: 0,
            parent: 0,
            start: Instant::now(),
            attrs: Vec::new(),
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (path, parent) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().map_or(0, |(_, id)| *id);
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            let mut path = String::new();
            for (part, _) in stack.iter() {
                path.push_str(part);
                path.push('/');
            }
            path.push_str(name);
            path
        };
        stack.push((name.to_string(), id));
        (path, parent)
    });
    trace::trace_begin(
        name,
        vec![
            ("id".to_string(), Json::from(id)),
            ("parent".to_string(), Json::from(parent)),
        ],
    );
    Span {
        path: Some(path),
        name: name.to_string(),
        id,
        parent,
        start: Instant::now(),
        attrs: Vec::new(),
    }
}

impl Span {
    /// Full nesting path, or `None` if telemetry and tracing were both
    /// disabled at creation.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// Process-unique id (0 if the span is inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Id of the enclosing span, 0 for roots (and inert spans).
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Attaches a structured attribute, reported on the closing `span`
    /// event and the trace end event. No-op on inert spans.
    pub fn attr(&mut self, key: &str, value: impl Into<Json>) {
        if self.path.is_some() {
            self.attrs.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        // Monotonic clocks can still observe now < start across some
        // platforms' cores; saturate rather than panic or wrap.
        let elapsed = Instant::now().saturating_duration_since(self.start);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        // Record even if telemetry was disabled mid-span: the stack
        // must stay balanced, and a final data point is harmless. The
        // timer itself gates on the enabled flag.
        crate::timer(&format!("span.{path}")).record(elapsed);
        let mut fields = vec![
            ("seconds".to_string(), Json::Num(elapsed.as_secs_f64())),
            ("id".to_string(), Json::from(self.id)),
            ("parent".to_string(), Json::from(self.parent)),
        ];
        fields.extend(self.attrs.iter().cloned());
        crate::emit("span", &path, fields);
        trace::trace_end(&self.name, std::mem::take(&mut self.attrs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_has_no_path() {
        // Tests in this crate serialize global-state access through
        // `crate::test_lock`.
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        let mut span = begin("should-not-record");
        assert!(span.path().is_none());
        assert_eq!(span.id(), 0);
        span.attr("ignored", 1u64);
    }

    #[test]
    fn nested_paths_join_and_parents_link() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        {
            let outer = begin("outer");
            assert_eq!(outer.path(), Some("outer"));
            assert_eq!(outer.parent(), 0);
            {
                let inner = begin("inner");
                assert_eq!(inner.path(), Some("outer/inner"));
                assert_eq!(inner.parent(), outer.id());
            }
            let sibling = begin("sibling");
            assert_eq!(sibling.path(), Some("outer/sibling"));
            assert_eq!(sibling.parent(), outer.id());
            assert_ne!(sibling.id(), outer.id());
        }
        // Stack fully unwound: a fresh span is top-level again.
        let fresh = begin("fresh");
        assert_eq!(fresh.path(), Some("fresh"));
        drop(fresh);
        crate::set_enabled(false);
    }

    #[test]
    fn zero_length_and_same_name_nesting() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let mem = std::sync::Arc::new(crate::MemorySink::new());
        let sink_id = crate::add_sink(mem.clone());
        {
            let outer = begin("a");
            let inner = begin("a");
            assert_eq!(inner.path(), Some("a/a"));
            assert_eq!(inner.parent(), outer.id());
            // Zero-length: drop immediately; duration must record as
            // a non-negative value, never wrap or panic.
            drop(inner);
            drop(outer);
        }
        crate::remove_sink(sink_id);
        crate::set_enabled(false);
        let events = mem.events_for_current_thread();
        let paths: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(paths, vec!["a/a", "a"]);
        for event in &events {
            let seconds = event.field("seconds").and_then(Json::as_f64).unwrap();
            assert!(seconds >= 0.0, "negative span duration {seconds}");
            assert!(event.field("id").and_then(Json::as_u64).unwrap() > 0);
        }
        let (inner_count, ..) = crate::timer("span.a/a").get();
        assert!(inner_count >= 1, "same-name nested timer must exist");
    }

    #[test]
    fn attrs_flow_to_span_event() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let mem = std::sync::Arc::new(crate::MemorySink::new());
        let sink_id = crate::add_sink(mem.clone());
        {
            let mut span = begin("attributed");
            span.attr("epoch", 3u64);
            span.attr("loss", 0.25);
        }
        crate::remove_sink(sink_id);
        crate::set_enabled(false);
        let events = mem.events_for_current_thread();
        let event = events
            .iter()
            .find(|e| e.name == "attributed")
            .expect("span event");
        assert_eq!(event.field("epoch").and_then(Json::as_u64), Some(3));
        assert_eq!(event.field("loss").and_then(Json::as_f64), Some(0.25));
    }
}

//! RAII scoped timers ("spans") with nesting.
//!
//! A span measures the wall time between its creation and drop. Spans
//! nest per thread: a span opened while another is active records
//! under the joined path (`outer/inner`), so the summary table shows
//! where time went hierarchically. Each closing span feeds a timer
//! metric named `span.<path>` and emits a `span` event.

use std::cell::RefCell;
use std::time::Instant;

use crate::json::Json;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Live span handle; records on drop. Create via [`crate::span`].
#[derive(Debug)]
pub struct Span {
    /// Full nesting path including this span's own name. `None` when
    /// telemetry was disabled at creation (drop is then a no-op).
    path: Option<String>,
    start: Instant,
}

pub(crate) fn begin(name: &str) -> Span {
    if !crate::enabled() {
        return Span {
            path: None,
            start: Instant::now(),
        };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", stack.join("/"), name)
        };
        stack.push(name.to_string());
        path
    });
    Span {
        path: Some(path),
        start: Instant::now(),
    }
}

impl Span {
    /// Full nesting path, or `None` if telemetry was disabled at
    /// creation.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        // Record even if telemetry was disabled mid-span: the stack
        // must stay balanced, and a final data point is harmless. The
        // timer itself gates on the enabled flag.
        crate::timer(&format!("span.{path}")).record(elapsed);
        crate::emit(
            "span",
            &path,
            vec![("seconds".to_string(), Json::Num(elapsed.as_secs_f64()))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_has_no_path() {
        // Tests in this crate serialize global-state access through
        // `crate::test_lock`.
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        let span = begin("should-not-record");
        assert!(span.path().is_none());
    }

    #[test]
    fn nested_paths_join() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        {
            let outer = begin("outer");
            assert_eq!(outer.path(), Some("outer"));
            {
                let inner = begin("inner");
                assert_eq!(inner.path(), Some("outer/inner"));
            }
            let sibling = begin("sibling");
            assert_eq!(sibling.path(), Some("outer/sibling"));
        }
        // Stack fully unwound: a fresh span is top-level again.
        let fresh = begin("fresh");
        assert_eq!(fresh.path(), Some("fresh"));
        drop(fresh);
        crate::set_enabled(false);
    }
}

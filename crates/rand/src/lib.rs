//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree
//! package provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng`], the
//! [`Rng`] extension methods `gen`/`gen_range`/`gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic for a given
//! seed but do **not** bit-match upstream `rand`; all in-repo tests and
//! experiments treat the generator as an opaque seeded source.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a bounded interval. The single
/// generic [`SampleRange`] impl below is keyed on this trait so that
/// `gen_range(0.0..1.0)` infers `f64` via normal float-literal
/// fallback, matching upstream `rand`'s inference behavior.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`[low, high]` when
    /// `inclusive`). Panics on an empty range.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                let span =
                    (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let r = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                let u = <$t as StandardSample>::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_uniform(rng, low, high, true)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution (uniform `[0, 1)` for
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** core seeded via
    /// SplitMix64). Statistically solid for simulation workloads; not
    /// cryptographic, exactly like upstream `StdRng`'s contract.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with the `small_rng` feature.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f32 = rng.gen_range(0.25f32..=0.5);
            assert!((0.25..=0.5).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 4];
        for _ in 0..200 {
            seen_inc[(rng.gen_range(-3i32..=0) + 3) as usize] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..32).collect::<Vec<_>>(),
            "32! leaves this astronomically unlikely"
        );
    }

    #[test]
    fn choose_and_gen_bool() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

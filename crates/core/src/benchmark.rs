//! The Fig. 5 benchmarking protocol: NF RMSE of each model against the
//! circuit ground truth on a held-out validation set.

use crate::dataset::live_current_floor;
use crate::models::{CrossbarModel, GeniexModel, LinearAnalyticalModel, TrueCircuitModel};
use crate::surrogate::Geniex;
use crate::GeniexError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar::nf::nf_rmse;
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarParams};

/// RMSE of model-predicted NF against the circuit reference, per model.
#[derive(Debug, Clone, PartialEq)]
pub struct RmseComparison {
    /// Supply voltage the comparison ran at.
    pub v_supply: f64,
    /// RMSE of the analytical (linear) model's NF.
    pub analytical_rmse: f64,
    /// RMSE of the GENIEx surrogate's NF.
    pub geniex_rmse: f64,
    /// Number of NF samples the RMSEs were computed over.
    pub samples: usize,
}

impl RmseComparison {
    /// Ratio `analytical / geniex` — the paper headlines 7× at 0.25 V
    /// and 12.8× at 0.5 V.
    pub fn improvement_factor(&self) -> f64 {
        if self.geniex_rmse == 0.0 {
            f64::INFINITY
        } else {
            self.analytical_rmse / self.geniex_rmse
        }
    }
}

/// Configuration for [`compare_models`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkConfig {
    /// Number of validation operating points.
    pub stimuli: usize,
    /// RNG seed for stimulus generation.
    pub seed: u64,
    /// Number of quantized DAC input levels.
    pub dac_levels: usize,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            stimuli: 50,
            seed: 0xF165,
            dac_levels: 16,
        }
    }
}

/// Runs the Fig. 5 protocol: random held-out stimuli are evaluated on
/// the circuit (reference), the analytical baseline, and the trained
/// surrogate; NF values are compared by RMSE.
///
/// # Errors
///
/// * [`GeniexError::InvalidConfig`] if `stimuli == 0`.
/// * [`GeniexError::NotTrained`] for untrained surrogates.
/// * Propagates circuit and model failures.
pub fn compare_models(
    params: &CrossbarParams,
    surrogate: &Geniex,
    config: &BenchmarkConfig,
) -> Result<RmseComparison, GeniexError> {
    if config.stimuli == 0 {
        return Err(GeniexError::InvalidConfig("stimuli must be > 0".into()));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nf_reference = Vec::new();
    let mut nf_analytical = Vec::new();
    let mut nf_geniex = Vec::new();

    for _ in 0..config.stimuli {
        let v_sparsity = rng.gen_range(0.0..0.9);
        let g_sparsity = rng.gen_range(0.0..0.9);
        let v: Vec<f64> = (0..params.rows)
            .map(|_| {
                if rng.gen::<f64>() < v_sparsity {
                    0.0
                } else {
                    params.v_supply * rng.gen_range(1..=config.dac_levels) as f64
                        / config.dac_levels as f64
                }
            })
            .collect();
        let g = ConductanceMatrix::random_sparse(params, g_sparsity, &mut rng);

        let reference = TrueCircuitModel::new(params, &g)?.currents(&v)?;
        let analytical = LinearAnalyticalModel::new(params, &g)?.currents(&v)?;
        let geniex = GeniexModel::new(surrogate, &g)?.currents(&v)?;
        let ideal = ideal_mvm(&v, &g)?;

        // Keep the three NF vectors aligned: only columns carrying a
        // meaningful ideal current contribute (NF on near-dead columns
        // is numerically wild and physically irrelevant).
        let floor = live_current_floor(params);
        let mask: Vec<bool> = ideal.iter().map(|id| id.abs() > floor).collect();
        let filter = |currents: &[f64]| -> Vec<f64> {
            ideal
                .iter()
                .zip(currents)
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|((id, ni), _)| (id - ni) / id)
                .collect()
        };
        nf_reference.extend(filter(&reference));
        nf_analytical.extend(filter(&analytical));
        nf_geniex.extend(filter(&geniex));
    }

    Ok(RmseComparison {
        v_supply: params.v_supply,
        analytical_rmse: nf_rmse(&nf_reference, &nf_analytical),
        geniex_rmse: nf_rmse(&nf_reference, &nf_geniex),
        samples: nf_reference.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetConfig};
    use crate::surrogate::TrainConfig;

    #[test]
    fn geniex_beats_analytical_on_small_crossbar() {
        // The headline claim at miniature scale: after training, the
        // surrogate's NF RMSE must be below the analytical model's.
        // Generalization needs data volume more than capacity or
        // optimization budget here (the paper samples the (V, G) space
        // "exhaustively"): 2k samples is the floor at which the
        // surrogate beats the analytical baseline with margin.
        let params = CrossbarParams::builder(6, 6).build().unwrap();
        let data = generate(
            &params,
            &DatasetConfig {
                samples: 2000,
                seed: 33,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let mut surrogate = Geniex::new(&params, 128, 3).unwrap();
        surrogate
            .train(
                &data,
                &TrainConfig {
                    epochs: 150,
                    batch_size: 32,
                    learning_rate: 1e-3,
                    seed: 4,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        let cmp = compare_models(
            &params,
            &surrogate,
            &BenchmarkConfig {
                stimuli: 20,
                seed: 99,
                dac_levels: 16,
            },
        )
        .unwrap();
        assert!(cmp.samples > 0);
        assert!(
            cmp.geniex_rmse < cmp.analytical_rmse,
            "geniex {} should beat analytical {}",
            cmp.geniex_rmse,
            cmp.analytical_rmse
        );
        assert!(cmp.improvement_factor() > 1.0);
    }

    #[test]
    fn config_validation() {
        let params = CrossbarParams::builder(4, 4).build().unwrap();
        let surrogate = Geniex::new(&params, 8, 0).unwrap();
        assert!(compare_models(
            &params,
            &surrogate,
            &BenchmarkConfig {
                stimuli: 0,
                ..BenchmarkConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn untrained_surrogate_rejected() {
        let params = CrossbarParams::builder(4, 4).build().unwrap();
        let surrogate = Geniex::new(&params, 8, 0).unwrap();
        assert!(matches!(
            compare_models(&params, &surrogate, &BenchmarkConfig::default()),
            Err(GeniexError::NotTrained)
        ));
    }

    #[test]
    fn improvement_factor_edge_cases() {
        let cmp = RmseComparison {
            v_supply: 0.25,
            analytical_rmse: 1.0,
            geniex_rmse: 0.0,
            samples: 10,
        };
        assert!(cmp.improvement_factor().is_infinite());
    }
}

//! A common interface over the four ways to evaluate a crossbar MVM.
//!
//! The functional simulator and the benchmark harness both need to swap
//! between: ideal arithmetic, the linear analytical baseline, the
//! GENIEx surrogate, and the full circuit solve. [`CrossbarModel`]
//! makes them interchangeable.

use crate::fast::GeniexTile;
use crate::surrogate::Geniex;
use crate::GeniexError;
use xbar::{ideal_mvm, AnalyticalModel, ConductanceMatrix, CrossbarCircuit, CrossbarParams};

/// A model of one programmed crossbar: maps input voltages (volts) to
/// sensed bit-line currents (amperes).
pub trait CrossbarModel {
    /// Predicted output currents for input voltages `v`.
    ///
    /// # Errors
    ///
    /// Implementations return [`GeniexError::Shape`] on length
    /// mismatches and propagate solver failures.
    fn currents(&self, v: &[f64]) -> Result<Vec<f64>, GeniexError>;

    /// Input dimension (word lines).
    fn rows(&self) -> usize;

    /// Output dimension (bit lines).
    fn cols(&self) -> usize;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Ideal crossbar: `I_j = Σ_i V_i G_ij`, no non-idealities.
#[derive(Debug, Clone)]
pub struct IdealModel {
    g: ConductanceMatrix,
}

impl IdealModel {
    /// Wraps a programmed conductance state.
    pub fn new(g: ConductanceMatrix) -> Self {
        IdealModel { g }
    }
}

impl CrossbarModel for IdealModel {
    fn currents(&self, v: &[f64]) -> Result<Vec<f64>, GeniexError> {
        Ok(ideal_mvm(v, &self.g)?)
    }

    fn rows(&self) -> usize {
        self.g.rows()
    }

    fn cols(&self) -> usize {
        self.g.cols()
    }

    fn name(&self) -> &'static str {
        "ideal"
    }
}

/// The linear analytical baseline (parasitics only) behind the common
/// interface.
#[derive(Debug, Clone)]
pub struct LinearAnalyticalModel {
    inner: AnalyticalModel,
}

impl LinearAnalyticalModel {
    /// Builds the analytical model for one programmed crossbar.
    ///
    /// # Errors
    ///
    /// Propagates construction failures from
    /// [`xbar::AnalyticalModel::new`].
    pub fn new(params: &CrossbarParams, g: &ConductanceMatrix) -> Result<Self, GeniexError> {
        Ok(LinearAnalyticalModel {
            inner: AnalyticalModel::new(params, g)?,
        })
    }
}

impl CrossbarModel for LinearAnalyticalModel {
    fn currents(&self, v: &[f64]) -> Result<Vec<f64>, GeniexError> {
        Ok(self.inner.mvm(v)?)
    }

    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn name(&self) -> &'static str {
        "analytical"
    }
}

/// The GENIEx surrogate specialized to one programmed crossbar (fast
/// forward path) with the ideal currents computed locally.
#[derive(Debug, Clone)]
pub struct GeniexModel {
    tile: GeniexTile,
    g: ConductanceMatrix,
}

impl GeniexModel {
    /// Binds a trained surrogate to a programmed conductance state.
    ///
    /// # Errors
    ///
    /// * [`GeniexError::NotTrained`] for untrained surrogates.
    /// * [`GeniexError::Shape`] on geometry mismatch.
    pub fn new(surrogate: &Geniex, g: &ConductanceMatrix) -> Result<Self, GeniexError> {
        let g_levels: Vec<f32> = g
            .to_levels(surrogate.params())
            .into_iter()
            .map(|x| x as f32)
            .collect();
        Ok(GeniexModel {
            tile: GeniexTile::new(surrogate, &g_levels)?,
            g: g.clone(),
        })
    }
}

impl CrossbarModel for GeniexModel {
    fn currents(&self, v: &[f64]) -> Result<Vec<f64>, GeniexError> {
        let f_r = self.tile.f_r(v)?;
        let ideal = ideal_mvm(v, &self.g)?;
        Ok(ideal
            .iter()
            .zip(&f_r)
            .map(|(&id, &fr)| if id == 0.0 { 0.0 } else { id / fr as f64 })
            .collect())
    }

    fn rows(&self) -> usize {
        self.g.rows()
    }

    fn cols(&self) -> usize {
        self.g.cols()
    }

    fn name(&self) -> &'static str {
        "geniex"
    }
}

/// Ground truth: the full nonlinear circuit solve.
#[derive(Debug, Clone)]
pub struct TrueCircuitModel {
    circuit: CrossbarCircuit,
}

impl TrueCircuitModel {
    /// Programs a circuit for direct solving.
    ///
    /// # Errors
    ///
    /// Propagates construction failures from
    /// [`xbar::CrossbarCircuit::new`].
    pub fn new(params: &CrossbarParams, g: &ConductanceMatrix) -> Result<Self, GeniexError> {
        Ok(TrueCircuitModel {
            circuit: CrossbarCircuit::new(params, g)?,
        })
    }
}

impl CrossbarModel for TrueCircuitModel {
    fn currents(&self, v: &[f64]) -> Result<Vec<f64>, GeniexError> {
        Ok(self.circuit.solve(v)?.currents)
    }

    fn rows(&self) -> usize {
        self.circuit.params().rows
    }

    fn cols(&self) -> usize {
        self.circuit.params().cols
    }

    fn name(&self) -> &'static str {
        "circuit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetConfig};
    use crate::surrogate::TrainConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(4, 4).build().unwrap()
    }

    fn programmed() -> ConductanceMatrix {
        let mut rng = StdRng::seed_from_u64(19);
        ConductanceMatrix::random_sparse(&params(), 0.3, &mut rng)
    }

    #[test]
    fn all_models_agree_on_zero_input() {
        let p = params();
        let g = programmed();
        let data = generate(
            &p,
            &DatasetConfig {
                samples: 30,
                seed: 1,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let mut s = Geniex::new(&p, 16, 0).unwrap();
        s.train(
            &data,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        )
        .unwrap();

        let models: Vec<Box<dyn CrossbarModel>> = vec![
            Box::new(IdealModel::new(g.clone())),
            Box::new(LinearAnalyticalModel::new(&p, &g).unwrap()),
            Box::new(GeniexModel::new(&s, &g).unwrap()),
            Box::new(TrueCircuitModel::new(&p, &g).unwrap()),
        ];
        for m in &models {
            let out = m.currents(&[0.0; 4]).unwrap();
            assert_eq!(out.len(), 4, "{}", m.name());
            assert!(
                out.iter().all(|&i| i.abs() < 1e-12),
                "{} nonzero at zero input",
                m.name()
            );
            assert_eq!(m.rows(), 4);
            assert_eq!(m.cols(), 4);
        }
    }

    #[test]
    fn model_ordering_reflects_size_and_voltage() {
        // The device non-linearity always boosts the circuit above the
        // linear analytical prediction (the paper's central claim: the
        // analytical model overestimates degradation). Whether the
        // circuit also beats the *ideal* MVM depends on the design
        // point: small crossbars at any voltage are boost-dominated
        // (NF < 0, the Fig. 9 anomaly regime); larger crossbars at
        // 0.25 V are IR-drop-dominated (NF > 0, Fig. 2's regime).
        for (n, v_supply, boost_beats_ir) in
            [(4usize, 0.25, true), (4, 0.5, true), (16, 0.25, false)]
        {
            let p = CrossbarParams::builder(n, n)
                .v_supply(v_supply)
                .build()
                .unwrap();
            let g = ConductanceMatrix::uniform(n, n, p.g_on());
            let v = vec![p.v_supply; n];
            let ideal = IdealModel::new(g.clone()).currents(&v).unwrap();
            let circuit = TrueCircuitModel::new(&p, &g).unwrap().currents(&v).unwrap();
            let analytical = LinearAnalyticalModel::new(&p, &g)
                .unwrap()
                .currents(&v)
                .unwrap();
            for j in 0..n {
                // Parasitics always pull the linear model below ideal,
                // and the sinh boost always lifts the circuit above it.
                assert!(analytical[j] < ideal[j], "n={n} v={v_supply}");
                assert!(circuit[j] > analytical[j], "n={n} v={v_supply}");
                if boost_beats_ir {
                    assert!(circuit[j] > ideal[j], "boost regime n={n} v={v_supply}");
                } else {
                    assert!(circuit[j] < ideal[j], "ir-drop regime n={n} v={v_supply}");
                }
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let p = params();
        let g = programmed();
        let a = IdealModel::new(g.clone());
        let b = TrueCircuitModel::new(&p, &g).unwrap();
        assert_ne!(a.name(), b.name());
    }
}

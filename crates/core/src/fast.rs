//! The fast-forward path: a surrogate specialized to one programmed tile.
//!
//! The surrogate input is `concat(V, flatten(G))`, but `G` is fixed the
//! moment a tile is programmed. Splitting the first-layer weights into
//! a `V` block and a `G` block lets us precompute the hidden
//! pre-activation contribution of `G` once:
//!
//! ```text
//! h = ReLU(W_v · v + (W_g · g + b1))
//!              ^^^^    ^^^^^^^^^^^^ precomputed per tile
//! ```
//!
//! after which every MVM costs two small GEMVs — this is what makes it
//! feasible to run the surrogate inside every (tile, slice, stream)
//! step of the functional simulator.

use crate::surrogate::{Geniex, F_R_CLAMP};
use crate::GeniexError;
use xbar::CrossbarParams;

/// A GENIEx surrogate bound to one programmed conductance pattern.
#[derive(Debug, Clone)]
pub struct GeniexTile {
    rows: usize,
    cols: usize,
    hidden: usize,
    /// `W_v`: hidden x rows (first-layer weights for the V block).
    w_v: Vec<f32>,
    /// Precomputed `W_g · g + b1`: hidden.
    h_g: Vec<f32>,
    /// Output layer: cols x hidden.
    w2: Vec<f32>,
    /// Output bias: cols.
    b2: Vec<f32>,
    /// Label denormalization.
    norm_min: f32,
    norm_span: f32,
    /// Supply voltage for level conversion.
    v_supply: f64,
}

impl GeniexTile {
    /// Specializes a trained surrogate to the conductance levels of one
    /// tile (`g_levels` in `[0, 1]`, length `rows·cols`).
    ///
    /// # Errors
    ///
    /// * [`GeniexError::NotTrained`] if the surrogate has no fitted
    ///   normalizer.
    /// * [`GeniexError::Shape`] if `g_levels` has the wrong length.
    pub fn new(surrogate: &Geniex, g_levels: &[f32]) -> Result<Self, GeniexError> {
        let params: &CrossbarParams = surrogate.params();
        let (rows, cols) = (params.rows, params.cols);
        let normalizer = surrogate.normalizer().ok_or(GeniexError::NotTrained)?;
        if g_levels.len() != rows * cols {
            return Err(GeniexError::Shape(format!(
                "{} conductance levels for a {rows}x{cols} tile",
                g_levels.len()
            )));
        }

        let dense = surrogate.mlp().dense_layers();
        let hidden = surrogate.hidden();
        let w1 = dense[0].weight(); // [hidden, rows + rows*cols]
        let b1 = dense[0].bias();
        let w2 = dense[1].weight(); // [cols, hidden]
        let b2 = dense[1].bias();
        let in_dim = rows + rows * cols;

        let mut w_v = vec![0.0f32; hidden * rows];
        let mut h_g = vec![0.0f32; hidden];
        for p in 0..hidden {
            let row = &w1.data()[p * in_dim..(p + 1) * in_dim];
            w_v[p * rows..(p + 1) * rows].copy_from_slice(&row[..rows]);
            h_g[p] = b1.data()[p] + kernels::dot_f32(&row[rows..], g_levels);
        }

        Ok(GeniexTile {
            rows,
            cols,
            hidden,
            w_v,
            h_g,
            w2: w2.data().to_vec(),
            b2: b2.data().to_vec(),
            norm_min: normalizer.min,
            norm_span: normalizer.max - normalizer.min,
            v_supply: params.v_supply,
        })
    }

    /// Tile input dimension (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile output dimension (bit lines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Predicts `f_R` from normalized voltage levels (length `rows`,
    /// `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`GeniexError::Shape`] if `v_levels.len() != rows`.
    pub fn f_r_from_levels(&self, v_levels: &[f32]) -> Result<Vec<f32>, GeniexError> {
        if v_levels.len() != self.rows {
            return Err(GeniexError::Shape(format!(
                "{} voltage levels for {} rows",
                v_levels.len(),
                self.rows
            )));
        }
        let mut out = vec![0.0f32; self.cols];
        kernels::scratch::with_f32(self.hidden, |h| self.forward_into(v_levels, h, &mut out));
        Ok(out)
    }

    /// Batched version of [`f_r_from_levels`]: `v_levels` holds `n`
    /// consecutive level vectors (row-major `n × rows`); returns `n ×
    /// cols` predictions. For `n > 1` both layers run as register-
    /// blocked GEMMs ([`kernels::gemm_nt`]) instead of `n` GEMV pairs,
    /// so the layer weights are reused across the whole batch — the
    /// functional simulator's hot path under batched serving.
    ///
    /// Every output element of `gemm_nt` is the [`kernels::dot_f32`]
    /// reduction bit for bit, and the bias/ReLU/denormalize arithmetic
    /// is applied in the same order as [`forward_into`], so batched
    /// and single-vector results are bit-identical (the
    /// `batch_invariance` conformance law).
    ///
    /// # Errors
    ///
    /// Returns [`GeniexError::Shape`] if `v_levels.len() != n * rows`.
    ///
    /// [`f_r_from_levels`]: GeniexTile::f_r_from_levels
    /// [`forward_into`]: GeniexTile::f_r_from_levels
    pub fn f_r_batch(&self, v_levels: &[f32], n: usize) -> Result<Vec<f32>, GeniexError> {
        if v_levels.len() != n * self.rows {
            return Err(GeniexError::Shape(format!(
                "{} voltage levels for {n} vectors of {} rows",
                v_levels.len(),
                self.rows
            )));
        }
        let mut out = vec![0.0f32; n * self.cols];
        if n <= 1 {
            if n == 1 {
                kernels::scratch::with_f32(self.hidden, |h| {
                    self.forward_into(v_levels, h, &mut out);
                });
            }
            return Ok(out);
        }
        let (hidden, cols) = (self.hidden, self.cols);
        kernels::scratch::with_f32(hidden * n, |h_pre| {
            kernels::scratch::with_f32(n * hidden, |h_t| {
                kernels::scratch::with_f32(cols * n, |y| {
                    // h_pre[p][i] = dot_f32(w_v row p, v_i): identical
                    // reduction to the single-vector gemv.
                    kernels::gemm_nt(&self.w_v, v_levels, h_pre, self.rows, n);
                    for (row, &bias) in h_pre.chunks_exact_mut(n).zip(&self.h_g) {
                        for h in row.iter_mut() {
                            *h = (bias + *h).max(0.0);
                        }
                    }
                    // Second layer consumes per-vector hidden rows.
                    kernels::transpose_f32(h_pre, h_t, hidden, n);
                    kernels::gemm_nt(&self.w2, h_t, y, hidden, n);
                    for (c, (row, &bias)) in y.chunks_exact(n).zip(&self.b2).enumerate() {
                        for (i, &yv) in row.iter().enumerate() {
                            out[i * cols + c] = ((bias + yv) * self.norm_span + self.norm_min)
                                .clamp(F_R_CLAMP.0, F_R_CLAMP.1);
                        }
                    }
                });
            });
        });
        Ok(out)
    }

    /// The two fused GEMVs shared by the single and batched entry
    /// points: `h = ReLU(W_v·v + h_g)`, then `y = W2·h + b2`
    /// denormalized and clamped. One code path means the batched and
    /// single-vector results are bit-identical by construction.
    fn forward_into(&self, v_levels: &[f32], h: &mut [f32], out: &mut [f32]) {
        kernels::gemv_bias_relu_f32(&self.w_v, v_levels, &self.h_g, h);
        kernels::gemv_into_f32(&self.w2, h, &self.b2, out);
        for out_val in out.iter_mut() {
            *out_val = (*out_val * self.norm_span + self.norm_min).clamp(F_R_CLAMP.0, F_R_CLAMP.1);
        }
    }

    /// Predicts `f_R` from physical voltages (volts), normalizing by
    /// the design supply voltage.
    ///
    /// # Errors
    ///
    /// Returns [`GeniexError::Shape`] if `v.len() != rows`.
    pub fn f_r(&self, v: &[f64]) -> Result<Vec<f32>, GeniexError> {
        let levels: Vec<f32> = v
            .iter()
            .map(|&x| (x / self.v_supply).clamp(0.0, 1.0) as f32)
            .collect();
        self.f_r_from_levels(&levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetConfig};
    use crate::surrogate::TrainConfig;

    fn trained_surrogate() -> Geniex {
        let params = CrossbarParams::builder(4, 4).build().unwrap();
        let data = generate(
            &params,
            &DatasetConfig {
                samples: 60,
                seed: 2,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let mut s = Geniex::new(&params, 24, 5).unwrap();
        s.train(
            &data,
            &TrainConfig {
                epochs: 30,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        s
    }

    #[test]
    fn tile_matches_full_surrogate_exactly() {
        let mut s = trained_surrogate();
        let g_levels: Vec<f32> = (0..16).map(|k| (k % 4) as f32 / 3.0).collect();
        let tile = GeniexTile::new(&s, &g_levels).unwrap();
        for pattern in [[1.0f32; 4], [0.0; 4], [0.5, 0.0, 1.0, 0.25]] {
            let full = s.predict_f_r(&pattern, &g_levels).unwrap();
            let fast = tile.f_r_from_levels(&pattern).unwrap();
            for (a, b) in full.iter().zip(&fast) {
                assert!((a - b).abs() < 1e-4, "fast-forward diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_forward_matches_single() {
        let s = trained_surrogate();
        let tile = GeniexTile::new(&s, &[0.7; 16]).unwrap();
        let vectors = [[1.0f32, 0.0, 0.5, 0.25], [0.0; 4], [0.25, 0.25, 0.25, 0.25]];
        let flat: Vec<f32> = vectors.iter().flatten().copied().collect();
        let batch = tile.f_r_batch(&flat, 3).unwrap();
        for (k, v) in vectors.iter().enumerate() {
            let single = tile.f_r_from_levels(v).unwrap();
            assert_eq!(&batch[k * 4..(k + 1) * 4], single.as_slice());
        }
        assert!(tile.f_r_batch(&flat, 2).is_err());
    }

    #[test]
    fn tile_requires_trained_surrogate() {
        let params = CrossbarParams::builder(4, 4).build().unwrap();
        let s = Geniex::new(&params, 8, 0).unwrap();
        assert!(matches!(
            GeniexTile::new(&s, &[0.0; 16]),
            Err(GeniexError::NotTrained)
        ));
    }

    #[test]
    fn tile_shape_validation() {
        let s = trained_surrogate();
        assert!(GeniexTile::new(&s, &[0.0; 15]).is_err());
        let tile = GeniexTile::new(&s, &[0.5; 16]).unwrap();
        assert!(tile.f_r_from_levels(&[0.0; 3]).is_err());
        assert_eq!(tile.rows(), 4);
        assert_eq!(tile.cols(), 4);
    }

    #[test]
    fn physical_voltage_entry_point() {
        let s = trained_surrogate();
        let tile = GeniexTile::new(&s, &[1.0; 16]).unwrap();
        let via_levels = tile.f_r_from_levels(&[1.0; 4]).unwrap();
        let via_volts = tile.f_r(&[0.25; 4]).unwrap(); // v_supply = 0.25
        assert_eq!(via_levels, via_volts);
    }

    #[test]
    fn predictions_clamped() {
        let s = trained_surrogate();
        let tile = GeniexTile::new(&s, &[0.0; 16]).unwrap();
        let f_r = tile.f_r_from_levels(&[1.0; 4]).unwrap();
        for f in f_r {
            assert!((0.2..=5.0).contains(&f));
        }
    }
}

//! The GENIEx surrogate model: a two-layer MLP predicting `f_R(V, G)`.

use crate::dataset::SurrogateDataset;
use crate::GeniexError;
use nn::{loss::mse, Adam, Mlp, Optimizer, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::time::Instant;
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarParams};

/// Global clamp on `f_R`, applied both to training labels and to
/// denormalized predictions. The range corresponds to NF between
/// -4 and 0.8 — far wider than anything a physical design point in the
/// paper's parameter space produces.
pub(crate) const F_R_CLAMP: (f32, f32) = (0.2, 5.0);

/// Min-max normalizer mapping label space to `[0, 1]`, as the paper
/// normalizes `V`, `G` and `f_R` before training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    /// Smallest label seen during fitting.
    pub min: f32,
    /// Largest label seen during fitting.
    pub max: f32,
}

impl Normalizer {
    /// Fits to a label sample.
    ///
    /// Degenerate samples (constant labels) get a unit-width window so
    /// normalization stays invertible.
    pub fn fit(labels: impl IntoIterator<Item = f32>) -> Self {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for l in labels {
            min = min.min(l);
            max = max.max(l);
        }
        if !min.is_finite() || !max.is_finite() {
            return Normalizer { min: 0.0, max: 1.0 };
        }
        if max - min < 1e-6 {
            max = min + 1.0;
        }
        Normalizer { min, max }
    }

    /// Maps a raw label into `[0, 1]`.
    #[inline]
    pub fn normalize(&self, x: f32) -> f32 {
        (x - self.min) / (self.max - self.min)
    }

    /// Inverts [`normalize`](Normalizer::normalize).
    #[inline]
    pub fn denormalize(&self, y: f32) -> f32 {
        y * (self.max - self.min) + self.min
    }
}

/// Training hyper-parameters for [`Geniex::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (initial).
    pub learning_rate: f32,
    /// Final learning rate as a fraction of the initial one, reached
    /// via cosine annealing over the epochs (1.0 = constant rate).
    pub final_lr_fraction: f32,
    /// Fraction of the dataset held out for validation-based early
    /// stopping (0 disables; the paper keeps a separate validation
    /// set, Section 4 "Dataset").
    pub validation_fraction: f32,
    /// Stop when validation loss hasn't improved for this many epochs
    /// (only when `validation_fraction > 0`).
    pub patience: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 32,
            learning_rate: 1e-3,
            final_lr_fraction: 0.05,
            validation_fraction: 0.0,
            patience: 20,
            seed: 7,
        }
    }
}

impl store::Canonical for TrainConfig {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.usize("epochs", self.epochs)
            .usize("batch_size", self.batch_size)
            .f32("learning_rate", self.learning_rate)
            .f32("final_lr_fraction", self.final_lr_fraction)
            .f32("validation_fraction", self.validation_fraction)
            .usize("patience", self.patience)
            .u64("seed", self.seed);
    }
}

/// Loss trajectory returned by [`Geniex::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// Mean training MSE per epoch (normalized label space).
    pub epoch_losses: Vec<f32>,
    /// Final epoch's loss.
    pub final_loss: f32,
    /// Validation MSE per epoch (empty unless early stopping is on).
    pub validation_losses: Vec<f32>,
    /// Epochs actually run (≤ `config.epochs` when early-stopped).
    pub epochs_run: usize,
}

/// The GENIEx surrogate: `(R·C + R) × P × C` MLP with ReLU hidden
/// layer (paper defaults: `P = 500`).
///
/// See the crate docs for the formulation; the short version is that
/// the network reads `concat(V, flatten(G))` in normalized units and
/// predicts the distortion ratio `f_R` per bit line, from which
/// `I_non_ideal = I_ideal / f_R`.
#[derive(Debug, Clone)]
pub struct Geniex {
    params: CrossbarParams,
    hidden: usize,
    mlp: Mlp,
    normalizer: Option<Normalizer>,
}

impl Geniex {
    /// Creates an untrained surrogate for the given crossbar design
    /// with `hidden` neurons (paper default 500).
    ///
    /// # Errors
    ///
    /// Returns [`GeniexError::InvalidConfig`] if `hidden == 0`.
    pub fn new(params: &CrossbarParams, hidden: usize, seed: u64) -> Result<Self, GeniexError> {
        if hidden == 0 {
            return Err(GeniexError::InvalidConfig(
                "hidden layer must have at least one neuron".into(),
            ));
        }
        let input = params.rows + params.rows * params.cols;
        let mlp = Mlp::new(&[input, hidden, params.cols], seed)?;
        Ok(Geniex {
            params: params.clone(),
            hidden,
            mlp,
            normalizer: None,
        })
    }

    /// The crossbar design this surrogate models.
    pub fn params(&self) -> &CrossbarParams {
        &self.params
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The fitted label normalizer, if trained.
    pub fn normalizer(&self) -> Option<Normalizer> {
        self.normalizer
    }

    /// Borrow of the underlying MLP (weight export for the
    /// fast-forward split and for mapping the surrogate onto hardware).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Trains the surrogate on a labelled dataset.
    ///
    /// # Errors
    ///
    /// * [`GeniexError::InvalidConfig`] on empty datasets, zero epochs
    ///   or zero batch size, or a dataset generated for a different
    ///   crossbar geometry.
    pub fn train(
        &mut self,
        data: &SurrogateDataset,
        config: &TrainConfig,
    ) -> Result<TrainingReport, GeniexError> {
        if data.is_empty() {
            return Err(GeniexError::InvalidConfig("dataset is empty".into()));
        }
        if config.epochs == 0 || config.batch_size == 0 {
            return Err(GeniexError::InvalidConfig(
                "epochs and batch_size must be > 0".into(),
            ));
        }
        if data.params.rows != self.params.rows || data.params.cols != self.params.cols {
            return Err(GeniexError::InvalidConfig(format!(
                "dataset is for a {}x{} crossbar, surrogate expects {}x{}",
                data.params.rows, data.params.cols, self.params.rows, self.params.cols
            )));
        }

        let normalizer = Normalizer::fit(data.samples.iter().flat_map(|s| s.f_r.iter().copied()));
        self.normalizer = Some(normalizer);

        let in_dim = self.params.rows + self.params.rows * self.params.cols;
        let out_dim = self.params.cols;
        let n = data.len();

        // Materialize the whole design matrix once; mini-batches copy
        // rows out of it.
        let mut x_all = vec![0.0f32; n * in_dim];
        let mut y_all = vec![0.0f32; n * out_dim];
        for (k, s) in data.samples.iter().enumerate() {
            x_all[k * in_dim..k * in_dim + self.params.rows].copy_from_slice(&s.v_levels);
            x_all[k * in_dim + self.params.rows..(k + 1) * in_dim].copy_from_slice(&s.g_levels);
            for (j, &f) in s.f_r.iter().enumerate() {
                y_all[k * out_dim + j] = normalizer.normalize(f);
            }
        }

        // Hold out the tail for validation-based early stopping.
        let validation_fraction = config.validation_fraction.clamp(0.0, 0.9);
        let val_count = ((n as f32) * validation_fraction) as usize;
        let train_count = n - val_count;
        if train_count == 0 {
            return Err(GeniexError::InvalidConfig(
                "validation_fraction leaves no training samples".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..train_count).collect();
        let mut optimizer = Adam::new(config.learning_rate);
        let mut epoch_losses = Vec::with_capacity(config.epochs);
        let mut validation_losses = Vec::new();
        let final_fraction = config.final_lr_fraction.clamp(0.0, 1.0);
        let mut best_val = f32::INFINITY;
        let mut best_epoch = 0usize;
        let mut epochs_run = 0usize;

        let _span = telemetry::span("geniex.train");
        let epoch_timer = telemetry::timer("geniex.train.epoch_seconds");

        for epoch in 0..config.epochs {
            let t_epoch = telemetry::enabled().then(Instant::now);
            // Nested under "geniex.train"; closes at the end of each
            // iteration carrying the epoch's attributes.
            let mut epoch_span = telemetry::span("epoch");
            epoch_span.attr("epoch", epoch);
            // Cosine annealing from the initial rate to
            // `final_lr_fraction` of it across the run.
            let progress = epoch as f32 / config.epochs.max(1) as f32;
            let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
            optimizer.learning_rate =
                config.learning_rate * (final_fraction + (1.0 - final_fraction) * cosine);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(config.batch_size) {
                let bs = chunk.len();
                let mut xb = vec![0.0f32; bs * in_dim];
                let mut yb = vec![0.0f32; bs * out_dim];
                for (r, &idx) in chunk.iter().enumerate() {
                    xb[r * in_dim..(r + 1) * in_dim]
                        .copy_from_slice(&x_all[idx * in_dim..(idx + 1) * in_dim]);
                    yb[r * out_dim..(r + 1) * out_dim]
                        .copy_from_slice(&y_all[idx * out_dim..(idx + 1) * out_dim]);
                }
                let x = Tensor::from_vec(xb, &[bs, in_dim])?;
                let y = Tensor::from_vec(yb, &[bs, out_dim])?;
                let pred = self.mlp.forward_train(&x);
                let (loss, grad) = mse(&pred, &y)?;
                self.mlp.zero_grad();
                self.mlp.backward(&grad);
                optimizer.step(&mut self.mlp);
                epoch_loss += loss as f64;
                batches += 1;
            }
            let train_loss = (epoch_loss / batches.max(1) as f64) as f32;
            epoch_losses.push(train_loss);
            epochs_run = epoch + 1;
            epoch_span.attr("loss", train_loss as f64);
            epoch_span.attr("lr", optimizer.learning_rate as f64);

            let mut val_this_epoch = None;
            if val_count > 0 {
                let x =
                    Tensor::from_vec(x_all[train_count * in_dim..].to_vec(), &[val_count, in_dim])?;
                let y = Tensor::from_vec(
                    y_all[train_count * out_dim..].to_vec(),
                    &[val_count, out_dim],
                )?;
                let pred = self.mlp.forward(&x);
                let (val_loss, _) = mse(&pred, &y)?;
                validation_losses.push(val_loss);
                val_this_epoch = Some(val_loss);
            }

            if let Some(t0) = t_epoch {
                epoch_timer.record(t0.elapsed());
                let mut fields = vec![
                    ("epoch".to_string(), telemetry::Json::from(epoch)),
                    ("loss".to_string(), telemetry::Json::from(train_loss as f64)),
                    (
                        "lr".to_string(),
                        telemetry::Json::from(optimizer.learning_rate as f64),
                    ),
                    (
                        "epoch_s".to_string(),
                        telemetry::Json::from(t0.elapsed().as_secs_f64()),
                    ),
                ];
                if let Some(v) = val_this_epoch {
                    fields.push(("val_loss".to_string(), telemetry::Json::from(v as f64)));
                }
                telemetry::emit("train_epoch", "geniex.train", fields);
            }

            if let Some(val_loss) = val_this_epoch {
                if val_loss < best_val {
                    best_val = val_loss;
                    best_epoch = epoch;
                } else if epoch - best_epoch >= config.patience.max(1) {
                    break;
                }
            }
        }

        Ok(TrainingReport {
            final_loss: *epoch_losses.last().expect("at least one epoch"),
            epoch_losses,
            validation_losses,
            epochs_run,
        })
    }

    /// Predicts `f_R` for one operating point given *normalized*
    /// levels (`v_levels` length `rows`, `g_levels` length `rows·cols`,
    /// both in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// * [`GeniexError::NotTrained`] before [`train`](Geniex::train).
    /// * [`GeniexError::Shape`] on length mismatches.
    pub fn predict_f_r(
        &mut self,
        v_levels: &[f32],
        g_levels: &[f32],
    ) -> Result<Vec<f32>, GeniexError> {
        let normalizer = self.normalizer.ok_or(GeniexError::NotTrained)?;
        if v_levels.len() != self.params.rows {
            return Err(GeniexError::Shape(format!(
                "{} voltage levels for {} rows",
                v_levels.len(),
                self.params.rows
            )));
        }
        if g_levels.len() != self.params.rows * self.params.cols {
            return Err(GeniexError::Shape(format!(
                "{} conductance levels for a {}x{} crossbar",
                g_levels.len(),
                self.params.rows,
                self.params.cols
            )));
        }
        let in_dim = v_levels.len() + g_levels.len();
        let mut x = Vec::with_capacity(in_dim);
        x.extend_from_slice(v_levels);
        x.extend_from_slice(g_levels);
        let out = self.mlp.forward(&Tensor::from_vec(x, &[1, in_dim])?);
        Ok(out
            .data()
            .iter()
            .map(|&y| normalizer.denormalize(y).clamp(F_R_CLAMP.0, F_R_CLAMP.1))
            .collect())
    }

    /// Predicts non-ideal output currents for physical inputs: voltages
    /// in volts and a programmed conductance matrix.
    ///
    /// `I_non_ideal = I_ideal / f_R`, with all-zero columns passed
    /// through as zero.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_f_r`](Geniex::predict_f_r), plus
    /// shape errors from the ideal MVM.
    pub fn predict_currents(
        &mut self,
        v: &[f64],
        g: &ConductanceMatrix,
    ) -> Result<Vec<f64>, GeniexError> {
        let v_levels: Vec<f32> = v
            .iter()
            .map(|&x| (x / self.params.v_supply).clamp(0.0, 1.0) as f32)
            .collect();
        let g_levels: Vec<f32> = g
            .to_levels(&self.params)
            .into_iter()
            .map(|x| x as f32)
            .collect();
        let f_r = self.predict_f_r(&v_levels, &g_levels)?;
        let ideal = ideal_mvm(v, g)?;
        Ok(ideal
            .iter()
            .zip(&f_r)
            .map(|(&id, &fr)| if id == 0.0 { 0.0 } else { id / fr as f64 })
            .collect())
    }

    /// Serializes the surrogate (geometry, normalizer, MLP weights).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), GeniexError> {
        use nn::serialize::{write_magic, write_u32};
        write_magic(w, b"GNX1")?;
        write_u32(w, self.params.rows as u32)?;
        write_u32(w, self.params.cols as u32)?;
        write_u32(w, self.hidden as u32)?;
        match self.normalizer {
            Some(nrm) => {
                write_u32(w, 1)?;
                w.write_all(&nrm.min.to_le_bytes())
                    .map_err(nn::NnError::from)?;
                w.write_all(&nrm.max.to_le_bytes())
                    .map_err(nn::NnError::from)?;
            }
            None => write_u32(w, 0)?,
        }
        self.mlp.save(w)?;
        Ok(())
    }

    /// Deserializes a surrogate saved by [`save`](Geniex::save). The
    /// caller supplies the crossbar design parameters (only geometry is
    /// stored in the file); geometry must match.
    ///
    /// # Errors
    ///
    /// Returns [`GeniexError::Network`] on malformed files and
    /// [`GeniexError::Shape`] on geometry mismatch.
    pub fn load<R: Read>(r: &mut R, params: &CrossbarParams) -> Result<Self, GeniexError> {
        use nn::serialize::{expect_magic, read_u32};
        expect_magic(r, b"GNX1")?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        let hidden = read_u32(r)? as usize;
        if rows != params.rows || cols != params.cols {
            return Err(GeniexError::Shape(format!(
                "file is for a {rows}x{cols} crossbar, params say {}x{}",
                params.rows, params.cols
            )));
        }
        let normalizer = if read_u32(r)? == 1 {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf).map_err(nn::NnError::from)?;
            let min = f32::from_le_bytes(buf);
            r.read_exact(&mut buf).map_err(nn::NnError::from)?;
            let max = f32::from_le_bytes(buf);
            Some(Normalizer { min, max })
        } else {
            None
        };
        let mlp = Mlp::load(r)?;
        let expected = [rows + rows * cols, hidden, cols];
        if mlp.layer_sizes() != expected {
            return Err(GeniexError::Network(nn::NnError::Format(format!(
                "mlp layer sizes {:?} do not match geometry {:?}",
                mlp.layer_sizes(),
                expected
            ))));
        }
        Ok(Geniex {
            params: params.clone(),
            hidden,
            mlp,
            normalizer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetConfig};
    use std::io::Cursor;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(4, 4).build().unwrap()
    }

    fn small_dataset(samples: usize, seed: u64) -> SurrogateDataset {
        generate(
            &params(),
            &DatasetConfig {
                samples,
                seed,
                ..DatasetConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn normalizer_round_trip() {
        let n = Normalizer::fit([1.0f32, 2.0, 5.0]);
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 5.0);
        for x in [1.0f32, 3.3, 5.0] {
            assert!((n.denormalize(n.normalize(x)) - x).abs() < 1e-6);
        }
        assert_eq!(n.normalize(1.0), 0.0);
        assert_eq!(n.normalize(5.0), 1.0);
    }

    #[test]
    fn normalizer_degenerate_sample() {
        let n = Normalizer::fit([2.0f32, 2.0]);
        assert!((n.denormalize(n.normalize(2.0)) - 2.0).abs() < 1e-6);
        let n = Normalizer::fit(std::iter::empty());
        assert_eq!((n.min, n.max), (0.0, 1.0));
    }

    #[test]
    fn untrained_surrogate_refuses_prediction() {
        let mut s = Geniex::new(&params(), 16, 0).unwrap();
        assert!(matches!(
            s.predict_f_r(&[0.0; 4], &[0.0; 16]),
            Err(GeniexError::NotTrained)
        ));
    }

    #[test]
    fn construction_validation() {
        assert!(Geniex::new(&params(), 0, 0).is_err());
        let s = Geniex::new(&params(), 16, 0).unwrap();
        assert_eq!(s.hidden(), 16);
        assert_eq!(s.mlp().layer_sizes(), &[20, 16, 4]);
    }

    #[test]
    fn train_validation() {
        let mut s = Geniex::new(&params(), 8, 0).unwrap();
        let data = small_dataset(4, 1);
        assert!(s
            .train(
                &data,
                &TrainConfig {
                    epochs: 0,
                    ..TrainConfig::default()
                }
            )
            .is_err());
        assert!(s
            .train(
                &data,
                &TrainConfig {
                    batch_size: 0,
                    ..TrainConfig::default()
                }
            )
            .is_err());

        let other = CrossbarParams::builder(3, 3).build().unwrap();
        let mut wrong = Geniex::new(&other, 8, 0).unwrap();
        assert!(wrong.train(&data, &TrainConfig::default()).is_err());
    }

    #[test]
    fn training_reduces_loss_and_enables_prediction() {
        let mut s = Geniex::new(&params(), 32, 3).unwrap();
        let data = small_dataset(120, 5);
        let report = s
            .train(
                &data,
                &TrainConfig {
                    epochs: 60,
                    batch_size: 16,
                    learning_rate: 3e-3,
                    seed: 2,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(report.epoch_losses.len() == 60);
        assert!(
            report.final_loss < report.epoch_losses[0] * 0.7,
            "loss did not drop: first {} final {}",
            report.epoch_losses[0],
            report.final_loss
        );
        let f_r = s.predict_f_r(&[1.0; 4], &[1.0; 16]).unwrap();
        assert_eq!(f_r.len(), 4);
        assert!(f_r.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn training_emits_loss_curve_events() {
        let mut s = Geniex::new(&params(), 8, 0).unwrap();
        let data = small_dataset(24, 7);
        // Serialize against other tests toggling global telemetry.
        let _lock = telemetry::test_lock();
        telemetry::set_enabled(true);
        let sink = std::sync::Arc::new(telemetry::MemorySink::new());
        let sink_id = telemetry::add_sink(sink.clone());
        let report = s
            .train(
                &data,
                &TrainConfig {
                    epochs: 5,
                    batch_size: 8,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        telemetry::remove_sink(sink_id);
        telemetry::set_enabled(false);

        let events: Vec<_> = sink
            .events_for_current_thread()
            .into_iter()
            .filter(|e| e.kind == "train_epoch" && e.name == "geniex.train")
            .collect();
        assert_eq!(events.len(), report.epochs_run);
        for (i, (event, &loss)) in events.iter().zip(&report.epoch_losses).enumerate() {
            assert_eq!(
                event.field("epoch").and_then(telemetry::Json::as_u64),
                Some(i as u64)
            );
            let emitted = event
                .field("loss")
                .and_then(telemetry::Json::as_f64)
                .unwrap();
            assert!(
                (emitted - loss as f64).abs() < 1e-12,
                "epoch {i}: emitted {emitted} vs report {loss}"
            );
            assert!(event.field("epoch_s").is_some());
        }
        // The surrogate train span must have been recorded too.
        let spans: Vec<_> = sink
            .events_for_current_thread()
            .into_iter()
            .filter(|e| e.kind == "span" && e.name == "geniex.train")
            .collect();
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn trained_surrogate_beats_wild_guess_on_dense_pattern() {
        // The surrogate must learn that dense patterns at 0.25 V have
        // f_R noticeably above 1.
        let mut s = Geniex::new(&params(), 48, 3).unwrap();
        let data = small_dataset(200, 11);
        s.train(
            &data,
            &TrainConfig {
                epochs: 120,
                batch_size: 16,
                learning_rate: 3e-3,
                seed: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let truth = crate::dataset::simulate_sample(&params(), &[1.0; 4], &[1.0; 16]).unwrap();
        let predicted = s.predict_f_r(&[1.0; 4], &[1.0; 16]).unwrap();
        for (p, t) in predicted.iter().zip(&truth.f_r) {
            assert!((p - t).abs() < 0.15 * t, "predicted {p} vs simulated {t}");
        }
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        let mut s = Geniex::new(&params(), 24, 3).unwrap();
        let data = small_dataset(150, 8);
        let report = s
            .train(
                &data,
                &TrainConfig {
                    epochs: 400,
                    batch_size: 32,
                    learning_rate: 3e-3,
                    validation_fraction: 0.2,
                    patience: 5,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(!report.validation_losses.is_empty());
        assert_eq!(report.validation_losses.len(), report.epochs_run);
        assert!(
            report.epochs_run < 400,
            "patience 5 should stop well before 400 epochs (ran {})",
            report.epochs_run
        );
    }

    #[test]
    fn no_validation_split_runs_all_epochs() {
        let mut s = Geniex::new(&params(), 8, 3).unwrap();
        let data = small_dataset(20, 9);
        let report = s
            .train(
                &data,
                &TrainConfig {
                    epochs: 7,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.epochs_run, 7);
        assert!(report.validation_losses.is_empty());
    }

    #[test]
    fn predict_currents_zero_column_guard() {
        let mut s = Geniex::new(&params(), 16, 1).unwrap();
        let data = small_dataset(40, 2);
        s.train(
            &data,
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let g = ConductanceMatrix::uniform(4, 4, 0.0);
        let i = s.predict_currents(&[0.25; 4], &g).unwrap();
        assert!(i.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn save_load_round_trip() {
        let mut s = Geniex::new(&params(), 16, 9).unwrap();
        let data = small_dataset(40, 3);
        s.train(
            &data,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let mut loaded = Geniex::load(&mut Cursor::new(&buf), &params()).unwrap();
        let a = s.predict_f_r(&[0.5; 4], &[0.5; 16]).unwrap();
        let b = loaded.predict_f_r(&[0.5; 4], &[0.5; 16]).unwrap();
        assert_eq!(a, b);

        let other = CrossbarParams::builder(3, 3).build().unwrap();
        assert!(Geniex::load(&mut Cursor::new(&buf), &other).is_err());
    }

    #[test]
    fn prediction_shape_validation() {
        let mut s = Geniex::new(&params(), 8, 0).unwrap();
        let data = small_dataset(10, 4);
        s.train(
            &data,
            &TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        assert!(s.predict_f_r(&[0.0; 3], &[0.0; 16]).is_err());
        assert!(s.predict_f_r(&[0.0; 4], &[0.0; 15]).is_err());
    }
}

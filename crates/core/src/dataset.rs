//! Training-set generation for the GENIEx surrogate (Section 4,
//! "Dataset" and Section 6, "Crossbar").
//!
//! Each sample is one crossbar operating point: normalized input
//! voltages `v ∈ [0,1]^R`, normalized conductance levels
//! `g ∈ [0,1]^{R·C}`, and the label `f_R = I_ideal / I_non_ideal` per
//! bit line, computed by the circuit simulator (our HSPICE stand-in).
//!
//! Bit-sliced DNN workloads drive crossbars with very sparse `V` and
//! `G`; the generator therefore stratifies samples across sparsity
//! grades, exactly as the paper describes.

use crate::GeniexError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarCircuit, CrossbarParams};

use crate::surrogate::F_R_CLAMP;

/// Columns whose ideal current falls below this fraction of a single
/// OFF-cell's full-scale current are treated as carrying no signal:
/// their `f_R` label is the neutral 1. Without this floor, ratios of
/// vanishingly small currents produce extreme labels that stretch the
/// normalizer and drown the learning signal (the predicted current for
/// such columns is negligible either way).
const LIVE_FRACTION: f64 = 0.05;

/// The smallest ideal column current considered "live" for labelling
/// and for NF comparisons on this design point.
pub fn live_current_floor(params: &CrossbarParams) -> f64 {
    LIVE_FRACTION * params.g_off() * params.v_supply
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of (V, G) operating points to simulate.
    pub samples: usize,
    /// RNG seed (the dataset is fully deterministic given the seed).
    pub seed: u64,
    /// Sparsity grades to stratify over: each sample draws its input
    /// and conductance sparsity from this list (cycled).
    pub sparsity_grades: Vec<f64>,
    /// Number of distinct DAC input levels (quantized, as bit-sliced
    /// inputs are).
    pub dac_levels: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            samples: 2000,
            seed: 0xBA5E,
            sparsity_grades: vec![0.0, 0.25, 0.5, 0.75, 0.9],
            dac_levels: 16,
        }
    }
}

/// One labelled operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Normalized input voltages, length `rows`, in `[0, 1]`.
    pub v_levels: Vec<f32>,
    /// Normalized conductance levels, length `rows·cols`, in `[0, 1]`.
    pub g_levels: Vec<f32>,
    /// Distortion-ratio labels, length `cols`.
    pub f_r: Vec<f32>,
}

/// A labelled dataset tied to one crossbar design point.
#[derive(Debug, Clone)]
pub struct SurrogateDataset {
    /// The crossbar design the samples were simulated on.
    pub params: CrossbarParams,
    /// The labelled samples.
    pub samples: Vec<Sample>,
}

impl SurrogateDataset {
    /// Splits into `(train, validation)` at `train_fraction`
    /// (deterministic split, no shuffling — samples are already i.i.d.
    /// by construction).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `(0, 1)`.
    pub fn split(&self, train_fraction: f64) -> (SurrogateDataset, SurrogateDataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let cut = ((self.samples.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.samples.len().saturating_sub(1).max(1));
        (
            SurrogateDataset {
                params: self.params.clone(),
                samples: self.samples[..cut].to_vec(),
            },
            SurrogateDataset {
                params: self.params.clone(),
                samples: self.samples[cut..].to_vec(),
            },
        )
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serializes the dataset (geometry plus all samples) in the
    /// `GDS1` binary layout used by the artifact store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), GeniexError> {
        use nn::serialize::{write_f32_slice, write_magic, write_u32};
        write_magic(w, b"GDS1")?;
        write_u32(w, self.params.rows as u32)?;
        write_u32(w, self.params.cols as u32)?;
        write_u32(w, self.samples.len() as u32)?;
        for sample in &self.samples {
            write_f32_slice(w, &sample.v_levels)?;
            write_f32_slice(w, &sample.g_levels)?;
            write_f32_slice(w, &sample.f_r)?;
        }
        Ok(())
    }

    /// Deserializes a dataset saved by [`save`](SurrogateDataset::save).
    /// The caller supplies the design parameters (only geometry is
    /// stored); geometry must match.
    ///
    /// # Errors
    ///
    /// Returns [`GeniexError::Network`] on malformed bytes and
    /// [`GeniexError::Shape`] on geometry mismatch.
    pub fn load<R: Read>(r: &mut R, params: &CrossbarParams) -> Result<Self, GeniexError> {
        use nn::serialize::{expect_magic, read_f32_slice, read_u32};
        expect_magic(r, b"GDS1")?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        if rows != params.rows || cols != params.cols {
            return Err(GeniexError::Shape(format!(
                "file is for a {rows}x{cols} crossbar, params say {}x{}",
                params.rows, params.cols
            )));
        }
        let count = read_u32(r)? as usize;
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            let v_levels = read_f32_slice(r, rows)?;
            let g_levels = read_f32_slice(r, rows * cols)?;
            let f_r = read_f32_slice(r, cols)?;
            if v_levels.len() != rows || g_levels.len() != rows * cols || f_r.len() != cols {
                return Err(GeniexError::Network(nn::NnError::Format(
                    "sample vector lengths do not match geometry".into(),
                )));
            }
            samples.push(Sample {
                v_levels,
                g_levels,
                f_r,
            });
        }
        Ok(SurrogateDataset {
            params: params.clone(),
            samples,
        })
    }
}

impl store::Canonical for DatasetConfig {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.usize("samples", self.samples)
            .u64("seed", self.seed)
            .f64_slice("sparsity_grades", &self.sparsity_grades)
            .usize("dac_levels", self.dac_levels);
    }
}

/// Content hash: the dataset's design point plus every sample's bytes.
/// Used to key artifacts *derived from* a dataset (e.g. a surrogate
/// trained on harvested stimuli whose producing config spans the whole
/// workload pipeline).
impl store::Canonical for SurrogateDataset {
    fn canonicalize(&self, key: &mut store::KeyBuilder) {
        key.nested("params", &self.params);
        key.usize("n", self.samples.len());
        for sample in &self.samples {
            key.f32_slice("v", &sample.v_levels)
                .f32_slice("g", &sample.g_levels)
                .f32_slice("f", &sample.f_r);
        }
    }
}

/// Computes `f_R` labels from paired ideal / non-ideal currents.
///
/// Columns whose ideal current is below `floor` get the neutral label
/// 1; all other labels are clamped to the global `f_R` range.
pub fn f_r_labels(i_ideal: &[f64], i_non_ideal: &[f64], floor: f64) -> Vec<f32> {
    debug_assert_eq!(i_ideal.len(), i_non_ideal.len());
    i_ideal
        .iter()
        .zip(i_non_ideal)
        .map(|(&id, &ni)| {
            if id.abs() < floor {
                1.0
            } else {
                (id / ni.max(floor * 1e-3)).clamp(F_R_CLAMP.0 as f64, F_R_CLAMP.1 as f64) as f32
            }
        })
        .collect()
}

/// Generates a labelled dataset by simulating random stratified
/// operating points on the full nonlinear circuit.
///
/// # Errors
///
/// * [`GeniexError::InvalidConfig`] if `samples == 0`, the sparsity
///   list is empty/out-of-range, or `dac_levels == 0`.
/// * [`GeniexError::Circuit`] if a circuit solve fails.
pub fn generate(
    params: &CrossbarParams,
    config: &DatasetConfig,
) -> Result<SurrogateDataset, GeniexError> {
    if config.samples == 0 {
        return Err(GeniexError::InvalidConfig("samples must be > 0".into()));
    }
    if config.dac_levels == 0 {
        return Err(GeniexError::InvalidConfig("dac_levels must be > 0".into()));
    }
    if config.sparsity_grades.is_empty()
        || config
            .sparsity_grades
            .iter()
            .any(|s| !(0.0..=1.0).contains(s))
    {
        return Err(GeniexError::InvalidConfig(
            "sparsity_grades must be non-empty values in [0, 1]".into(),
        ));
    }

    // Draw every operating point up front in the exact serial RNG
    // order, then run the circuit solves in parallel and collect by
    // index: the dataset is byte-identical to the serial path for any
    // GENIEX_THREADS.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut points = Vec::with_capacity(config.samples);
    for k in 0..config.samples {
        let v_sparsity = config.sparsity_grades[k % config.sparsity_grades.len()];
        let g_sparsity = config.sparsity_grades
            [(k / config.sparsity_grades.len()) % config.sparsity_grades.len()];

        // Quantized sparse input levels in [0, 1].
        let v_levels: Vec<f32> = (0..params.rows)
            .map(|_| {
                if rng.gen::<f64>() < v_sparsity {
                    0.0
                } else {
                    rng.gen_range(1..=config.dac_levels) as f32 / config.dac_levels as f32
                }
            })
            .collect();
        // Sparse conductance levels in [0, 1] (level 0 = g_off).
        let g_levels: Vec<f32> = (0..params.rows * params.cols)
            .map(|_| {
                if rng.gen::<f64>() < g_sparsity {
                    0.0
                } else {
                    rng.gen::<f32>()
                }
            })
            .collect();
        points.push((v_levels, g_levels));
    }
    let samples = parallel::par_map_grained(&points, 1, |(v_levels, g_levels)| {
        simulate_sample(params, v_levels, g_levels)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    telemetry::counter("geniex.dataset.generated_samples").add(samples.len() as u64);
    Ok(SurrogateDataset {
        params: params.clone(),
        samples,
    })
}

/// Labels externally collected `(V, G)` stimuli on the circuit
/// simulator, producing a training set.
///
/// This is the paper's Section 6 methodology: the training vectors are
/// *collected from the workload* (the functional simulator's actual
/// bit-sliced tile patterns — see `funcsim::harvest_stimuli`), then
/// simulated to obtain `f_R` labels. A surrogate trained on-distribution
/// is dramatically more accurate inside the functional simulator than
/// one trained on random stimuli alone; [`generate`] remains useful for
/// covering the broader design space (and for the sparsity ablation).
///
/// # Errors
///
/// * [`GeniexError::InvalidConfig`] if `stimuli` is empty.
/// * [`GeniexError::Shape`] / [`GeniexError::Circuit`] per sample.
pub fn label_stimuli<'a, I>(
    params: &CrossbarParams,
    stimuli: I,
) -> Result<SurrogateDataset, GeniexError>
where
    I: IntoIterator<Item = (&'a [f32], &'a [f32])>,
{
    let stimuli: Vec<(&[f32], &[f32])> = stimuli.into_iter().collect();
    if stimuli.is_empty() {
        return Err(GeniexError::InvalidConfig("no stimuli to label".into()));
    }
    // Labels come from independent circuit solves; results collect in
    // stimulus order, so the dataset matches the serial path exactly.
    let samples = parallel::par_map_grained(&stimuli, 1, |&(v_levels, g_levels)| {
        simulate_sample(params, v_levels, g_levels)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    telemetry::counter("geniex.dataset.generated_samples").add(samples.len() as u64);
    Ok(SurrogateDataset {
        params: params.clone(),
        samples,
    })
}

/// Merges datasets generated for the same design point (e.g. random
/// stratified samples plus workload-harvested samples).
///
/// # Errors
///
/// Returns [`GeniexError::InvalidConfig`] if the design points differ
/// or the input is empty.
pub fn merge(datasets: Vec<SurrogateDataset>) -> Result<SurrogateDataset, GeniexError> {
    let mut iter = datasets.into_iter();
    let mut merged = iter
        .next()
        .ok_or_else(|| GeniexError::InvalidConfig("nothing to merge".into()))?;
    for d in iter {
        if d.params != merged.params {
            return Err(GeniexError::InvalidConfig(
                "cannot merge datasets from different design points".into(),
            ));
        }
        merged.samples.extend(d.samples);
    }
    Ok(merged)
}

/// Simulates one operating point given normalized levels, returning the
/// labelled sample. Exposed so validation sets and tests can label
/// specific patterns.
///
/// # Errors
///
/// * [`GeniexError::Shape`] on level-vector length mismatches.
/// * [`GeniexError::Circuit`] if the solve fails.
pub fn simulate_sample(
    params: &CrossbarParams,
    v_levels: &[f32],
    g_levels: &[f32],
) -> Result<Sample, GeniexError> {
    if v_levels.len() != params.rows {
        return Err(GeniexError::Shape(format!(
            "{} voltage levels for {} rows",
            v_levels.len(),
            params.rows
        )));
    }
    if g_levels.len() != params.rows * params.cols {
        return Err(GeniexError::Shape(format!(
            "{} conductance levels for a {}x{} crossbar",
            g_levels.len(),
            params.rows,
            params.cols
        )));
    }
    let volts: Vec<f64> = v_levels
        .iter()
        .map(|&l| l as f64 * params.v_supply)
        .collect();
    let levels_f64: Vec<f64> = g_levels.iter().map(|&l| l as f64).collect();
    let g = ConductanceMatrix::from_levels(params, &levels_f64)?;
    let circuit = CrossbarCircuit::new(params, &g)?;
    let non_ideal = circuit.solve(&volts)?.currents;
    let ideal = ideal_mvm(&volts, &g)?;
    Ok(Sample {
        v_levels: v_levels.to_vec(),
        g_levels: g_levels.to_vec(),
        f_r: f_r_labels(&ideal, &non_ideal, live_current_floor(params)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(4, 4).build().unwrap()
    }

    #[test]
    fn config_validation() {
        let p = params();
        assert!(generate(
            &p,
            &DatasetConfig {
                samples: 0,
                ..DatasetConfig::default()
            }
        )
        .is_err());
        assert!(generate(
            &p,
            &DatasetConfig {
                sparsity_grades: vec![],
                samples: 1,
                ..DatasetConfig::default()
            }
        )
        .is_err());
        assert!(generate(
            &p,
            &DatasetConfig {
                sparsity_grades: vec![1.5],
                samples: 1,
                ..DatasetConfig::default()
            }
        )
        .is_err());
        assert!(generate(
            &p,
            &DatasetConfig {
                dac_levels: 0,
                samples: 1,
                ..DatasetConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let p = params();
        let cfg = DatasetConfig {
            samples: 6,
            seed: 42,
            ..DatasetConfig::default()
        };
        let a = generate(&p, &cfg).unwrap();
        let b = generate(&p, &cfg).unwrap();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn labels_are_clamped_and_finite() {
        let p = params();
        let data = generate(
            &p,
            &DatasetConfig {
                samples: 20,
                seed: 3,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        for s in &data.samples {
            assert_eq!(s.v_levels.len(), 4);
            assert_eq!(s.g_levels.len(), 16);
            assert_eq!(s.f_r.len(), 4);
            for &f in &s.f_r {
                assert!(f.is_finite());
                assert!((F_R_CLAMP.0..=F_R_CLAMP.1).contains(&f));
            }
        }
    }

    #[test]
    fn dead_columns_get_neutral_label() {
        let floor = live_current_floor(&params());
        assert_eq!(f_r_labels(&[0.0], &[0.0], floor), vec![1.0]);
        assert_eq!(
            f_r_labels(&[floor * 0.5], &[floor * 10.0], floor),
            vec![1.0]
        );
        // Tiny denominator clamps instead of exploding.
        let labels = f_r_labels(&[1e-5], &[1e-20], floor);
        assert_eq!(labels[0], F_R_CLAMP.1);
    }

    #[test]
    fn all_zero_input_sample_is_neutral() {
        let p = params();
        let s = simulate_sample(&p, &[0.0; 4], &[0.5; 16]).unwrap();
        assert!(s.f_r.iter().all(|&f| (f - 1.0).abs() < 1e-6));
    }

    #[test]
    fn dense_sample_f_r_reflects_design_regime() {
        // On a tiny 4x4 crossbar the sinh boost outweighs the short
        // wires' IR drop, so f_R < 1; on a 16x16 crossbar the drop
        // dominates and f_R > 1. Both regimes must label correctly.
        let p = params();
        let s = simulate_sample(&p, &[1.0; 4], &[1.0; 16]).unwrap();
        assert!(s.f_r.iter().all(|&f| f < 1.0), "4x4 f_r = {:?}", s.f_r);

        let p16 = CrossbarParams::builder(16, 16).build().unwrap();
        let s16 = simulate_sample(&p16, &[1.0; 16], &[1.0; 256]).unwrap();
        assert!(
            s16.f_r.iter().all(|&f| f > 1.0),
            "16x16 f_r = {:?}",
            s16.f_r
        );
    }

    #[test]
    fn split_partitions_samples() {
        let p = params();
        let data = generate(
            &p,
            &DatasetConfig {
                samples: 10,
                seed: 4,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let (train, val) = data.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        assert_eq!(train.samples[0], data.samples[0]);
        assert_eq!(val.samples[0], data.samples[8]);
    }

    #[test]
    fn shape_validation_in_simulate() {
        let p = params();
        assert!(simulate_sample(&p, &[0.0; 3], &[0.5; 16]).is_err());
        assert!(simulate_sample(&p, &[0.0; 4], &[0.5; 15]).is_err());
    }

    #[test]
    fn label_stimuli_matches_simulate_sample() {
        let p = params();
        let v = vec![1.0f32, 0.0, 0.5, 0.25];
        let g = vec![0.5f32; 16];
        let ds = label_stimuli(&p, [(v.as_slice(), g.as_slice())]).unwrap();
        assert_eq!(ds.len(), 1);
        let direct = simulate_sample(&p, &v, &g).unwrap();
        assert_eq!(ds.samples[0], direct);
        assert!(label_stimuli(&p, std::iter::empty()).is_err());
    }

    #[test]
    fn save_load_round_trips() {
        let p = params();
        let data = generate(
            &p,
            &DatasetConfig {
                samples: 5,
                seed: 9,
                ..DatasetConfig::default()
            },
        )
        .unwrap();
        let mut bytes = Vec::new();
        data.save(&mut bytes).unwrap();
        let loaded = SurrogateDataset::load(&mut bytes.as_slice(), &p).unwrap();
        assert_eq!(loaded.params, data.params);
        assert_eq!(loaded.samples, data.samples);

        // Geometry mismatch is rejected.
        let other = CrossbarParams::builder(3, 3).build().unwrap();
        assert!(SurrogateDataset::load(&mut bytes.as_slice(), &other).is_err());
        // Truncated bytes error instead of panicking.
        assert!(SurrogateDataset::load(&mut bytes[..bytes.len() / 2].as_ref(), &p).is_err());
    }

    #[test]
    fn canonical_content_hash_tracks_config_and_seed() {
        let p = params();
        let key = |cfg: &DatasetConfig| store::key_of(*b"test", cfg);
        let base = DatasetConfig {
            samples: 4,
            seed: 1,
            ..DatasetConfig::default()
        };
        assert_eq!(key(&base), key(&base.clone()));
        for variant in [
            DatasetConfig {
                samples: 5,
                ..base.clone()
            },
            DatasetConfig {
                seed: 2,
                ..base.clone()
            },
            DatasetConfig {
                dac_levels: 8,
                ..base.clone()
            },
            DatasetConfig {
                sparsity_grades: vec![0.0, 0.5],
                ..base.clone()
            },
        ] {
            assert_ne!(key(&base), key(&variant));
        }

        // The dataset content hash distinguishes different datasets on
        // the same design point.
        let a = generate(&p, &base).unwrap();
        let b = generate(
            &p,
            &DatasetConfig {
                seed: 2,
                ..base.clone()
            },
        )
        .unwrap();
        assert_eq!(store::key_of(*b"test", &a), store::key_of(*b"test", &a));
        assert_ne!(store::key_of(*b"test", &a), store::key_of(*b"test", &b));
    }

    #[test]
    fn merge_checks_design_points() {
        let p = params();
        let cfg = DatasetConfig {
            samples: 3,
            seed: 1,
            ..DatasetConfig::default()
        };
        let a = generate(&p, &cfg).unwrap();
        let b = generate(
            &p,
            &DatasetConfig {
                seed: 2,
                ..cfg.clone()
            },
        )
        .unwrap();
        let merged = merge(vec![a.clone(), b]).unwrap();
        assert_eq!(merged.len(), 6);

        let other = CrossbarParams::builder(3, 3).build().unwrap();
        let c = generate(&other, &cfg).unwrap();
        assert!(merge(vec![a, c]).is_err());
        assert!(merge(vec![]).is_err());
    }
}

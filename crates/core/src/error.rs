use std::fmt;

/// Errors produced by the GENIEx surrogate pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum GeniexError {
    /// The circuit simulator failed.
    Circuit(xbar::XbarError),
    /// The neural-network substrate failed.
    Network(nn::NnError),
    /// Operand shapes don't match the surrogate's crossbar geometry.
    Shape(String),
    /// An invalid training or dataset configuration.
    InvalidConfig(String),
    /// The surrogate was used before being trained.
    NotTrained,
}

impl fmt::Display for GeniexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeniexError::Circuit(err) => write!(f, "circuit simulation failed: {err}"),
            GeniexError::Network(err) => write!(f, "neural network failure: {err}"),
            GeniexError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            GeniexError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GeniexError::NotTrained => write!(f, "surrogate has not been trained"),
        }
    }
}

impl std::error::Error for GeniexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GeniexError::Circuit(err) => Some(err),
            GeniexError::Network(err) => Some(err),
            _ => None,
        }
    }
}

impl From<xbar::XbarError> for GeniexError {
    fn from(err: xbar::XbarError) -> Self {
        GeniexError::Circuit(err)
    }
}

impl From<nn::NnError> for GeniexError {
    fn from(err: nn::NnError) -> Self {
        GeniexError::Network(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let e = GeniexError::from(xbar::XbarError::Shape("x".into()));
        assert!(e.to_string().contains("circuit"));
        assert!(e.source().is_some());
        assert!(GeniexError::NotTrained.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeniexError>();
    }
}

//! GENIEx: a neural-network surrogate of non-ideal memristive crossbars.
//!
//! This crate implements the core contribution of *GENIEx: A Generalized
//! Approach to Emulating Non-Ideality in Memristive Xbars using Neural
//! Networks* (Chakraborty et al., DAC 2020):
//!
//! 1. **Dataset generation** ([`dataset`]): exhaustive sampling of the
//!    `(V, G)` space with stratified sparsity (bit-sliced DNN workloads
//!    are highly sparse), labelled by the circuit simulator's
//!    `f_R(V, G) = I_ideal / I_non_ideal` distortion ratio.
//! 2. **The surrogate** ([`Geniex`]): a two-layer MLP
//!    `(N·M + N) × P × M` (inputs: the voltage vector concatenated
//!    with the flattened conductance matrix, both normalized to
//!    `[0, 1]`; output: `f_R` per bit line). Predicting the *ratio*
//!    instead of the current avoids asking a linear network to learn a
//!    multiplicative interaction — the paper's key formulation insight.
//! 3. **Fast forward** ([`GeniexTile`]): since `G` is fixed once a tile
//!    is programmed, the hidden pre-activation contribution of the `G`
//!    input block is precomputed, reducing each surrogate MVM to two
//!    small GEMVs. This is what makes the functional simulator usable.
//! 4. **Benchmarking** ([`benchmark`]): the Fig. 5 protocol — NF RMSE
//!    of the surrogate and of the analytical baseline against the
//!    circuit ground truth on a held-out validation set.
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), geniex::GeniexError> {
//! use geniex::{dataset::DatasetConfig, Geniex, TrainConfig};
//! use xbar::CrossbarParams;
//!
//! let params = CrossbarParams::builder(4, 4).build()?;
//! let data = geniex::dataset::generate(&params, &DatasetConfig {
//!     samples: 64, seed: 1, ..DatasetConfig::default()
//! })?;
//! let mut surrogate = Geniex::new(&params, 32, 7)?;
//! surrogate.train(&data, &TrainConfig { epochs: 30, ..TrainConfig::default() })?;
//! let v = vec![params.v_supply; 4];
//! let g = xbar::ConductanceMatrix::uniform(4, 4, params.g_on());
//! let currents = surrogate.predict_currents(&v, &g)?;
//! assert_eq!(currents.len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod benchmark;
pub mod dataset;
mod error;
mod fast;
mod models;
mod surrogate;

pub use error::GeniexError;
pub use fast::GeniexTile;
pub use models::{CrossbarModel, GeniexModel, IdealModel, LinearAnalyticalModel, TrueCircuitModel};
pub use surrogate::{Geniex, Normalizer, TrainConfig, TrainingReport};

use std::fmt;

/// Errors produced by the linear-algebra kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries a human-readable description of the mismatch, e.g.
    /// `"matvec: matrix is 4x3 but vector has length 2"`.
    ShapeMismatch(String),
    /// A matrix that must be square was not.
    NotSquare { rows: usize, cols: usize },
    /// A direct solve hit a (numerically) singular pivot.
    Singular { pivot_index: usize },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        iterations: usize,
        residual: f64,
        tolerance: f64,
    },
    /// A triplet referenced a row/column outside the declared dimensions.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
    },
    /// An input contained a NaN or infinity where a finite value is required.
    NonFinite(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square but is {rows}x{cols}")
            }
            LinalgError::Singular { pivot_index } => {
                write!(f, "matrix is singular at pivot {pivot_index}")
            }
            LinalgError::NoConvergence {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e}, tolerance {tolerance:.3e})"
            ),
            LinalgError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {rows}x{cols} matrix"
            ),
            LinalgError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<LinalgError> = vec![
            LinalgError::ShapeMismatch("a vs b".into()),
            LinalgError::NotSquare { rows: 2, cols: 3 },
            LinalgError::Singular { pivot_index: 1 },
            LinalgError::NoConvergence {
                iterations: 10,
                residual: 1.0,
                tolerance: 0.1,
            },
            LinalgError::IndexOutOfBounds {
                row: 5,
                col: 5,
                rows: 2,
                cols: 2,
            },
            LinalgError::NonFinite("rhs".into()),
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}

//! Dense and sparse linear-algebra substrate for the GENIEx reproduction.
//!
//! This crate provides exactly the numerical kernels the rest of the
//! workspace needs, implemented from scratch:
//!
//! * [`Mat`] — a dense, row-major `f64` matrix with the usual products,
//!   used by the analytical crossbar model and small dense solves.
//! * [`CsrMatrix`] — a compressed-sparse-row matrix assembled from
//!   triplets, used for the circuit solver's Jacobian.
//! * [`conjugate_gradient`] — Jacobi-preconditioned CG for symmetric
//!   positive-definite systems (the linearized crossbar Laplacian).
//! * [`LuDecomposition`] — dense LU with partial pivoting for the
//!   analytical model's effective-matrix extraction.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), linalg::LinalgError> {
//! use linalg::{CsrMatrix, conjugate_gradient, CgOptions};
//!
//! // 2x2 SPD system: [[4, 1], [1, 3]] x = [1, 2]
//! let mut triplets = linalg::TripletMatrix::new(2, 2);
//! triplets.add(0, 0, 4.0);
//! triplets.add(0, 1, 1.0);
//! triplets.add(1, 0, 1.0);
//! triplets.add(1, 1, 3.0);
//! let a = CsrMatrix::from_triplets(&triplets)?;
//! let sol = conjugate_gradient(&a, &[1.0, 2.0], &CgOptions::default())?;
//! assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-9);
//! assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod cg;
mod error;
mod lu;
mod mat;
mod sparse;
pub mod vec_ops;

pub use cg::{conjugate_gradient, CgOptions, CgSolution};
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use mat::Mat;
pub use sparse::{CsrMatrix, TripletMatrix};

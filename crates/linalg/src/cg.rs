use crate::vec_ops::{all_finite, axpy, dot, norm2, xpby};
use crate::{CsrMatrix, LinalgError};

/// Options controlling [`conjugate_gradient`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance: converged when
    /// `||b - A x|| <= tolerance * ||b||` (absolute when `||b|| == 0`).
    pub tolerance: f64,
    /// Hard iteration cap; `None` means `10 * n + 100`.
    pub max_iterations: Option<usize>,
    /// Initial guess; `None` means the zero vector.
    pub initial_guess: Option<Vec<f64>>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: None,
            initial_guess: None,
        }
    }
}

/// Result of a converged CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final (true, recomputed) residual norm `||b - A x||`.
    pub residual: f64,
}

/// Solves `A x = b` for symmetric positive-definite `A` using
/// Jacobi-preconditioned conjugate gradients.
///
/// The linearized crossbar circuit produces a weighted graph Laplacian
/// plus a positive diagonal, which is SPD, so CG is the natural solver.
/// The Jacobi (diagonal) preconditioner is important here because wire
/// conductances (1/2.5 Ω) and device conductances (≈ 1/100 kΩ) differ by
/// five orders of magnitude.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is not square.
/// * [`LinalgError::ShapeMismatch`] if `b` or the initial guess has the
///   wrong length.
/// * [`LinalgError::NonFinite`] if `b` contains NaN/inf.
/// * [`LinalgError::NoConvergence`] if the tolerance is not reached
///   within the iteration cap.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), linalg::LinalgError> {
/// use linalg::{TripletMatrix, CsrMatrix, conjugate_gradient, CgOptions};
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 2.0);
/// t.add(1, 1, 2.0);
/// let a = CsrMatrix::from_triplets(&t)?;
/// let sol = conjugate_gradient(&a, &[2.0, 4.0], &CgOptions::default())?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-9 && (sol.x[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    options: &CgOptions,
) -> Result<CgSolution, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch(format!(
            "cg: matrix is {n}x{n} but rhs has length {}",
            b.len()
        )));
    }
    if !all_finite(b) {
        return Err(LinalgError::NonFinite("cg right-hand side".into()));
    }

    let max_iterations = options.max_iterations.unwrap_or(10 * n + 100);
    let b_norm = norm2(b);
    // Absolute floor avoids chasing noise when b ~ 0 (all-zero input rows).
    let threshold = if b_norm > 0.0 {
        options.tolerance * b_norm
    } else {
        options.tolerance
    };

    let mut x = match &options.initial_guess {
        Some(guess) => {
            if guess.len() != n {
                return Err(LinalgError::ShapeMismatch(format!(
                    "cg: initial guess has length {} but system is {n}x{n}",
                    guess.len()
                )));
            }
            guess.clone()
        }
        None => vec![0.0; n],
    };

    // Jacobi preconditioner: M^-1 = 1/diag(A). Fall back to identity on
    // zero diagonal entries (should not happen for SPD inputs).
    let diag = a.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| {
            if d.abs() > f64::MIN_POSITIVE {
                1.0 / d
            } else {
                1.0
            }
        })
        .collect();

    // One structure inspection, then every product in the iteration
    // below runs the prepared layout (SELL-8 for the short-row circuit
    // Jacobians — bit-identical to `matvec_into` there).
    let plan = a.spmv_plan();

    let mut r = vec![0.0; n];
    plan.apply(&x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    while iterations < max_iterations {
        if norm2(&r) <= threshold {
            break;
        }
        plan.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Not SPD (or numerically broken down).
            return Err(LinalgError::NoConvergence {
                iterations,
                residual: norm2(&r),
                tolerance: threshold,
            });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        xpby(&z, beta, &mut p);
        iterations += 1;
    }

    // Recompute the true residual: accumulated recurrences can drift.
    let mut true_r = vec![0.0; n];
    plan.apply(&x, &mut true_r);
    for i in 0..n {
        true_r[i] = b[i] - true_r[i];
    }
    let residual = norm2(&true_r);
    if residual > threshold.max(1e-8 * (1.0 + b_norm)) {
        return Err(LinalgError::NoConvergence {
            iterations,
            residual,
            tolerance: threshold,
        });
    }

    Ok(CgSolution {
        x,
        iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [ -1, 2.1, -1 ]: SPD.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 2.1);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        CsrMatrix::from_triplets(&t).unwrap()
    }

    #[test]
    fn solves_diagonal_system() {
        let mut t = TripletMatrix::new(3, 3);
        t.add(0, 0, 1.0);
        t.add(1, 1, 2.0);
        t.add(2, 2, 4.0);
        let a = CsrMatrix::from_triplets(&t).unwrap();
        let sol = conjugate_gradient(&a, &[1.0, 1.0, 1.0], &CgOptions::default()).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
        assert!((sol.x[1] - 0.5).abs() < 1e-9);
        assert!((sol.x[2] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn solves_laplacian_verifies_residual() {
        let n = 64;
        let a = laplacian_1d(n);
        let mut rng = StdRng::seed_from_u64(7);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sol = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let ax = a.matvec(&sol.x).unwrap();
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-7, "row {i}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(8);
        let sol = conjugate_gradient(&a, &[0.0; 8], &CgOptions::default()).unwrap();
        assert!(sol.x.iter().all(|&x| x.abs() < 1e-12));
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn initial_guess_near_solution_converges_fast() {
        let a = laplacian_1d(16);
        let b = vec![1.0; 16];
        let exact = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
        let warm = conjugate_gradient(
            &a,
            &b,
            &CgOptions {
                initial_guess: Some(exact.x.clone()),
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(warm.iterations <= 1);
    }

    #[test]
    fn non_square_rejected() {
        let mut t = TripletMatrix::new(2, 3);
        t.add(0, 0, 1.0);
        let a = CsrMatrix::from_triplets(&t).unwrap();
        assert!(matches!(
            conjugate_gradient(&a, &[1.0, 1.0], &CgOptions::default()),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = laplacian_1d(4);
        assert!(conjugate_gradient(&a, &[1.0], &CgOptions::default()).is_err());
    }

    #[test]
    fn nan_rhs_rejected() {
        let a = laplacian_1d(4);
        assert!(matches!(
            conjugate_gradient(&a, &[1.0, f64::NAN, 0.0, 0.0], &CgOptions::default()),
            Err(LinalgError::NonFinite(_))
        ));
    }

    #[test]
    fn indefinite_matrix_reports_no_convergence() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0);
        let a = CsrMatrix::from_triplets(&t).unwrap();
        // rhs chosen to exercise the negative-curvature direction
        let result = conjugate_gradient(&a, &[0.0, 1.0], &CgOptions::default());
        assert!(matches!(result, Err(LinalgError::NoConvergence { .. })));
    }

    #[test]
    fn iteration_cap_respected() {
        let a = laplacian_1d(128);
        let b = vec![1.0; 128];
        let result = conjugate_gradient(
            &a,
            &b,
            &CgOptions {
                max_iterations: Some(1),
                tolerance: 1e-14,
                ..CgOptions::default()
            },
        );
        assert!(matches!(result, Err(LinalgError::NoConvergence { .. })));
    }

    proptest! {
        /// CG on random SPD systems (A = L + diag) recovers solutions that
        /// satisfy the system to tolerance.
        #[test]
        fn random_spd_systems(seed in 0u64..64) {
            let n = 24;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.add(i, i, 2.0 + rng.gen_range(0.0..2.0));
                if i + 1 < n {
                    let w = -rng.gen_range(0.0..1.0);
                    t.add(i, i + 1, w);
                    t.add(i + 1, i, w);
                }
            }
            let a = CsrMatrix::from_triplets(&t).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sol = conjugate_gradient(&a, &b, &CgOptions::default()).unwrap();
            let ax = a.matvec(&sol.x).unwrap();
            for i in 0..n {
                prop_assert!((ax[i] - b[i]).abs() < 1e-6);
            }
        }
    }
}

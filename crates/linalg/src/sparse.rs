use crate::LinalgError;

/// A coordinate-format (COO) accumulator used to assemble sparse matrices.
///
/// Circuit stamping naturally produces duplicate entries (several branches
/// touching the same node pair); duplicates are summed when converting to
/// [`CsrMatrix`], which is exactly the stamping semantics a modified-nodal
/// -analysis assembler needs.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), linalg::LinalgError> {
/// use linalg::{TripletMatrix, CsrMatrix};
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.add(0, 0, 1.0);
/// t.add(0, 0, 2.0); // duplicate: summed
/// let a = CsrMatrix::from_triplets(&t)?;
/// assert_eq!(a.matvec(&[1.0, 0.0])?, vec![3.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty accumulator for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty accumulator with room for `capacity` entries.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of (possibly duplicate) stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates are summed on conversion.
    ///
    /// Out-of-bounds indices are detected at conversion time so that hot
    /// assembly loops stay branch-light.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.entries.push((row, col, value));
    }

    /// Clears all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over raw (row, col, value) entries.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }
}

/// A compressed-sparse-row matrix.
///
/// Built from a [`TripletMatrix`]; rows are stored contiguously with
/// column-sorted entries, duplicates summed. This is the Jacobian storage
/// for the crossbar circuit solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from triplets, summing duplicates.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::IndexOutOfBounds`] if any triplet lies outside the
    ///   declared dimensions.
    /// * [`LinalgError::NonFinite`] if any value is NaN or infinite.
    pub fn from_triplets(t: &TripletMatrix) -> Result<Self, LinalgError> {
        for &(r, c, v) in t.iter() {
            if r >= t.rows || c >= t.cols {
                return Err(LinalgError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows: t.rows,
                    cols: t.cols,
                });
            }
            if !v.is_finite() {
                return Err(LinalgError::NonFinite(format!(
                    "triplet at ({r}, {c}) is {v}"
                )));
            }
        }

        // Count entries per row, then bucket and sort each row by column,
        // merging duplicates.
        let mut counts = vec![0usize; t.rows];
        for &(r, _, _) in t.iter() {
            counts[r] += 1;
        }
        let mut row_start = vec![0usize; t.rows + 1];
        for i in 0..t.rows {
            row_start[i + 1] = row_start[i] + counts[i];
        }
        let mut scratch_cols = vec![0usize; t.len()];
        let mut scratch_vals = vec![0.0f64; t.len()];
        let mut cursor = row_start.clone();
        for &(r, c, v) in t.iter() {
            let pos = cursor[r];
            scratch_cols[pos] = c;
            scratch_vals[pos] = v;
            cursor[r] += 1;
        }

        let mut row_ptr = Vec::with_capacity(t.rows + 1);
        let mut col_idx = Vec::with_capacity(t.len());
        let mut values = Vec::with_capacity(t.len());
        row_ptr.push(0);
        let mut perm: Vec<usize> = Vec::new();
        for r in 0..t.rows {
            let lo = row_start[r];
            let hi = row_start[r + 1];
            perm.clear();
            perm.extend(lo..hi);
            perm.sort_unstable_by_key(|&k| scratch_cols[k]);
            let mut k = 0;
            while k < perm.len() {
                let c = scratch_cols[perm[k]];
                let mut v = scratch_vals[perm[k]];
                k += 1;
                while k < perm.len() && scratch_cols[perm[k]] == c {
                    v += scratch_vals[perm[k]];
                    k += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }

        Ok(CsrMatrix {
            rows: t.rows,
            cols: t.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "csr matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix-vector product writing into a caller-provided buffer
    /// (allocation-free hot path for iterative solvers).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`;
    /// the buffer sizes are fixed by the solver that owns them.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "csr matvec_into: x length");
        assert_eq!(y.len(), self.rows, "csr matvec_into: y length");
        kernels::spmv_csr(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// Builds a prepared [`kernels::SpmvPlan`] for this matrix.
    ///
    /// The plan inspects the sparsity structure once (choosing SELL-8
    /// packing, the per-row lane dispatch, or the naive loop — see the
    /// kernel crate's docs) and is then amortized across every product,
    /// which is how [`conjugate_gradient`](crate::conjugate_gradient)
    /// uses it: one plan per solve, one apply per iteration. For finite
    /// inputs `plan.apply` is bit-identical to [`Self::matvec_into`]
    /// whenever all rows hold ≤ 8 entries (always true for the
    /// pentadiagonal-ish circuit Jacobians).
    pub fn spmv_plan(&self) -> kernels::SpmvPlan {
        kernels::SpmvPlan::new(&self.row_ptr, &self.col_idx, &self.values, self.cols)
    }

    /// Returns the diagonal as a vector (structural zeros become 0.0).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        let mut d = vec![0.0; n];
        for (r, entry) in d.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    *entry = self.values[k];
                    break;
                }
            }
        }
        d
    }

    /// Returns the stored value at `(row, col)`, or 0.0 if structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "csr get out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(off) => self.values[lo + off],
            Err(_) => 0.0,
        }
    }

    /// Checks symmetry within tolerance `tol` (absolute, element-wise).
    ///
    /// Used by tests to validate that stamped circuit Jacobians are
    /// symmetric, which CG requires.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if (self.values[k] - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_csr() -> CsrMatrix {
        // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]]
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 2.0);
        }
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        t.add(1, 2, -1.0);
        t.add(2, 1, -1.0);
        CsrMatrix::from_triplets(&t).unwrap()
    }

    #[test]
    fn assembly_sums_duplicates() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.5);
        t.add(0, 0, 0.5);
        t.add(1, 1, 1.0);
        let a = CsrMatrix::from_triplets(&t).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), 2.0);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(2, 0, 1.0);
        assert!(matches!(
            CsrMatrix::from_triplets(&t),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, f64::NAN);
        assert!(matches!(
            CsrMatrix::from_triplets(&t),
            Err(LinalgError::NonFinite(_))
        ));
    }

    #[test]
    fn matvec_matches_dense() {
        let a = small_csr();
        let y = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn matvec_shape_check() {
        let a = small_csr();
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn diagonal_extraction() {
        let a = small_csr();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn get_structural_zero() {
        let a = small_csr();
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn symmetry_check() {
        let a = small_csr();
        assert!(a.is_symmetric(0.0));

        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        let b = CsrMatrix::from_triplets(&t).unwrap();
        assert!(!b.is_symmetric(1e-12));
    }

    #[test]
    fn empty_matrix() {
        let t = TripletMatrix::new(0, 0);
        let a = CsrMatrix::from_triplets(&t).unwrap();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[]).unwrap(), Vec::<f64>::new());
    }

    proptest! {
        /// CSR matvec must agree with a dense reference built from the
        /// same triplets.
        #[test]
        fn csr_matches_dense_reference(
            entries in proptest::collection::vec((0usize..6, 0usize..6, -5.0f64..5.0), 0..40),
            x in proptest::collection::vec(-5.0f64..5.0, 6),
        ) {
            let mut t = TripletMatrix::new(6, 6);
            let mut dense = vec![0.0f64; 36];
            for (r, c, v) in entries {
                t.add(r, c, v);
                dense[r * 6 + c] += v;
            }
            let a = CsrMatrix::from_triplets(&t).unwrap();
            let y = a.matvec(&x).unwrap();
            for r in 0..6 {
                let expect: f64 = (0..6).map(|c| dense[r * 6 + c] * x[c]).sum();
                prop_assert!((y[r] - expect).abs() < 1e-9);
            }
        }
    }
}

use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// `Mat` is the workhorse for the analytical crossbar model's effective
/// matrices and for small dense solves. It deliberately keeps a compact
/// API: construction, element access, and the products the workspace
/// needs.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), linalg::LinalgError> {
/// use linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let y = a.matvec(&[1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the rows have unequal
    /// lengths or `rows` is empty with no deducible width.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Ok(Mat::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::ShapeMismatch(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Mat {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Mat { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            y[i] = crate::vec_ops::dot(self.row(i), x);
        }
        Ok(y)
    }

    /// Matrix-matrix product `A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &Mat) -> Result<Mat, LinalgError> {
        if self.cols != b.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, b.rows, b.cols
            )));
        }
        let mut out = Mat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                for j in 0..brow.len() {
                    orow[j] += aik * brow[j];
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn norm_inf(&self) -> f64 {
        crate::vec_ops::norm_inf(&self.data)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let id = Mat::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(id.matvec(&x).unwrap(), x);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Mat::from_rows(&[&[1.0, 2.0], &[1.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch(_)));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Mat::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn matvec_shape_check() {
        let a = Mat::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Mat::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn display_not_empty() {
        let a = Mat::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |v| Mat::from_vec(rows, cols, v).unwrap())
    }

    proptest! {
        #[test]
        fn matmul_associative_with_vector(
            a in arb_mat(3, 4),
            b in arb_mat(4, 2),
            x in proptest::collection::vec(-10.0f64..10.0, 2),
        ) {
            // (A*B)*x == A*(B*x)
            let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
            let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_swaps_matvec(
            a in arb_mat(3, 3),
            x in proptest::collection::vec(-10.0f64..10.0, 3),
            y in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            // y' (A x) == x' (A' y)
            let ax = a.matvec(&x).unwrap();
            let aty = a.transpose().matvec(&y).unwrap();
            let lhs = crate::vec_ops::dot(&y, &ax);
            let rhs = crate::vec_ops::dot(&x, &aty);
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }
}

use crate::{LinalgError, Mat};

/// Dense LU decomposition with partial pivoting.
///
/// The analytical crossbar model extracts an effective matrix `M(G)` by
/// solving the *same* linear circuit against many right-hand sides (one
/// unit vector per input row). Factoring once and back-substituting per
/// RHS makes that extraction `O(n^3 + k n^2)` instead of `O(k n^3)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), linalg::LinalgError> {
/// use linalg::{Mat, LuDecomposition};
///
/// let a = Mat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Mat,
    /// Row permutation: row `i` of the factored matrix came from
    /// `pivots[i]` of the original.
    pivots: Vec<usize>,
}

impl LuDecomposition {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is numerically zero.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/inf.
    pub fn new(a: &Mat) -> Result<Self, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !crate::vec_ops::all_finite(a.as_slice()) {
            return Err(LinalgError::NonFinite("lu input matrix".into()));
        }

        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < f64::EPSILON * 16.0 {
                return Err(LinalgError::Singular { pivot_index: k });
            }
            if p != k {
                pivots.swap(k, p);
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }

        Ok(LuDecomposition { lu, pivots })
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "lu solve: system is {n}x{n} but rhs has length {}",
                b.len()
            )));
        }
        // Apply permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves against many right-hand sides given as columns of `b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Mat) -> Result<Mat, LinalgError> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch(format!(
                "lu solve_matrix: system is {0}x{0} but rhs has {1} rows",
                self.dim(),
                b.rows()
            )));
        }
        let mut out = Mat::zeros(b.rows(), b.cols());
        let mut col = vec![0.0; b.rows()];
        for j in 0..b.cols() {
            for i in 0..b.rows() {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col)?;
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_2x2() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 3.0).abs() < 1e-12);
        assert!((ax[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Mat::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NonFinite(_))
        ));
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = Mat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let inv = lu.solve_matrix(&Mat::identity(2)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rhs_length_validated() {
        let lu = LuDecomposition::new(&Mat::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Mat::zeros(2, 2)).is_err());
    }

    proptest! {
        /// Random diagonally-dominant systems solve to high accuracy.
        #[test]
        fn random_dd_systems(seed in 0u64..48) {
            let n = 12;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
            for i in 0..n {
                a[(i, i)] += n as f64; // force diagonal dominance
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let lu = LuDecomposition::new(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let ax = a.matvec(&x).unwrap();
            for i in 0..n {
                prop_assert!((ax[i] - b[i]).abs() < 1e-9);
            }
        }
    }
}

//! Free functions over `&[f64]` slices used throughout the workspace.
//!
//! These are deliberately slice-based (rather than methods on a vector
//! newtype) so callers can apply them to any contiguous storage.

/// Dot product of two equal-length slices, on the deterministic
/// 8-lane kernel spec ([`kernels::dot_f64`]).
///
/// # Panics
///
/// Panics if the slices have different lengths; callers in this workspace
/// always pass equal-length buffers, so this indicates an internal bug.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    kernels::dot_f64(a, b)
}

/// Euclidean norm `||a||_2`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm `max_i |a_i|` (0 for an empty slice).
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    kernels::axpy_f64(alpha, x, y);
}

/// `y = x + beta * y` in place (used by CG direction updates).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    kernels::xpby_f64(x, beta, y);
}

/// Element-wise `a - b` into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Root-mean-square error between two equal-length slices.
///
/// Returns 0 for empty slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum_sq / a.len() as f64).sqrt()
}

/// True if every element is finite.
#[inline]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn xpby_updates_direction() {
        let mut y = vec![1.0, 2.0];
        xpby(&[10.0, 10.0], 0.5, &mut y);
        assert_eq!(y, vec![10.5, 11.0]);
    }

    #[test]
    fn rmse_zero_for_equal() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors are [3, 4] -> mean square 12.5 -> rmse sqrt(12.5)
        assert!((rmse(&[3.0, 0.0], &[0.0, 4.0]) - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn all_finite_flags_nan_and_inf() {
        assert!(all_finite(&[0.0, 1.0]));
        assert!(!all_finite(&[f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn dot_commutative(a in proptest::collection::vec(-1e3f64..1e3, 0..32)) {
            let b: Vec<f64> = a.iter().rev().copied().collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-6);
        }

        #[test]
        fn norm2_nonnegative_and_scales(
            a in proptest::collection::vec(-1e3f64..1e3, 1..32),
            k in -10.0f64..10.0,
        ) {
            let scaled: Vec<f64> = a.iter().map(|x| k * x).collect();
            prop_assert!(norm2(&a) >= 0.0);
            prop_assert!((norm2(&scaled) - k.abs() * norm2(&a)).abs() < 1e-6 * (1.0 + norm2(&a)));
        }

        #[test]
        fn rmse_symmetric(
            a in proptest::collection::vec(-1e3f64..1e3, 1..32),
        ) {
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            prop_assert!((rmse(&a, &b) - rmse(&b, &a)).abs() < 1e-9);
            // uniform shift of 1 -> rmse exactly 1
            prop_assert!((rmse(&a, &b) - 1.0).abs() < 1e-9);
        }
    }
}

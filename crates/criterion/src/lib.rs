//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree
//! package provides the subset of the criterion API the workspace's
//! benches use. Timing methodology is deliberately simple — warm up,
//! run `sample_size` samples of auto-calibrated batches, report the
//! median ns/iteration — which is enough for the coarse
//! regression-spotting these benches exist for. It honors the standard
//! `cargo bench -- <filter>` argument.
//!
//! When `GENIEX_BENCH_OUT` names a file, every measurement is also
//! appended there as `label,median_ns` CSV rows so scripted consumers
//! (the kernel-bench summary, CI artifacts) don't have to parse the
//! human-readable output.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            label: value.to_string(),
        }
    }
}

/// Per-iteration timing loop handle.
pub struct Bencher {
    sample_size: usize,
    /// Filled by `iter`: median nanoseconds per iteration.
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the batch size so one sample
    /// takes a measurable amount of time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes >= 1 ms (cap
        // the calibration phase at ~50 ms).
        let mut batch = 1u64;
        let calibration_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1)
                || calibration_start.elapsed() > Duration::from_millis(50)
                || batch >= 1 << 20
            {
                break;
            }
            batch *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run(name.to_string(), f);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut bencher);
        let ns = bencher.median_ns;
        let human = if ns < 1e3 {
            format!("{ns:.1} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else {
            format!("{:.3} ms", ns / 1e6)
        };
        println!("{label:<56} {human:>12}/iter");
        if let Ok(path) = std::env::var("GENIEX_BENCH_OUT") {
            if !path.is_empty() {
                append_csv(&path, &label, ns);
            }
        }
    }
}

/// Appends one `label,median_ns` row to the CSV at `path`, creating it
/// (with a header) on first use. Failures are reported to stderr but
/// never abort a bench run.
fn append_csv(path: &str, label: &str, median_ns: f64) {
    let write = || -> std::io::Result<()> {
        let existed = std::path::Path::new(path).exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if !existed {
            writeln!(f, "label,median_ns")?;
        }
        writeln!(f, "{label},{median_ns:.1}")
    };
    if let Err(e) = write() {
        eprintln!("warning: GENIEX_BENCH_OUT={path}: {e}");
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run(label, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run(label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Re-export so `criterion::black_box` also works.
pub use std::hint::black_box;

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.bench_function("fast", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_with_input(BenchmarkId::new("sub", 8), &8usize, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn harness_runs_everything() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        target(&mut c);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("nomatch".into()),
        };
        // Would take noticeable time if not filtered; mainly asserts it
        // doesn't panic when everything is skipped.
        target(&mut c);
    }

    criterion_group!(smoke, target);

    #[test]
    fn group_macro_expands() {
        // The group entry point must be callable (it reads argv for a
        // filter; under `cargo test` that's the test filter, which is
        // fine — worst case it skips benches).
        let _ = smoke;
    }
}

//! Scoped work-stealing thread pool for the GENIEx workspace.
//!
//! The stack's cost is dominated by embarrassingly parallel loops:
//! independent Newton–Raphson crossbar solves during dataset/sweep
//! generation, per-tile/per-bit-slice MVMs in the functional
//! simulator, and per-sample gradient work during training. This crate
//! parallelizes those loops with plain `std::thread` primitives — the
//! build environment is offline, so like the in-tree `rand`/`proptest`
//! stand-ins it depends on nothing outside std (plus `telemetry` for
//! counters).
//!
//! # Determinism contract
//!
//! Every combinator here is *bit-identical across thread counts*:
//!
//! * [`par_map`]/[`ThreadPool::par_map`] evaluate a pure function per
//!   element and collect results **by index**, so the output is the
//!   same `Vec` the serial `map` would produce.
//! * [`par_reduce`] folds chunk results **in chunk order** (a strict
//!   left fold), so even non-associative reductions (f32/f64 sums)
//!   give one answer for any `GENIEX_THREADS`. The answer depends on
//!   the `grain` (chunk size) — callers must pass a fixed grain, never
//!   one derived from the thread count.
//! * [`ThreadPool::scope`]/[`par_chunks_mut`] write disjoint output
//!   regions; any schedule produces the same memory contents.
//!
//! Callers keep RNG streams deterministic by drawing all random inputs
//! serially *before* fanning out (see `xbar::sweep`), so parallel
//! results are byte-identical to the historical serial code, not just
//! internally consistent.
//!
//! # Pool architecture
//!
//! One queue per worker ([`Mutex<VecDeque>`]); submissions are
//! distributed round-robin; an idle worker pops its own queue from the
//! front and steals from the *back* of other queues. Workers park on a
//! condvar guarded by a pending-job count. A thread that blocks in
//! [`ThreadPool::scope`] waiting for its tasks *helps* — it runs queued
//! jobs (from any scope) while it waits — which makes nested
//! scopes/`par_map`-inside-`par_map` deadlock-free: the bottom of any
//! nesting chain is a plain task that runs to completion.
//!
//! A task panic is caught on the worker, carried to the owning scope,
//! and resumed on the caller once all of the scope's tasks finished —
//! the same contract as `std::thread::scope`.
//!
//! # Example
//!
//! ```
//! let squares = parallel::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Parses a thread-count override the way `GENIEX_THREADS` is parsed:
/// a positive integer wins, anything else falls back.
fn parse_threads(value: Option<&str>, fallback: usize) -> usize {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(fallback)
}

/// The pool size the `GENIEX_THREADS` environment variable requests:
/// the variable's value if it is a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_threads(std::env::var("GENIEX_THREADS").ok().as_deref(), fallback)
}

/// Per-pool telemetry handles (resolved once at pool construction).
struct PoolMetrics {
    tasks: Arc<telemetry::Counter>,
    steals: Arc<telemetry::Counter>,
    queue_depth: Arc<telemetry::Gauge>,
    task_seconds: Arc<telemetry::Histogram>,
    /// Number of tasks executing right now (busy workers + helping
    /// callers) — the pool-utilization gauge.
    active: Arc<telemetry::Gauge>,
    /// Per-worker accounting, indexed by the worker's home queue.
    worker_tasks: Vec<Arc<telemetry::Counter>>,
    worker_steals: Vec<Arc<telemetry::Counter>>,
    worker_idle_waits: Vec<Arc<telemetry::Counter>>,
    /// Trace event names, preformatted so the per-task trace hooks
    /// never allocate.
    task_trace_name: String,
    active_trace_name: String,
    steal_trace_name: String,
}

impl PoolMetrics {
    fn new(name: &str, workers: usize) -> Self {
        let per_worker = |what: &str| {
            (0..workers)
                .map(|w| telemetry::counter(&format!("parallel.{name}.worker{w}.{what}")))
                .collect()
        };
        PoolMetrics {
            tasks: telemetry::counter(&format!("parallel.{name}.tasks")),
            steals: telemetry::counter(&format!("parallel.{name}.steals")),
            queue_depth: telemetry::gauge(&format!("parallel.{name}.queue_depth")),
            task_seconds: telemetry::histogram(
                &format!("parallel.{name}.task_seconds"),
                &telemetry::exponential_buckets(1e-6, 4.0, 12),
            ),
            active: telemetry::gauge(&format!("parallel.{name}.active_workers")),
            worker_tasks: per_worker("tasks"),
            worker_steals: per_worker("steals"),
            worker_idle_waits: per_worker("idle_waits"),
            task_trace_name: format!("parallel.{name}.task"),
            active_trace_name: format!("parallel.{name}.active_workers"),
            steal_trace_name: format!("parallel.{name}.steal"),
        }
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker; owners pop the front, thieves the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Queued-but-not-yet-taken job count, guarded by the mutex the
    /// idle workers park on.
    pending_jobs: Mutex<usize>,
    work_available: Condvar,
    shutdown: AtomicBool,
    next_queue: AtomicUsize,
    metrics: PoolMetrics,
}

impl Shared {
    fn push(&self, job: Job) {
        let idx = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[idx].lock().unwrap().push_back(job);
        {
            let mut pending = self.pending_jobs.lock().unwrap();
            *pending += 1;
        }
        self.work_available.notify_one();
        if telemetry::enabled() {
            self.metrics.queue_depth.add(1.0);
        }
    }

    /// Takes one queued job: the caller's own queue first (FIFO), then
    /// steals the coldest job (back of the deque) from the others.
    /// `worker` identifies a pool worker for per-worker accounting;
    /// `None` marks a caller helping from [`ThreadPool::wait_scope`].
    fn take(&self, home: usize, worker: Option<usize>) -> Option<Job> {
        let n = self.queues.len();
        for k in 0..n {
            let idx = (home + k) % n;
            let job = {
                let mut q = self.queues[idx].lock().unwrap();
                if k == 0 {
                    q.pop_front()
                } else {
                    q.pop_back()
                }
            };
            if let Some(job) = job {
                {
                    let mut pending = self.pending_jobs.lock().unwrap();
                    *pending = pending.saturating_sub(1);
                }
                if telemetry::enabled() {
                    self.metrics.queue_depth.add(-1.0);
                    if k != 0 {
                        self.metrics.steals.inc();
                        if let Some(w) = worker {
                            self.metrics.worker_steals[w].inc();
                        }
                    }
                }
                if k != 0 && telemetry::trace_active() {
                    telemetry::trace_instant(
                        &self.metrics.steal_trace_name,
                        vec![
                            ("from".to_string(), telemetry::Json::from(idx)),
                            (
                                "by".to_string(),
                                worker.map_or(telemetry::Json::Str("caller".into()), |w| {
                                    telemetry::Json::from(w)
                                }),
                            ),
                        ],
                    );
                }
                return Some(job);
            }
        }
        None
    }

    /// Runs one job. Scope-spawned jobs catch their own panics; the
    /// extra guard here keeps a worker alive even if bookkeeping in a
    /// foreign job unwinds.
    fn run(&self, job: Job, worker: Option<usize>) {
        let enabled = telemetry::enabled();
        let tracing = telemetry::trace_active();
        if !enabled && !tracing {
            let _ = catch_unwind(AssertUnwindSafe(job));
            return;
        }
        if enabled {
            self.metrics.tasks.inc();
            if let Some(w) = worker {
                self.metrics.worker_tasks[w].inc();
            }
            self.metrics.active.add(1.0);
        }
        if tracing {
            telemetry::trace_counter(&self.metrics.active_trace_name, self.metrics.active.get());
            telemetry::trace_begin(&self.metrics.task_trace_name, Vec::new());
        }
        let start = Instant::now();
        let _ = catch_unwind(AssertUnwindSafe(job));
        if enabled {
            self.metrics
                .task_seconds
                .observe(start.elapsed().as_secs_f64());
            self.metrics.active.add(-1.0);
        }
        if tracing {
            telemetry::trace_end(&self.metrics.task_trace_name, Vec::new());
            telemetry::trace_counter(&self.metrics.active_trace_name, self.metrics.active.get());
        }
    }

    fn worker_loop(self: Arc<Self>, home: usize) {
        loop {
            if let Some(job) = self.take(home, Some(home)) {
                self.run(job, Some(home));
                continue;
            }
            let mut pending = self.pending_jobs.lock().unwrap();
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if *pending > 0 {
                    break;
                }
                if telemetry::enabled() {
                    self.metrics.worker_idle_waits[home].inc();
                }
                pending = self.work_available.wait(pending).unwrap();
            }
        }
    }
}

/// Completion state of one [`ThreadPool::scope`].
struct ScopeState {
    /// Spawned-but-unfinished task count.
    pending_tasks: Mutex<usize>,
    all_done: Condvar,
    /// First panic payload captured from a task, if any.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending_tasks: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// A scope in which borrowed tasks can be spawned; created by
/// [`ThreadPool::scope`]. Mirrors `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    /// Invariance over `'scope`, exactly as in `std::thread::scope`.
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope. On a
    /// one-thread pool the task runs inline, giving exactly the serial
    /// execution order.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.workers.is_empty() {
            f();
            return;
        }
        {
            let mut pending = self.state.pending_tasks.lock().unwrap();
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            let mut pending = state.pending_tasks.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.all_done.notify_all();
            }
        });
        // SAFETY: the job borrows data alive for `'scope`. It is only
        // ever run before `ThreadPool::scope` returns: `scope` waits
        // (in `wait_scope`) until `pending_tasks` reaches zero — also
        // on the panic path — and each job decrements that count only
        // after the user closure finished. Erasing the lifetime to
        // `'static` therefore never lets the closure outlive its
        // borrows.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.shared.push(job);
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Most code uses the process-wide [`global`] pool (sized by
/// `GENIEX_THREADS`); dedicated pools exist so benchmarks can compare
/// thread counts within one process.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (0 is treated as 1). A
    /// one-thread pool spawns no workers at all: every combinator runs
    /// inline on the caller.
    pub fn new(threads: usize) -> Self {
        Self::with_name(threads, "pool")
    }

    /// Like [`ThreadPool::new`] with a telemetry prefix: metrics are
    /// registered as `parallel.<name>.{tasks,steals,queue_depth,
    /// task_seconds,active_workers}` plus per-worker
    /// `parallel.<name>.worker<i>.{tasks,steals,idle_waits}`; while a
    /// trace records, each task contributes a begin/end pair and an
    /// `active_workers` counter track.
    pub fn with_name(threads: usize, name: &str) -> Self {
        let threads = threads.max(1);
        let worker_count = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            queues: (0..worker_count.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending_jobs: Mutex::new(0),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
            metrics: PoolMetrics::new(name, worker_count.max(1)),
        });
        let workers = (0..worker_count)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("geniex-{name}-{home}"))
                    .spawn(move || shared.worker_loop(home))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// The configured pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowed tasks, and
    /// returns once every spawned task finished. While waiting, the
    /// calling thread runs queued jobs itself (so nested scopes cannot
    /// deadlock). If `f` or any task panicked, the panic is resumed
    /// here — but only after all tasks completed, so borrows stay
    /// sound.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            scope_marker: PhantomData,
            env_marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&state);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Blocks until the scope's tasks are done, running queued jobs
    /// (from any scope) in the meantime.
    fn wait_scope(&self, state: &ScopeState) {
        loop {
            if *state.pending_tasks.lock().unwrap() == 0 {
                return;
            }
            if let Some(job) = self.shared.take(0, None) {
                self.shared.run(job, None);
                continue;
            }
            let pending = state.pending_tasks.lock().unwrap();
            if *pending == 0 {
                return;
            }
            // The remaining tasks are running on other threads. Wake on
            // completion; the timeout lets us resume helping if more
            // work lands in the queues while we sleep.
            let _ = state
                .all_done
                .wait_timeout(pending, Duration::from_millis(1))
                .unwrap();
        }
    }

    /// The chunk size [`ThreadPool::par_map`] uses: a few tasks per
    /// worker so stealing can balance uneven costs. Only valid for
    /// order-insensitive combinators (`par_map` collects by index);
    /// ordered reductions need a caller-fixed grain.
    fn auto_grain(&self, n: usize) -> usize {
        n.div_ceil(self.threads * 4).max(1)
    }

    /// Maps `f` over `items` in parallel, collecting results by index.
    /// Bit-identical to `items.iter().map(f).collect()` for pure `f`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_grained(items, self.auto_grain(items.len()), f)
    }

    /// [`ThreadPool::par_map`] with an explicit chunk size (`grain`
    /// consecutive items per task).
    pub fn par_map_grained<T, R, F>(&self, items: &[T], grain: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let grain = grain.max(1);
        if self.threads <= 1 || n <= grain {
            return items.iter().map(f).collect();
        }
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let f = &f;
        self.scope(|s| {
            for (chunk_in, chunk_out) in items.chunks(grain).zip(out.chunks_mut(grain)) {
                s.spawn(move || {
                    for (item, slot) in chunk_in.iter().zip(chunk_out.iter_mut()) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("scope waits for every task"))
            .collect()
    }

    /// Calls `f(i)` for every `i in 0..n` in parallel, `grain` indices
    /// per task. `f` must only touch disjoint or synchronized state.
    pub fn par_for<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let grain = grain.max(1);
        if self.threads <= 1 || n <= grain {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            let mut start = 0;
            while start < n {
                let end = (start + grain).min(n);
                s.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
                start = end;
            }
        });
    }

    /// Splits `data` into `chunk`-sized pieces and calls
    /// `f(chunk_index, piece)` for each in parallel. The pieces are
    /// disjoint `&mut` slices, so any schedule writes the same bytes.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk = chunk.max(1);
        if self.threads <= 1 || data.len() <= chunk {
            for (i, piece) in data.chunks_mut(chunk).enumerate() {
                f(i, piece);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for (i, piece) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move || f(i, piece));
            }
        });
    }

    /// Ordered deterministic reduction: maps `grain`-sized chunks of
    /// `items` in parallel, then left-folds the chunk results **in
    /// chunk order** on the calling thread. Returns `None` for empty
    /// input.
    ///
    /// The result is independent of the thread count and of task
    /// scheduling — it depends only on `items` and `grain` — which
    /// makes non-associative folds (floating-point sums) reproducible.
    pub fn par_reduce<T, A, M, O>(
        &self,
        items: &[T],
        grain: usize,
        map_chunk: M,
        fold: O,
    ) -> Option<A>
    where
        T: Sync,
        A: Send,
        M: Fn(&[T]) -> A + Sync,
        O: FnMut(A, A) -> A,
    {
        let grain = grain.max(1);
        let chunks: Vec<&[T]> = items.chunks(grain).collect();
        let partials = self.par_map_grained(&chunks, 1, |chunk| map_chunk(chunk));
        partials.into_iter().reduce(fold)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Pair the flag with the parked workers' mutex so none can
            // re-sleep past the notification.
            let _pending = self.shared.pending_jobs.lock().unwrap();
            self.shared.work_available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// The process-wide pool, created on first use with
/// [`default_threads`] workers (i.e. `GENIEX_THREADS` or the machine's
/// available parallelism).
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::with_name(default_threads(), "global"))
}

/// [`ThreadPool::scope`] on the [`global`] pool.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    global().scope(f)
}

/// [`ThreadPool::par_map`] on the [`global`] pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().par_map(items, f)
}

/// [`ThreadPool::par_map_grained`] on the [`global`] pool.
pub fn par_map_grained<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    global().par_map_grained(items, grain, f)
}

/// [`ThreadPool::par_for`] on the [`global`] pool.
pub fn par_for<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    global().par_for(n, grain, f);
}

/// [`ThreadPool::par_chunks_mut`] on the [`global`] pool.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    global().par_chunks_mut(data, chunk, f);
}

/// [`ThreadPool::par_reduce`] on the [`global`] pool.
pub fn par_reduce<T, A, M, O>(items: &[T], grain: usize, map_chunk: M, fold: O) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(&[T]) -> A + Sync,
    O: FnMut(A, A) -> A,
{
    global().par_reduce(items, grain, map_chunk, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn threads_env_parsing() {
        assert_eq!(parse_threads(Some("4"), 2), 4);
        assert_eq!(parse_threads(Some(" 8 "), 2), 8);
        assert_eq!(parse_threads(Some("0"), 2), 2);
        assert_eq!(parse_threads(Some("-3"), 2), 2);
        assert_eq!(parse_threads(Some("lots"), 2), 2);
        assert_eq!(parse_threads(None, 3), 3);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn par_map_matches_serial_across_pool_sizes() {
        let items: Vec<u64> = (0..137).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.par_map(&items, |&x| x * x + 1), expect);
            assert_eq!(pool.par_map_grained(&items, 5, |&x| x * x + 1), expect);
        }
        assert_eq!(par_map(&items, |&x| x * x + 1), expect);
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn scoped_tasks_borrow_stack_data() {
        // Tasks read a stack slice and write disjoint chunks of a
        // stack buffer — the scoped-borrow soundness contract.
        let input: Vec<u64> = (0..64).collect();
        let mut out = vec![0u64; 64];
        let pool = ThreadPool::new(4);
        pool.scope(|s| {
            for (i, chunk) in out.chunks_mut(8).enumerate() {
                let input = &input;
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = input[i * 8 + j] * 3;
                    }
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut data = vec![1u32; 100];
        let pool = ThreadPool::new(3);
        pool.par_chunks_mut(&mut data, 7, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v += idx as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 7) as u32);
        }
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..53).map(|_| AtomicU64::new(0)).collect();
        let pool = ThreadPool::new(4);
        pool.par_for(hits.len(), 4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_propagates_from_worker_task() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    s.spawn(move || {
                        if i == 11 {
                            panic!("boom from task {i}");
                        }
                    });
                }
            });
        }));
        let payload = result.expect_err("task panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("boom from task 11"), "got {msg:?}");
        // The pool stays usable after a propagated panic.
        assert_eq!(pool.par_map(&[1, 2, 3], |&x: &i32| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn panic_propagates_inline_on_one_thread_pool() {
        let pool = ThreadPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|| panic!("inline boom")));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_map_panic_resumes_after_all_tasks_finish() {
        // Even with a panicking element, every other task completes
        // before the panic resumes (the drop guard ran), so no borrow
        // outlives the call.
        let done = AtomicU64::new(0);
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_grained(&(0..32).collect::<Vec<u64>>(), 1, |&x| {
                if x == 13 {
                    panic!("unlucky");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 31);
    }

    /// A deliberately non-associative f64 fold: chunk sums mix huge and
    /// tiny magnitudes, so any reordering changes the result bits.
    fn adversarial_reduce(pool: &ThreadPool, items: &[f64], grain: usize) -> u64 {
        let sum = pool
            .par_reduce(
                items,
                grain,
                |chunk| {
                    // Adversarial durations: later chunks finish first,
                    // so an unordered fold would combine out of order.
                    let d = u64::from(chunk[0] < 64.0);
                    std::thread::sleep(Duration::from_millis(d));
                    chunk
                        .iter()
                        .fold(0.0f64, |a, &x| a + x * 1e10 + 1.0 / (x + 1.0))
                },
                |a, b| a + b,
            )
            .unwrap();
        sum.to_bits()
    }

    #[test]
    fn ordered_reduction_is_thread_count_invariant() {
        let items: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let serial = ThreadPool::new(1);
        let expect = adversarial_reduce(&serial, &items, 8);
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            for _ in 0..3 {
                assert_eq!(
                    adversarial_reduce(&pool, &items, 8),
                    expect,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn par_reduce_empty_and_singleton() {
        let pool = ThreadPool::new(2);
        assert_eq!(
            pool.par_reduce(&[] as &[f64], 4, |c| c.len(), |a, b| a + b),
            None
        );
        assert_eq!(
            pool.par_reduce(&[5.0], 4, |c| c.len(), |a, b| a + b),
            Some(1)
        );
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Inner par_map calls run on pool workers that are themselves
        // inside an outer par_map task; the caller-helps wait keeps
        // everything moving even on a 2-thread pool.
        let pool = ThreadPool::new(2);
        let outer: Vec<u64> = (0..8).collect();
        let result = pool.par_map_grained(&outer, 1, |&i| {
            let inner: Vec<u64> = (0..8).map(|j| i * 8 + j).collect();
            pool.par_map_grained(&inner, 1, |&x| x * 2)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..8).map(|j| (i * 8 + j) * 2).sum())
            .collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn per_worker_accounting_sums_to_pool_totals() {
        let _guard = telemetry::test_lock();
        telemetry::set_enabled(true);
        let pool = ThreadPool::with_name(4, "acct_test");
        let items: Vec<u64> = (0..64).collect();
        let _ = pool.par_map_grained(&items, 1, |&x| x * 2);
        telemetry::set_enabled(false);
        let m = &pool.shared.metrics;
        let total = m.tasks.get();
        assert!(total >= items.len() as u64 / 2, "tasks counted: {total}");
        let by_worker: u64 = m.worker_tasks.iter().map(|c| c.get()).sum();
        // Helper (caller) tasks have no worker index, so per-worker
        // counts never exceed the pool total.
        assert!(by_worker <= total, "{by_worker} > {total}");
        let steals_by_worker: u64 = m.worker_steals.iter().map(|c| c.get()).sum();
        assert!(steals_by_worker <= m.steals.get());
        // No task still running: the utilization gauge returned to 0.
        assert_eq!(m.active.get(), 0.0);
    }

    #[test]
    fn trace_records_pool_task_spans() {
        let _guard = telemetry::test_lock();
        let path = std::env::temp_dir().join(format!(
            "geniex-parallel-trace-{}.trace.json",
            std::process::id()
        ));
        telemetry::start_trace(&path).expect("start trace");
        let pool = ThreadPool::with_name(3, "trace_test");
        let items: Vec<u64> = (0..32).collect();
        // A small sleep keeps tasks in flight long enough that the
        // workers (not just the helping caller) participate.
        let _ = pool.par_map_grained(&items, 1, |&x| {
            std::thread::sleep(Duration::from_micros(300));
            x + 1
        });
        let written = telemetry::finish_trace().expect("finish").expect("path");
        let text = std::fs::read_to_string(&written).expect("read");
        let trace = telemetry::json::parse(&text).expect("valid JSON");
        let events = trace
            .get("traceEvents")
            .and_then(telemetry::Json::as_arr)
            .expect("traceEvents");
        let task_begins = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(telemetry::Json::as_str) == Some("B")
                    && e.get("name").and_then(telemetry::Json::as_str)
                        == Some("parallel.trace_test.task")
            })
            .count();
        assert_eq!(task_begins, 32, "every task contributes one span");
        // The utilization counter track is present alongside the task
        // spans.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(telemetry::Json::as_str) == Some("C")
                && e.get("name").and_then(telemetry::Json::as_str)
                    == Some("parallel.trace_test.active_workers")
        }));
        std::fs::remove_file(&written).ok();
    }

    proptest! {
        #[test]
        fn par_map_equals_serial_map(
            values in proptest::collection::vec(-1e6f64..1e6, 0..200),
            grain in 1usize..32,
            threads in 1usize..9,
        ) {
            let pool = ThreadPool::new(threads);
            let expect: Vec<u64> = values
                .iter()
                .map(|&x| (x * 1.5 - 3.0).to_bits())
                .collect();
            let got = pool.par_map_grained(&values, grain, |&x| (x * 1.5 - 3.0).to_bits());
            prop_assert_eq!(got, expect);
        }
    }
}

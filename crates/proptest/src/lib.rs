//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree
//! package provides the subset of the proptest API the workspace uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, numeric
//! range strategies, tuple strategies, `prop_map`, and
//! [`collection::vec`].
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics immediately with the standard
//! assertion message, which is enough for CI triage. Case generation is
//! deterministic — each case is seeded by an FNV-1a hash of the test's
//! name mixed with the case index — so failures reproduce across runs
//! while different tests see de-correlated input streams.

#![forbid(unsafe_code)]

/// FNV-1a hash of a byte string; used to de-correlate the input
/// streams of differently named tests while staying deterministic.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case.
    ///
    /// Two generators built from the same `case` yield identical
    /// streams; prefer [`TestRng::for_test`] (what the [`proptest!`]
    /// macro expands to) when several tests must not see correlated
    /// inputs.
    pub fn new(case: u64) -> Self {
        TestRng {
            state: 0xA076_1D64_78BD_642F ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Creates the generator for one case of one named test, mixing a
    /// hash of `name` into the seed so that `foo` and `bar` sample
    /// different values at the same case index.
    pub fn for_test(name: &str, case: u64) -> Self {
        Self::with_seed(fnv1a64(name.as_bytes()), case)
    }

    /// Creates the generator for one case under an explicit base seed
    /// (e.g. a conformance-suite seed taken from the environment).
    pub fn with_seed(seed: u64, case: u64) -> Self {
        // Run one SplitMix64 round over the seed so that structurally
        // close seeds (0, 1, 2, ...) land far apart in state space.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng {
            state: 0xA076_1D64_78BD_642F ^ z ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator (subset of upstream's `Strategy`).
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the generated value through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }
    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact count or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Builds a `Vec` strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-proptest-block configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while
            // still exercising varied inputs.
            Config { cases: 64 }
        }
    }
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases as u64 {
                let mut __proptest_rng = $crate::TestRng::for_test(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Defines property tests: each `#[test] fn name(x in strategy, ..)`
/// runs its body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::TestRng::new(0);
        for _ in 0..500 {
            let x = Strategy::sample(&(0usize..7), &mut rng);
            assert!(x < 7);
            let y = Strategy::sample(&(-1.5f64..1.5), &mut rng);
            assert!((-1.5..1.5).contains(&y));
            let v = Strategy::sample(&collection::vec(0u32..3, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 3));
            let (a, b) = Strategy::sample(&(0u8..4, 1.0f32..2.0), &mut rng);
            assert!(a < 4 && (1.0..2.0).contains(&b));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::TestRng::new(1);
        let doubled = (1u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = Strategy::sample(&doubled, &mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_runs_and_binds(a in 0u64..16, b in collection::vec(-1.0f64..1.0, 3)) {
            prop_assert!(a < 16);
            prop_assert_eq!(b.len(), 3);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0i32..=3) {
            prop_assert!((0..=3).contains(&x));
        }
    }

    #[test]
    fn per_test_seeding_is_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|case| crate::TestRng::for_test("some_law", case).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|case| crate::TestRng::for_test("some_law", case).next_u64())
            .collect();
        assert_eq!(a, b, "same name + case must reproduce the same stream");
    }

    #[test]
    fn per_test_seeding_decorrelates_names() {
        // Before the name hash was mixed in, every test saw the exact
        // same stream at the same case index. Two different names must
        // now disagree on (at least) the first draw of every case.
        let collisions = (0..64u64)
            .filter(|&case| {
                crate::TestRng::for_test("law_alpha", case).next_u64()
                    == crate::TestRng::for_test("law_beta", case).next_u64()
            })
            .count();
        assert_eq!(collisions, 0, "name hash failed to de-correlate streams");
    }

    #[test]
    fn with_seed_separates_nearby_seeds() {
        let x = crate::TestRng::with_seed(0, 0).next_u64();
        let y = crate::TestRng::with_seed(1, 0).next_u64();
        assert_ne!(x, y);
        // for_test is with_seed over the FNV-1a name hash.
        assert_eq!(
            crate::TestRng::for_test("abc", 3).next_u64(),
            crate::TestRng::with_seed(crate::fnv1a64(b"abc"), 3).next_u64()
        );
    }
}

//! Differential oracles: two independent implementations of the same
//! function must agree, either bit-for-bit or within a documented
//! rounding bound.

use crate::gen;
use crate::{Category, Law};
use geniex::GeniexTile;
use kernels::naive;
use proptest::TestRng;
use std::path::PathBuf;
use xbar::{
    ConductanceMatrix, CrossbarCircuit, CrossbarParams, LinearSolverKind, NewtonOptions,
    SolverCache,
};

pub(crate) fn laws() -> Vec<Box<dyn Law>> {
    vec![
        Box::new(DotVsNaive),
        Box::new(GemmVsNaive),
        Box::new(GemvVsNaive),
        Box::new(SpmvVsNaive),
        Box::new(SpmvPlanVsNaive),
        Box::new(ParallelVsSerial),
        Box::new(StoreWarmVsCold),
        Box::new(SolverBgsVsCg),
        Box::new(AmortizedVsColdSolve),
        Box::new(WarmStartFixedPoint),
        Box::new(FastTileVsFullSurrogate),
    ]
}

/// Lane-blocked dot products vs the old sequential order.
struct DotVsNaive;

impl Law for DotVsNaive {
    fn name(&self) -> &'static str {
        "oracle/dot_vs_naive"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "|blocked - naive| <= eps * len * sum|a_i b_i| (floor 1e-6 f32 / 1e-12 f64)"
    }
    fn cases(&self) -> u64 {
        16
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let len = gen::usize_in(rng, 0, 192);
        let a = gen::vec_f32(rng, len, -10.0, 10.0);
        let b = gen::vec_f32(rng, len, -10.0, 10.0);
        let blocked = kernels::dot_f32(&a, &b);
        let sequential = naive::dot_f32(&a, &b);
        let magnitude: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = (f32::EPSILON * magnitude * len as f32).max(1e-6);
        if (blocked - sequential).abs() > bound {
            return Err(format!(
                "dot_f32 len {len}: blocked {blocked} vs naive {sequential} (bound {bound})"
            ));
        }

        let a64 = gen::vec_f64(rng, len, -10.0, 10.0);
        let b64 = gen::vec_f64(rng, len, -10.0, 10.0);
        let blocked = kernels::dot_f64(&a64, &b64);
        let sequential = naive::dot_f64(&a64, &b64);
        let magnitude: f64 = a64.iter().zip(&b64).map(|(x, y)| (x * y).abs()).sum();
        let bound = (f64::EPSILON * magnitude * len as f64).max(1e-12);
        if (blocked - sequential).abs() > bound {
            return Err(format!(
                "dot_f64 len {len}: blocked {blocked} vs naive {sequential} (bound {bound})"
            ));
        }
        Ok(())
    }
}

/// Register-blocked GEMM vs the naive triple loops. `gemm_nn` keeps
/// the naive `ikj` accumulation chain and must match bit-for-bit;
/// `gemm_nt` re-orders the reduction and is ulp-bounded.
struct GemmVsNaive;

impl Law for GemmVsNaive {
    fn name(&self) -> &'static str {
        "oracle/gemm_vs_naive"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "gemm_nn bit-identical; gemm_nt within eps * k * sum|a_l b_l| per element (floor 1e-6)"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let m = gen::usize_in(rng, 0, 12);
        let k = gen::usize_in(rng, 0, 12);
        let n = gen::usize_in(rng, 0, 12);
        let a = gen::vec_f32(rng, m * k, -2.0, 2.0);

        let b = gen::vec_f32(rng, k * n, -2.0, 2.0);
        let mut blocked = vec![0.0f32; m * n];
        let mut reference = vec![0.0f32; m * n];
        kernels::gemm_nn(&a, &b, &mut blocked, k, n);
        naive::gemm_nn(&a, &b, &mut reference, k, n);
        for (idx, (x, y)) in blocked.iter().zip(&reference).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(format!(
                    "gemm_nn {m}x{k}x{n} diverged at {idx}: {x} vs {y} (must be bit-identical)"
                ));
            }
        }

        let bt = gen::vec_f32(rng, n * k, -2.0, 2.0);
        let mut blocked = vec![0.0f32; m * n];
        let mut reference = vec![0.0f32; m * n];
        kernels::gemm_nt(&a, &bt, &mut blocked, k, n);
        naive::gemm_nt(&a, &bt, &mut reference, k, n);
        for i in 0..m {
            for j in 0..n {
                let x = blocked[i * n + j];
                let y = reference[i * n + j];
                let magnitude: f32 = (0..k).map(|l| (a[i * k + l] * bt[j * k + l]).abs()).sum();
                let bound = (f32::EPSILON * magnitude * k as f32).max(1e-6);
                if (x - y).abs() > bound {
                    return Err(format!(
                        "gemm_nt {m}x{k}x{n} at ({i},{j}): {x} vs {y} (bound {bound})"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Lane-blocked level GEMV (the funcsim/ideal-MVM hot path) vs naive.
struct GemvVsNaive;

impl Law for GemvVsNaive {
    fn name(&self) -> &'static str {
        "oracle/gemv_vs_naive"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "per row: |blocked - naive| <= eps * k * |scale| * sum|m_i x_i| (floor 1e-18)"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let m = gen::usize_in(rng, 0, 16);
        let k = gen::usize_in(rng, 0, 48);
        let mat = gen::vec_f64(rng, m * k, 0.0, 1e-4);
        let x = gen::vec_f32(rng, k, 0.0, 1.0);
        let scale = gen::f64_in(rng, 0.01, 0.5);
        let mut blocked = vec![0.0f64; m];
        let mut reference = vec![0.0f64; m];
        kernels::gemv_levels_scaled(&mat, &x, scale, &mut blocked);
        naive::gemv_levels_scaled(&mat, &x, scale, &mut reference);
        for i in 0..m {
            let magnitude: f64 = (0..k).map(|l| (mat[i * k + l] * x[l] as f64).abs()).sum();
            let bound = (f64::EPSILON * magnitude * scale.abs() * k as f64).max(1e-18);
            if (blocked[i] - reference[i]).abs() > bound {
                return Err(format!(
                    "gemv_levels_scaled {m}x{k} row {i}: {} vs {} (bound {bound})",
                    blocked[i], reference[i]
                ));
            }
        }
        Ok(())
    }
}

/// CSR sparse MVM (the CG solver's Jacobian product) vs naive. Rows
/// with at most [`kernels::LANES`] entries keep the sequential order
/// and must match bit-for-bit.
struct SpmvVsNaive;

impl Law for SpmvVsNaive {
    fn name(&self) -> &'static str {
        "oracle/spmv_vs_naive"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "rows with <= 8 entries bit-identical; longer rows within eps * nnz * sum|v x| (floor 1e-15)"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 0, 12);
        let cols = gen::usize_in(rng, 1, 24);
        // Random CSR: each row draws an entry count then distinct
        // ascending column indices.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            let nnz = gen::usize_in(rng, 0, cols.min(12));
            let mut picked = gen::permutation(rng, cols);
            picked.truncate(nnz);
            picked.sort_unstable();
            for c in picked {
                col_idx.push(c);
                values.push(gen::f64_in(rng, -1.0, 1.0));
            }
            row_ptr[i + 1] = col_idx.len();
        }
        let x = gen::vec_f64(rng, cols, -1.0, 1.0);
        let mut blocked = vec![0.0f64; rows];
        let mut reference = vec![0.0f64; rows];
        kernels::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut blocked);
        naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
        for i in 0..rows {
            let nnz = row_ptr[i + 1] - row_ptr[i];
            if nnz <= kernels::LANES {
                if blocked[i].to_bits() != reference[i].to_bits() {
                    return Err(format!(
                        "spmv row {i} ({nnz} entries): {} vs {} (must be bit-identical)",
                        blocked[i], reference[i]
                    ));
                }
            } else {
                let magnitude: f64 = (row_ptr[i]..row_ptr[i + 1])
                    .map(|p| (values[p] * x[col_idx[p]]).abs())
                    .sum();
                let bound = (f64::EPSILON * magnitude * nnz as f64).max(1e-15);
                if (blocked[i] - reference[i]).abs() > bound {
                    return Err(format!(
                        "spmv row {i} ({nnz} entries): {} vs {} (bound {bound})",
                        blocked[i], reference[i]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The strategy-dispatching [`kernels::SpmvPlan`] (naive / SELL-8 /
/// lane-CSR hybrid, chosen from the sparsity pattern) vs the plain
/// naive CSR loop. Sized so the draw actually crosses the dispatch
/// thresholds: small patterns plan as `Naive`, denser ones as `Sell`
/// or `LaneCsr`.
struct SpmvPlanVsNaive;

impl Law for SpmvPlanVsNaive {
    fn name(&self) -> &'static str {
        "oracle/spmv_plan_vs_naive"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "rows with <= 8 entries bit-identical; longer rows within eps * nnz * sum|v x| (floor 1e-15)"
    }
    fn cases(&self) -> u64 {
        8
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 0, 64);
        let cols = gen::usize_in(rng, 1, 32);
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            let nnz = gen::usize_in(rng, 0, cols.min(16));
            let mut picked = gen::permutation(rng, cols);
            picked.truncate(nnz);
            picked.sort_unstable();
            for c in picked {
                col_idx.push(c);
                values.push(gen::f64_in(rng, -1.0, 1.0));
            }
            row_ptr[i + 1] = col_idx.len();
        }
        let x = gen::vec_f64(rng, cols, -1.0, 1.0);
        let plan = kernels::SpmvPlan::new(&row_ptr, &col_idx, &values, cols);
        let mut planned = vec![0.0f64; rows];
        let mut reference = vec![0.0f64; rows];
        plan.apply(&x, &mut planned);
        naive::spmv_csr(&row_ptr, &col_idx, &values, &x, &mut reference);
        for i in 0..rows {
            let nnz = row_ptr[i + 1] - row_ptr[i];
            if nnz <= kernels::LANES {
                if planned[i].to_bits() != reference[i].to_bits() {
                    return Err(format!(
                        "spmv plan ({:?}) row {i} ({nnz} entries): {} vs {} (must be bit-identical)",
                        plan.strategy(),
                        planned[i],
                        reference[i]
                    ));
                }
            } else {
                let magnitude: f64 = (row_ptr[i]..row_ptr[i + 1])
                    .map(|p| (values[p] * x[col_idx[p]]).abs())
                    .sum();
                let bound = (f64::EPSILON * magnitude * nnz as f64).max(1e-15);
                if (planned[i] - reference[i]).abs() > bound {
                    return Err(format!(
                        "spmv plan ({:?}) row {i} ({nnz} entries): {} vs {} (bound {bound})",
                        plan.strategy(),
                        planned[i],
                        reference[i]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One worker thread vs eight: the work-stealing pool's contract is
/// bit-identical results at any `GENIEX_THREADS`.
struct ParallelVsSerial;

impl Law for ParallelVsSerial {
    fn name(&self) -> &'static str {
        "oracle/parallel_vs_serial"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "bit-identical across thread counts (exact)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let items = gen::usize_in(rng, 1, 40);
        let len = gen::usize_in(rng, 1, 64);
        let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..items)
            .map(|_| {
                (
                    gen::vec_f64(rng, len, -1.0, 1.0),
                    gen::vec_f64(rng, len, -1.0, 1.0),
                )
            })
            .collect();
        let work = |p: &(Vec<f64>, Vec<f64>)| kernels::dot_f64(&p.0, &p.1);

        let serial: Vec<f64> = pairs.iter().map(work).collect();
        let pool1 = parallel::ThreadPool::new(1);
        let pool8 = parallel::ThreadPool::new(8);
        let one = pool1.par_map_grained(&pairs, 3, work);
        let eight = pool8.par_map_grained(&pairs, 3, work);
        for (i, ((s, a), b)) in serial.iter().zip(&one).zip(&eight).enumerate() {
            if s.to_bits() != a.to_bits() || s.to_bits() != b.to_bits() {
                return Err(format!(
                    "par_map item {i}: serial {s} vs 1-thread {a} vs 8-thread {b}"
                ));
            }
        }

        let reduce = |pool: &parallel::ThreadPool| {
            pool.par_reduce(
                &pairs,
                3,
                |chunk| chunk.iter().map(work).fold(0.0f64, |acc, d| acc + d),
                |a, b| a + b,
            )
            .unwrap_or(0.0)
        };
        let (r1, r8) = (reduce(&pool1), reduce(&pool8));
        if r1.to_bits() != r8.to_bits() {
            return Err(format!("par_reduce: 1-thread {r1} vs 8-thread {r8}"));
        }
        Ok(())
    }
}

/// Cold write → warm read round trip through the content-addressed
/// store, plus corruption demotion to a regenerating miss.
struct StoreWarmVsCold;

impl StoreWarmVsCold {
    fn temp_root(rng: &mut TestRng) -> PathBuf {
        std::env::temp_dir().join(format!(
            "geniex-conformance-{}-{}-{:016x}",
            std::process::id(),
            telemetry::current_thread_id(),
            rng.next_u64()
        ))
    }
}

impl Law for StoreWarmVsCold {
    fn name(&self) -> &'static str {
        "oracle/store_warm_vs_cold"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "warm and cold payload bytes identical; corrupt entries miss then regenerate (exact)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let root = Self::temp_root(rng);
        let result = self.check_at(&root, rng);
        std::fs::remove_dir_all(&root).ok();
        result
    }
}

impl StoreWarmVsCold {
    fn check_at(&self, root: &PathBuf, rng: &mut TestRng) -> Result<(), String> {
        let payload: Vec<u8> = (0..gen::usize_in(rng, 1, 512))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let mut builder = store::KeyBuilder::new(*b"conf");
        builder.u64("case", rng.next_u64());
        let key = builder.finish();

        let warm = store::Store::with_mode(root, store::Mode::ReadWrite);
        if warm.load(&key).is_some() {
            return Err("fresh store reported a hit".into());
        }
        warm.save(&key, &payload).map_err(|e| e.to_string())?;
        let warm_bytes = warm.load(&key).ok_or("warm read missed")?;
        if warm_bytes != payload {
            return Err(format!(
                "warm read returned {} bytes, wrote {}",
                warm_bytes.len(),
                payload.len()
            ));
        }
        // A cold process sees the identical artifact.
        let cold = store::Store::with_mode(root, store::Mode::Read);
        let cold_bytes = cold.load(&key).ok_or("cold read missed")?;
        if cold_bytes != warm_bytes {
            return Err("cold read disagrees with warm read".into());
        }
        // Corruption must demote to a miss, and a re-save must recover.
        let path = warm.path_for(&key);
        let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
        let idx = (rng.next_u64() as usize) % bytes.len();
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;
        if warm.load(&key).is_some() {
            return Err("corrupt entry still readable".into());
        }
        warm.save(&key, &payload).map_err(|e| e.to_string())?;
        if warm.load(&key).as_deref() != Some(payload.as_slice()) {
            return Err("regenerated entry does not round-trip".into());
        }
        Ok(())
    }
}

/// The f64 reference solver cross-checked against itself: block
/// Gauss–Seidel and Jacobi-preconditioned CG must find the same
/// operating point.
struct SolverBgsVsCg;

impl Law for SolverBgsVsCg {
    fn name(&self) -> &'static str {
        "oracle/solver_bgs_vs_cg"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "per column |I_bgs - I_cg| <= 1e-9 * |I| (floor 1e-13 A)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 2, 6);
        let cols = gen::usize_in(rng, 2, 6);
        let params = CrossbarParams::builder(rows, cols)
            .r_wire(gen::f64_in(rng, 1.0, 5.0))
            .build()
            .map_err(|e| e.to_string())?;
        let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
        let g = ConductanceMatrix::from_levels(&params, &levels).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, rows, 0.0, params.v_supply);

        let bgs = CrossbarCircuit::new(&params, &g)
            .and_then(|c| c.solve(&v))
            .map_err(|e| e.to_string())?;
        let cg = CrossbarCircuit::with_options(
            &params,
            &g,
            NewtonOptions {
                linear_solver: LinearSolverKind::ConjugateGradient,
                ..NewtonOptions::default()
            },
        )
        .and_then(|c| c.solve(&v))
        .map_err(|e| e.to_string())?;

        for (j, (a, b)) in bgs.currents.iter().zip(&cg.currents).enumerate() {
            let bound = (1e-9 * a.abs()).max(1e-13);
            if (a - b).abs() > bound {
                return Err(format!(
                    "column {j}: BGS {a} vs CG {b} (bound {bound}, {rows}x{cols})"
                ));
            }
        }
        Ok(())
    }
}

/// The amortized batch path (cached factorization + warm-started
/// Newton, DESIGN.md §15) vs one cold exact solve per sample. The two
/// paths stop at different equally-converged iterates, so agreement
/// is bounded by the solver tolerance rather than machine epsilon.
struct AmortizedVsColdSolve;

impl Law for AmortizedVsColdSolve {
    fn name(&self) -> &'static str {
        "oracle/amortized_vs_cold_solve"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "per column |I_amortized - I_cold| <= 1e-6 * |I| + 1e-10 A (solver tolerance)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 2, 6);
        let cols = gen::usize_in(rng, 2, 6);
        let samples = gen::usize_in(rng, 2, 4);
        let params = CrossbarParams::builder(rows, cols)
            .r_wire(gen::f64_in(rng, 1.0, 5.0))
            .build()
            .map_err(|e| e.to_string())?;
        let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
        let g = ConductanceMatrix::from_levels(&params, &levels).map_err(|e| e.to_string())?;
        let circuit = CrossbarCircuit::new(&params, &g).map_err(|e| e.to_string())?;

        // Correlated panel — the regime warm-starting targets.
        let mut volts = gen::vec_f64(rng, rows, 0.0, params.v_supply);
        for s in 1..samples {
            for i in 0..rows {
                let jitter = gen::f64_in(rng, -0.2, 0.2) * params.v_supply;
                let prev = volts[(s - 1) * rows + i];
                volts.push((prev + jitter).clamp(0.0, params.v_supply));
            }
        }

        let mut cache = SolverCache::for_circuit(&circuit);
        let amortized = circuit
            .solve_batch(&volts, samples, &mut cache)
            .map_err(|e| e.to_string())?;
        for (s, report) in amortized.iter().enumerate() {
            let cold = circuit
                .solve(&volts[s * rows..(s + 1) * rows])
                .map_err(|e| e.to_string())?;
            for (j, (a, b)) in report.currents.iter().zip(&cold.currents).enumerate() {
                let bound = 1e-6 * b.abs() + 1e-10;
                if (a - b).abs() > bound {
                    return Err(format!(
                        "sample {s} column {j}: amortized {a} vs cold {b} \
                         (bound {bound}, {rows}x{cols})"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Re-solving the input a warm cache just converged on is a fixed
/// point: the stored residual already satisfies the tolerance, so the
/// solver must take zero Newton iterations and reproduce the previous
/// currents bit-for-bit.
struct WarmStartFixedPoint;

impl Law for WarmStartFixedPoint {
    fn name(&self) -> &'static str {
        "oracle/warm_start_fixed_point"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "warm re-solve of the same input: 0 Newton iterations, bit-identical currents (exact)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 2, 6);
        let cols = gen::usize_in(rng, 2, 6);
        let params = CrossbarParams::builder(rows, cols)
            .build()
            .map_err(|e| e.to_string())?;
        let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
        let g = ConductanceMatrix::from_levels(&params, &levels).map_err(|e| e.to_string())?;
        let circuit = CrossbarCircuit::new(&params, &g).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, rows, 0.0, params.v_supply);

        let mut cache = SolverCache::for_circuit(&circuit);
        let first = circuit
            .solve_amortized(&v, &mut cache)
            .map_err(|e| e.to_string())?;
        let second = circuit
            .solve_amortized(&v, &mut cache)
            .map_err(|e| e.to_string())?;
        if second.newton_iterations != 0 {
            return Err(format!(
                "warm re-solve took {} Newton iterations, expected 0 ({rows}x{cols})",
                second.newton_iterations
            ));
        }
        for (j, (a, b)) in second.currents.iter().zip(&first.currents).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "column {j}: warm re-solve {a} vs first solve {b} (must be bit-identical)"
                ));
            }
        }
        Ok(())
    }
}

/// The tile-specialized `core::fast` f32 path vs the full surrogate
/// forward pass it was derived from.
struct FastTileVsFullSurrogate;

impl Law for FastTileVsFullSurrogate {
    fn name(&self) -> &'static str {
        "oracle/fast_tile_vs_full_surrogate"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "per bit line |f_R_fast - f_R_full| < 1e-4 (f32 re-association only)"
    }
    fn cases(&self) -> u64 {
        8
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let mut surrogate = crate::fixtures::surrogate().clone();
        let (rows, cols) = (surrogate.params().rows, surrogate.params().cols);
        let g_levels = gen::vec_f32(rng, rows * cols, 0.0, 1.0);
        let v_levels = gen::vec_f32(rng, rows, 0.0, 1.0);

        let tile = GeniexTile::new(&surrogate, &g_levels).map_err(|e| e.to_string())?;
        let fast = tile.f_r_from_levels(&v_levels).map_err(|e| e.to_string())?;
        let full = surrogate
            .predict_f_r(&v_levels, &g_levels)
            .map_err(|e| e.to_string())?;
        for (j, (a, b)) in full.iter().zip(&fast).enumerate() {
            if (a - b).abs() >= 1e-4 {
                return Err(format!("bit line {j}: full {a} vs fast {b}"));
            }
        }
        // The batched entry point must agree with the single-vector
        // one bit-for-bit (shared forward path).
        let batch = tile.f_r_batch(&v_levels, 1).map_err(|e| e.to_string())?;
        if batch != fast {
            return Err("f_r_batch(1) diverged from f_r_from_levels".into());
        }
        Ok(())
    }
}

//! Conformance harness for the GENIEx stack: every optimized path in
//! this workspace is held to an executable law.
//!
//! Four PRs of aggressive optimisation (lane-blocked kernels,
//! work-stealing parallelism, a content-addressed store, a specialized
//! surrogate fast path) created fast paths whose only prior guarantees
//! were ad-hoc digest checks. This crate registers three families of
//! laws that prove the fast paths *are* the reference paths:
//!
//! * **Differential oracles** — two independent implementations of the
//!   same function must agree: naive vs lane-blocked kernels, one vs
//!   eight worker threads, cold vs warm store artifacts, block
//!   Gauss–Seidel vs conjugate-gradient Newton corrections, and the
//!   full surrogate forward vs the tile-specialized fast path.
//! * **Physics invariants** — properties the circuit ground truth must
//!   satisfy regardless of implementation: per-node KCL below the
//!   solver's own tolerance, passivity (non-negative dissipated
//!   power), monotone IR-drop degradation as `R_wire` grows, and
//!   oddness `I(d, -V) = -I(d, V)` of the sinh device model.
//! * **Metamorphic relations** — input transformations with known
//!   output transformations on the functional simulator: tile-size
//!   invariance, bit-slice recombination against a full-precision
//!   integer GEMV, row/column permutation equivariance, linear-regime
//!   voltage scaling `I(αV) ≈ αI(V)`, and batch/single bit-identity.
//!
//! The non-ideality zoo (`xbar::zoo`) contributes laws to all three
//! families: a differential oracle proving the migrated variation
//! models bit-identical to the frozen pre-zoo fused pass, invariants
//! for zero-strength identity, seed determinism across thread counts,
//! per-model RNG stream independence and monotone degradation in
//! strength, and a metamorphic batch/single read-noise relation.
//!
//! Every law draws its cases from the in-tree `proptest` strategies
//! through a per-law seeded [`TestRng`], so a failing run reproduces
//! from a single number: set [`SEED_ENV`] (`GENIEX_CONFORMANCE_SEED`)
//! to the seed printed in the failure report and re-run. The
//! `conformance` binary in `geniex-bench` drives [`run_suite`] and
//! emits a JSONL report through `geniex-telemetry`.

#![forbid(unsafe_code)]

use proptest::TestRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

mod metamorphic;
mod oracles;
mod physics;
mod zoo;

pub use proptest::fnv1a64;

/// Environment variable naming the suite's base seed.
pub const SEED_ENV: &str = "GENIEX_CONFORMANCE_SEED";

/// Environment variable overriding every law's case count.
pub const CASES_ENV: &str = "GENIEX_CONFORMANCE_CASES";

/// Which family a law belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Two independent implementations must agree.
    Oracle,
    /// A physical property of the circuit ground truth.
    Invariant,
    /// A known input→output transformation relation.
    Metamorphic,
}

impl Category {
    /// Stable lowercase tag used in reports and law names.
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::Oracle => "oracle",
            Category::Invariant => "invariant",
            Category::Metamorphic => "metamorphic",
        }
    }
}

/// One executable conformance law.
///
/// A law is checked over `cases()` independently seeded cases; each
/// case samples its inputs from the in-tree `proptest` strategies via
/// the provided [`TestRng`] and returns `Err(detail)` on violation.
pub trait Law: Send + Sync {
    /// Unique name, `family/short_name` by convention.
    fn name(&self) -> &'static str;

    /// The family this law belongs to.
    fn category(&self) -> Category;

    /// Human-readable statement of the enforced numeric bound.
    fn tolerance(&self) -> &'static str;

    /// Cases per run at the default budget.
    fn cases(&self) -> u64 {
        12
    }

    /// Checks one sampled case. `Err` carries the violation detail.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound, including the
    /// offending values.
    fn check(&self, rng: &mut TestRng) -> Result<(), String>;
}

/// Suite configuration: the base seed plus an optional case-count
/// override.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Base seed mixed (via FNV-1a of the law name) into every law's
    /// per-case generator.
    pub seed: u64,
    /// When set, every law runs exactly this many cases.
    pub cases_override: Option<u64>,
}

impl SuiteConfig {
    /// Builds a config with the given seed and default case counts.
    pub fn with_seed(seed: u64) -> Self {
        SuiteConfig {
            seed,
            cases_override: None,
        }
    }

    /// Reads [`SEED_ENV`] and [`CASES_ENV`] (defaults: seed 0, per-law
    /// case counts).
    pub fn from_env() -> Self {
        let seed = std::env::var(SEED_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        let cases_override = std::env::var(CASES_ENV)
            .ok()
            .and_then(|s| s.trim().parse().ok());
        SuiteConfig {
            seed,
            cases_override,
        }
    }
}

/// One violated case of one law.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Case index within the law's run (re-derivable from the seed).
    pub case: u64,
    /// What was violated, with the offending values.
    pub detail: String,
}

/// Outcome of running one law.
#[derive(Debug, Clone)]
pub struct LawReport {
    /// Law name (`family/short_name`).
    pub name: &'static str,
    /// Law family.
    pub category: Category,
    /// Documented tolerance statement.
    pub tolerance: &'static str,
    /// Cases executed.
    pub cases_run: u64,
    /// Violations, in case order.
    pub failures: Vec<CaseFailure>,
    /// Wall-clock milliseconds for the whole law.
    pub wall_ms: f64,
}

impl LawReport {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Outcome of running the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The base seed the suite ran under.
    pub seed: u64,
    /// Per-law outcomes, in registry order.
    pub laws: Vec<LawReport>,
}

impl SuiteReport {
    /// Whether every law passed.
    pub fn passed(&self) -> bool {
        self.laws.iter().all(LawReport::passed)
    }

    /// Total cases executed across all laws.
    pub fn total_cases(&self) -> u64 {
        self.laws.iter().map(|l| l.cases_run).sum()
    }

    /// Total violations across all laws.
    pub fn total_failures(&self) -> usize {
        self.laws.iter().map(|l| l.failures.len()).sum()
    }

    /// The one-line reproduction command for the first failing law, if
    /// any: re-running it replays the exact same sampled cases.
    pub fn repro_line(&self) -> Option<String> {
        self.laws.iter().find(|l| !l.passed()).map(|l| {
            format!(
                "{SEED_ENV}={} cargo run --release -p geniex-bench --bin conformance -- --law {}",
                self.seed, l.name
            )
        })
    }
}

/// The generator for `case` of the law named `name` under `seed`.
///
/// Exposed so a failing case can be replayed in isolation (e.g. from a
/// debugger) given the numbers in a failure report.
pub fn case_rng(seed: u64, name: &str, case: u64) -> TestRng {
    TestRng::with_seed(seed ^ fnv1a64(name.as_bytes()), case)
}

/// Runs one law under `config`, catching panics as violations.
pub fn run_law(law: &dyn Law, config: &SuiteConfig) -> LawReport {
    let cases = config.cases_override.unwrap_or_else(|| law.cases());
    let start = Instant::now();
    let mut failures = Vec::new();
    for case in 0..cases {
        let mut rng = case_rng(config.seed, law.name(), case);
        let outcome = catch_unwind(AssertUnwindSafe(|| law.check(&mut rng)));
        let failure = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(detail)) => Some(detail),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("law panicked");
                Some(format!("panic: {msg}"))
            }
        };
        if let Some(detail) = failure {
            failures.push(CaseFailure { case, detail });
        }
    }
    LawReport {
        name: law.name(),
        category: law.category(),
        tolerance: law.tolerance(),
        cases_run: cases,
        failures,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// All registered laws, grouped by family.
pub fn registry() -> Vec<Box<dyn Law>> {
    let mut laws = oracles::laws();
    laws.extend(physics::laws());
    laws.extend(metamorphic::laws());
    laws.extend(zoo::laws());
    laws
}

/// Runs every registered law under `config`.
pub fn run_suite(config: &SuiteConfig) -> SuiteReport {
    let laws = registry();
    run_laws(&laws, config)
}

/// Runs the given laws under `config` (the binary uses this for
/// `--law` filtering).
pub fn run_laws(laws: &[Box<dyn Law>], config: &SuiteConfig) -> SuiteReport {
    SuiteReport {
        seed: config.seed,
        laws: laws.iter().map(|l| run_law(l.as_ref(), config)).collect(),
    }
}

/// Shared sampling helpers built on the in-tree `proptest` strategies.
pub(crate) mod gen {
    use proptest::collection;
    use proptest::strategy::Strategy;
    use proptest::TestRng;

    pub fn usize_in(rng: &mut TestRng, lo: usize, hi_incl: usize) -> usize {
        (lo..=hi_incl).sample(rng)
    }

    pub fn f64_in(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
        (lo..hi).sample(rng)
    }

    pub fn vec_f32(rng: &mut TestRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        collection::vec(lo..hi, len).sample(rng)
    }

    pub fn vec_f64(rng: &mut TestRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        collection::vec(lo..hi, len).sample(rng)
    }

    /// A uniformly sampled permutation of `0..n` (Fisher–Yates).
    pub fn permutation(rng: &mut TestRng, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (0..=i).sample(rng);
            p.swap(i, j);
        }
        p
    }
}

/// Fixtures shared between laws (training a surrogate is the one
/// expensive setup; do it once per process).
pub(crate) mod fixtures {
    use geniex::dataset::{generate, DatasetConfig};
    use geniex::{Geniex, TrainConfig};
    use std::sync::OnceLock;
    use xbar::CrossbarParams;

    /// A small trained 4x4 surrogate, built once.
    pub fn surrogate() -> &'static Geniex {
        static SURROGATE: OnceLock<Geniex> = OnceLock::new();
        SURROGATE.get_or_init(|| {
            let params = CrossbarParams::builder(4, 4).build().unwrap();
            let data = generate(
                &params,
                &DatasetConfig {
                    samples: 60,
                    seed: 2,
                    ..DatasetConfig::default()
                },
            )
            .unwrap();
            let mut s = Geniex::new(&params, 24, 5).unwrap();
            s.train(
                &data,
                &TrainConfig {
                    epochs: 25,
                    ..TrainConfig::default()
                },
            )
            .unwrap();
            s
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_meets_coverage_floor() {
        let laws = registry();
        let count = |c: Category| laws.iter().filter(|l| l.category() == c).count();
        assert!(laws.len() >= 26, "only {} laws registered", laws.len());
        assert!(count(Category::Oracle) >= 4);
        assert!(count(Category::Invariant) >= 4);
        assert!(count(Category::Metamorphic) >= 4);
        // Names are unique and follow the family/short_name convention.
        let mut names: Vec<_> = laws.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), laws.len(), "duplicate law names");
        for law in &laws {
            assert!(
                law.name().starts_with(law.category().as_str()),
                "law {} not prefixed with its family",
                law.name()
            );
            assert!(!law.tolerance().is_empty());
        }
    }

    #[test]
    fn full_suite_passes_at_reduced_budget() {
        let report = run_suite(&SuiteConfig {
            seed: 0,
            cases_override: Some(2),
        });
        let failing: Vec<String> = report
            .laws
            .iter()
            .filter(|l| !l.passed())
            .map(|l| format!("{}: {}", l.name, l.failures[0].detail))
            .collect();
        assert!(report.passed(), "violations: {failing:?}");
        assert!(report.repro_line().is_none());
    }

    /// A deliberately broken law: the harness must catch the violation
    /// and reproduce the same failing cases from the same seed.
    struct InjectedViolation;

    impl Law for InjectedViolation {
        fn name(&self) -> &'static str {
            "oracle/injected_violation"
        }
        fn category(&self) -> Category {
            Category::Oracle
        }
        fn tolerance(&self) -> &'static str {
            "always fails on odd draws"
        }
        fn check(&self, rng: &mut TestRng) -> Result<(), String> {
            let draw = rng.next_u64();
            if draw % 2 == 1 {
                Err(format!("odd draw {draw}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn injected_violation_reproduces_from_seed() {
        let laws: Vec<Box<dyn Law>> = vec![Box::new(InjectedViolation)];
        let config = SuiteConfig {
            seed: 7,
            cases_override: Some(16),
        };
        let first = run_laws(&laws, &config);
        let second = run_laws(&laws, &config);
        assert!(!first.passed(), "injected violation went undetected");
        let cases =
            |r: &SuiteReport| -> Vec<u64> { r.laws[0].failures.iter().map(|f| f.case).collect() };
        assert_eq!(cases(&first), cases(&second), "repro is not deterministic");
        let line = first.repro_line().unwrap();
        assert!(line.contains("GENIEX_CONFORMANCE_SEED=7"));
        assert!(line.contains("--law oracle/injected_violation"));
        // A different seed samples different cases.
        let other = run_laws(
            &laws,
            &SuiteConfig {
                seed: 8,
                cases_override: Some(16),
            },
        );
        assert_ne!(cases(&first), cases(&other));
    }

    #[test]
    fn panics_are_reported_as_failures() {
        struct Panicker;
        impl Law for Panicker {
            fn name(&self) -> &'static str {
                "oracle/panicker"
            }
            fn category(&self) -> Category {
                Category::Oracle
            }
            fn tolerance(&self) -> &'static str {
                "n/a"
            }
            fn check(&self, _rng: &mut TestRng) -> Result<(), String> {
                panic!("boom");
            }
        }
        let report = run_law(
            &Panicker,
            &SuiteConfig {
                seed: 0,
                cases_override: Some(1),
            },
        );
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].detail.contains("boom"));
    }
}

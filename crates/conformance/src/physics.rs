//! Physics invariants: properties the circuit ground truth must
//! satisfy regardless of how the solver is implemented.

use crate::gen;
use crate::{Category, Law};
use proptest::TestRng;
use xbar::device::{AccessDevice, DeviceModel, FilamentaryRram, SeriesPair};
use xbar::{
    ConductanceMatrix, CrossbarCircuit, CrossbarParams, DeviceParams, NonIdealityConfig,
    SolveReport, XbarError,
};

pub(crate) fn laws() -> Vec<Box<dyn Law>> {
    vec![
        Box::new(KclResidual),
        Box::new(PassivityPower),
        Box::new(IrDropMonotone),
        Box::new(DeviceOddness),
        Box::new(CircuitOddSymmetry),
    ]
}

/// Samples a small random crossbar (2..=6 per side, varied wire
/// resistance and non-ideality mix) with a programmed conductance
/// state.
fn random_circuit(
    rng: &mut TestRng,
    nonideality: NonIdealityConfig,
) -> Result<(CrossbarParams, CrossbarCircuit), XbarError> {
    let rows = gen::usize_in(rng, 2, 6);
    let cols = gen::usize_in(rng, 2, 6);
    let params = CrossbarParams::builder(rows, cols)
        .r_wire(gen::f64_in(rng, 0.5, 8.0))
        .nonideality(nonideality)
        .build()?;
    let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
    let g = ConductanceMatrix::from_levels(&params, &levels)?;
    let circuit = CrossbarCircuit::new(&params, &g)?;
    Ok((params, circuit))
}

/// Picks one of the two parasitic non-ideality mixes (the KCL notion
/// is vacuous without parasitics).
fn parasitic_config(rng: &mut TestRng) -> NonIdealityConfig {
    if gen::usize_in(rng, 0, 1) == 0 {
        NonIdealityConfig::all()
    } else {
        NonIdealityConfig::linear_only()
    }
}

/// Total current injected by the word-line sources, recomputed from
/// the node voltages (first word-line segment of each row).
fn injected_current(params: &CrossbarParams, v: &[f64], report: &SolveReport) -> f64 {
    let g_src = 1.0 / params.r_source;
    (0..params.rows)
        .map(|i| g_src * (v[i] - report.node_voltages[i * params.cols]))
        .sum()
}

/// Per-node KCL must hold at the reported operating point, verified
/// by an independent residual recomputation through the public
/// [`CrossbarCircuit::verify_kcl`] API.
struct KclResidual;

impl Law for KclResidual {
    fn name(&self) -> &'static str {
        "invariant/kcl_residual"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "recomputed residual <= 1.01 * effective_tolerance(v); report.residual_norm likewise"
    }
    fn cases(&self) -> u64 {
        8
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let config = parasitic_config(rng);
        let (params, circuit) = random_circuit(rng, config).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, params.rows, 0.0, params.v_supply);
        let report = circuit.solve(&v).map_err(|e| e.to_string())?;
        let tolerance = 1.01 * circuit.effective_tolerance(&v);
        let recomputed = circuit
            .verify_kcl(&v, &report.node_voltages)
            .map_err(|e| e.to_string())?;
        if recomputed > tolerance {
            return Err(format!(
                "recomputed KCL residual {recomputed} above tolerance {tolerance} \
                 ({}x{}, {} Newton iterations)",
                params.rows, params.cols, report.newton_iterations
            ));
        }
        if report.residual_norm > tolerance {
            return Err(format!(
                "reported residual {} above tolerance {tolerance}",
                report.residual_norm
            ));
        }
        Ok(())
    }
}

/// The crossbar is a passive network: with non-negative inputs every
/// sensed current is non-negative, the sources inject exactly what the
/// sinks drain, and the injected power is non-negative.
struct PassivityPower;

impl Law for PassivityPower {
    fn name(&self) -> &'static str {
        "invariant/passivity_power"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "I_j >= -1e-12 A; |I_in - I_out| <= 1e-9 * I_in + 1e-12 A; P_in >= -1e-15 W"
    }
    fn cases(&self) -> u64 {
        8
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let config = parasitic_config(rng);
        let (params, circuit) = random_circuit(rng, config).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, params.rows, 0.0, params.v_supply);
        let report = circuit.solve(&v).map_err(|e| e.to_string())?;

        for (j, &current) in report.currents.iter().enumerate() {
            if current < -1e-12 {
                return Err(format!(
                    "negative sensed current {current} A at column {j} for non-negative inputs"
                ));
            }
        }
        let injected = injected_current(&params, &v, &report);
        let sensed: f64 = report.currents.iter().sum();
        let bound = 1e-9 * injected.abs() + 1e-12;
        if (injected - sensed).abs() > bound {
            return Err(format!(
                "current not conserved: injected {injected} vs sensed {sensed} (bound {bound})"
            ));
        }
        let g_src = 1.0 / params.r_source;
        let power: f64 = (0..params.rows)
            .map(|i| v[i] * g_src * (v[i] - report.node_voltages[i * params.cols]))
            .sum();
        if power < -1e-15 {
            return Err(format!("negative injected power {power} W"));
        }
        Ok(())
    }
}

/// Raising the wire resistance can only worsen IR drop: the total
/// sensed current under a full-on stimulus must not increase.
struct IrDropMonotone;

impl Law for IrDropMonotone {
    fn name(&self) -> &'static str {
        "invariant/ir_drop_monotone"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "total current non-increasing over R_wire x{1,4,16,64} (slack 1e-9 relative)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 3, 6);
        let cols = gen::usize_in(rng, 3, 6);
        let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
        let r_wire_base = gen::f64_in(rng, 0.5, 2.5);
        let config = parasitic_config(rng);

        let mut previous: Option<(f64, f64)> = None;
        for factor in [1.0, 4.0, 16.0, 64.0] {
            let r_wire = r_wire_base * factor;
            let params = CrossbarParams::builder(rows, cols)
                .r_wire(r_wire)
                .nonideality(config)
                .build()
                .map_err(|e| e.to_string())?;
            let g = ConductanceMatrix::from_levels(&params, &levels).map_err(|e| e.to_string())?;
            let circuit = CrossbarCircuit::new(&params, &g).map_err(|e| e.to_string())?;
            let v = vec![params.v_supply; rows];
            let report = circuit.solve(&v).map_err(|e| e.to_string())?;
            let total: f64 = report.currents.iter().sum();
            if let Some((prev_r, prev_total)) = previous {
                if total > prev_total * (1.0 + 1e-9) {
                    return Err(format!(
                        "total current rose from {prev_total} A (R_wire {prev_r}) to \
                         {total} A (R_wire {r_wire}) on a {rows}x{cols} array"
                    ));
                }
            }
            previous = Some((r_wire, total));
        }
        Ok(())
    }
}

/// The sinh filamentary device (and its series combination with the
/// tanh access device) is an odd function of voltage, with an even
/// derivative.
struct DeviceOddness;

impl Law for DeviceOddness {
    fn name(&self) -> &'static str {
        "invariant/device_oddness"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "|I(-V) + I(V)| <= 1e-12 * |I(V)| + 1e-18 A (series pair: 1e-9 relative)"
    }
    fn cases(&self) -> u64 {
        16
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let device_params = DeviceParams::new();
        let reference = CrossbarParams::builder(2, 2)
            .build()
            .map_err(|e| e.to_string())?;
        let g = gen::f64_in(rng, reference.g_off(), reference.g_on());
        let v = gen::f64_in(rng, -0.3, 0.3);

        let rram = FilamentaryRram::from_conductance(g, &device_params);
        let (pos, neg) = (rram.current(v), rram.current(-v));
        if (pos + neg).abs() > 1e-12 * pos.abs() + 1e-18 {
            return Err(format!(
                "sinh oddness: I({v}) = {pos}, I({:.6}) = {neg}",
                -v
            ));
        }
        let (dp, dn) = (rram.di_dv(v), rram.di_dv(-v));
        if (dp - dn).abs() > 1e-12 * dp.abs() + 1e-18 {
            return Err(format!(
                "sinh derivative not even: {dp} vs {dn} at |v| = {v}"
            ));
        }

        let access = AccessDevice::new(device_params.access_g, device_params.access_v_sat);
        let (pos, neg) = (access.current(v), access.current(-v));
        if (pos + neg).abs() > 1e-12 * pos.abs() + 1e-18 {
            return Err(format!("tanh access oddness: I({v}) = {pos} vs {neg}"));
        }

        // The series pair solves a scalar Newton iteration for the
        // internal node, so oddness holds only to solver precision.
        let series = SeriesPair::new(access, rram);
        let (pos, neg) = (series.current(v), series.current(-v));
        if (pos + neg).abs() > 1e-9 * pos.abs() + 1e-15 {
            return Err(format!("series-pair oddness: I({v}) = {pos} vs {neg}"));
        }
        Ok(())
    }
}

/// Every branch of the network is odd in voltage, so the whole circuit
/// is: negating the inputs negates the operating point.
struct CircuitOddSymmetry;

impl Law for CircuitOddSymmetry {
    fn name(&self) -> &'static str {
        "invariant/circuit_odd_symmetry"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "|I_j(V) + I_j(-V)| <= 1e-8 * max|I| + 1e-12 A per column"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let config = parasitic_config(rng);
        let (params, circuit) = random_circuit(rng, config).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, params.rows, 0.0, params.v_supply);
        let v_neg: Vec<f64> = v.iter().map(|x| -x).collect();
        let pos = circuit.solve(&v).map_err(|e| e.to_string())?;
        let neg = circuit.solve(&v_neg).map_err(|e| e.to_string())?;
        let scale = pos
            .currents
            .iter()
            .fold(0.0f64, |acc, &current| acc.max(current.abs()));
        for (j, (a, b)) in pos.currents.iter().zip(&neg.currents).enumerate() {
            if (a + b).abs() > 1e-8 * scale + 1e-12 {
                return Err(format!(
                    "column {j}: I(V) = {a}, I(-V) = {b} (not odd, scale {scale})"
                ));
            }
        }
        Ok(())
    }
}

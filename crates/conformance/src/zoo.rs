//! Conformance laws for the non-ideality zoo (`xbar::zoo`).
//!
//! Every zoo model is held to the same contract: zero strength is the
//! *exact* identity, the same seed always reproduces the same draw at
//! any thread count, degradation is monotone in strength, and the
//! models migrated from the fused `apply_variations` pass reproduce it
//! bit-for-bit. The differential migration law carries its own frozen
//! copy of the pre-refactor algorithm, so a regression in either the
//! production code or the migration wrapper trips it.

use crate::gen;
use crate::{Category, Law};
use proptest::TestRng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xbar::zoo::{ConductanceDrift, LognormalSpread, NonIdealityStack, ReadNoise, StuckAtFaults};
use xbar::{ConductanceMatrix, CrossbarParams, VariationConfig, XbarError};

pub(crate) fn laws() -> Vec<Box<dyn Law>> {
    vec![
        Box::new(MigrationBitIdentity),
        Box::new(ZeroStrengthIdentity),
        Box::new(SeedDeterminism),
        Box::new(StreamIndependence),
        Box::new(MonotoneDegradation),
        Box::new(ReadBatchInvariance),
    ]
}

/// Samples a small crossbar design plus a target conductance pattern
/// with levels strictly inside `(0, 1)`, so a stuck cell (at exactly
/// `g_off` or `g_on`) is always distinguishable from a spread one.
fn random_target(rng: &mut TestRng) -> Result<(CrossbarParams, ConductanceMatrix), XbarError> {
    let rows = gen::usize_in(rng, 4, 12);
    let cols = gen::usize_in(rng, 4, 12);
    let params = CrossbarParams::builder(rows, cols).build()?;
    let levels = gen::vec_f64(rng, rows * cols, 0.05, 0.95);
    let g = ConductanceMatrix::from_levels(&params, &levels)?;
    Ok((params, g))
}

/// A frozen copy of the pre-zoo `apply_variations` algorithm: one
/// fused `StdRng` stream seeded from `config.seed`, one fault roll and
/// one Box–Muller spread sample per cell. The production code has
/// since been migrated onto the `NonIdeality` trait; this reference
/// must never change.
fn frozen_reference(
    params: &CrossbarParams,
    target: &ConductanceMatrix,
    config: &VariationConfig,
) -> ConductanceMatrix {
    fn standard_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let g_on = params.g_on();
    let g_off = params.g_off();
    let mut out = target.clone();
    for i in 0..params.rows {
        for j in 0..params.cols {
            let fault_roll: f64 = rng.gen();
            let z = standard_normal(&mut rng);
            let g = if fault_roll < config.stuck_off_rate {
                g_off
            } else if fault_roll < config.stuck_off_rate + config.stuck_on_rate {
                g_on
            } else if config.conductance_sigma > 0.0 {
                (target.get(i, j) * (config.conductance_sigma * z).exp()).clamp(0.0, g_on)
            } else {
                target.get(i, j)
            };
            out.set(i, j, g);
        }
    }
    out
}

/// The migrated variation/stuck-at model must reproduce the
/// pre-refactor fused pass bit-for-bit, at every tile index.
struct MigrationBitIdentity;

impl Law for MigrationBitIdentity {
    fn name(&self) -> &'static str {
        "oracle/zoo_migration_bit_identity"
    }
    fn category(&self) -> Category {
        Category::Oracle
    }
    fn tolerance(&self) -> &'static str {
        "exact bit identity (==) against the frozen pre-zoo apply_variations algorithm"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let (params, target) = random_target(rng).map_err(|e| e.to_string())?;
        let config = VariationConfig {
            conductance_sigma: gen::f64_in(rng, 0.0, 0.4),
            stuck_off_rate: gen::f64_in(rng, 0.0, 0.15),
            stuck_on_rate: gen::f64_in(rng, 0.0, 0.15),
            seed: rng.next_u64(),
        };
        let stack = NonIdealityStack::from_variation(&config).map_err(|e| e.to_string())?;
        for tile in [0u64, 1, 7] {
            let migrated = stack
                .program(&params, &target, tile)
                .map_err(|e| e.to_string())?;
            let reference = frozen_reference(
                &params,
                &target,
                &VariationConfig {
                    seed: config.seed.wrapping_add(tile),
                    ..config
                },
            );
            if migrated != reference {
                let diff = migrated
                    .as_slice()
                    .iter()
                    .zip(reference.as_slice())
                    .filter(|(a, b)| a != b)
                    .count();
                return Err(format!(
                    "migrated variation diverged from the frozen fused pass on tile \
                     {tile}: {diff} of {} cells differ (sigma {}, rates {}/{}, seed {})",
                    migrated.as_slice().len(),
                    config.conductance_sigma,
                    config.stuck_off_rate,
                    config.stuck_on_rate,
                    config.seed
                ));
            }
        }
        Ok(())
    }
}

/// Every model at zero strength must be the exact identity — at both
/// lifecycle hooks, with no tolerance.
struct ZeroStrengthIdentity;

impl Law for ZeroStrengthIdentity {
    fn name(&self) -> &'static str {
        "invariant/zoo_zero_strength_identity"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "exact bit identity (==) for conductances and currents at strength 0"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let (params, target) = random_target(rng).map_err(|e| e.to_string())?;
        let stack = NonIdealityStack::new(rng.next_u64())
            .with_model(Box::new(LognormalSpread { sigma: 0.0 }))
            .and_then(|s| {
                s.with_model(Box::new(StuckAtFaults {
                    stuck_off_rate: 0.0,
                    stuck_on_rate: 0.0,
                }))
            })
            .and_then(|s| {
                // t == t0 zeroes the drift strength even with nu > 0.
                s.with_model(Box::new(ConductanceDrift {
                    t: 1.0,
                    t0: 1.0,
                    nu: gen::f64_in(rng, 0.0, 0.5),
                }))
            })
            .and_then(|s| s.with_model(Box::new(ReadNoise { sigma: 0.0 })))
            .map_err(|e| e.to_string())?;
        if !stack.is_identity() {
            return Err("zero-strength stack does not report is_identity".into());
        }
        let tile = rng.next_u64() % 16;
        let programmed = stack
            .program(&params, &target, tile)
            .map_err(|e| e.to_string())?;
        if programmed != target {
            return Err("zero-strength programming changed the conductances".into());
        }
        let mut currents = gen::vec_f64(rng, params.cols, 0.0, 1e-4);
        let before = currents.clone();
        stack
            .read(&params, &mut currents, tile, rng.next_u64() % 64)
            .map_err(|e| e.to_string())?;
        if currents != before {
            return Err("zero-strength read stage changed the currents".into());
        }
        Ok(())
    }
}

/// Same seed → same draw, different seed → different draw, and tiles
/// programmed through an 8-thread pool must match the serial order
/// bit-for-bit (the sub-streams are keyed by tile index, not by
/// execution order).
struct SeedDeterminism;

impl Law for SeedDeterminism {
    fn name(&self) -> &'static str {
        "invariant/zoo_seed_determinism"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "exact bit identity (==) across repeats and across 1- vs 8-thread programming"
    }
    fn cases(&self) -> u64 {
        8
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let (params, target) = random_target(rng).map_err(|e| e.to_string())?;
        let seed = rng.next_u64();
        let build = |seed: u64| -> Result<NonIdealityStack, XbarError> {
            NonIdealityStack::new(seed)
                .with_model(Box::new(LognormalSpread { sigma: 0.2 }))?
                .with_model(Box::new(StuckAtFaults {
                    stuck_off_rate: 0.05,
                    stuck_on_rate: 0.05,
                }))?
                .with_model(Box::new(ConductanceDrift {
                    t: 100.0,
                    t0: 1.0,
                    nu: 0.05,
                }))
        };
        let stack = build(seed).map_err(|e| e.to_string())?;
        let tiles: Vec<u64> = (0..8).collect();
        let serial: Vec<ConductanceMatrix> = tiles
            .iter()
            .map(|&t| stack.program(&params, &target, t))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        let repeat = stack
            .program(&params, &target, tiles[0])
            .map_err(|e| e.to_string())?;
        if repeat != serial[0] {
            return Err("same seed and tile drew a different pattern on repeat".into());
        }
        let other_seed = build(seed ^ 0x5555_5555_5555_5555)
            .map_err(|e| e.to_string())?
            .program(&params, &target, tiles[0])
            .map_err(|e| e.to_string())?;
        if other_seed == serial[0] {
            return Err("different stack seeds drew identical patterns".into());
        }
        let pool = parallel::ThreadPool::new(8);
        let threaded = pool.par_map_grained(&tiles, 1, |&t| stack.program(&params, &target, t));
        for (i, (s, t)) in serial.iter().zip(&threaded).enumerate() {
            match t {
                Ok(t) if t == s => {}
                Ok(_) => {
                    return Err(format!(
                        "tile {i} programmed through the 8-thread pool diverged from serial"
                    ))
                }
                Err(e) => return Err(format!("threaded programming failed: {e}")),
            }
        }
        Ok(())
    }
}

/// Adding a model must never perturb another model's draws: in a
/// `[lognormal]` vs `[lognormal, stuck_at]` stack under one seed,
/// every cell the fault pass left alone carries the identical spread
/// sample (the old fused pass violated exactly this).
struct StreamIndependence;

impl Law for StreamIndependence {
    fn name(&self) -> &'static str {
        "invariant/zoo_stream_independence"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "exact bit identity (==) of non-stuck cells when stuck_at joins the stack"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let (params, target) = random_target(rng).map_err(|e| e.to_string())?;
        let seed = rng.next_u64();
        let sigma = gen::f64_in(rng, 0.05, 0.3);
        let tile = rng.next_u64() % 16;
        let lone = NonIdealityStack::new(seed)
            .with_model(Box::new(LognormalSpread { sigma }))
            .map_err(|e| e.to_string())?
            .program(&params, &target, tile)
            .map_err(|e| e.to_string())?;
        let composed = NonIdealityStack::new(seed)
            .with_model(Box::new(LognormalSpread { sigma }))
            .and_then(|s| {
                s.with_model(Box::new(StuckAtFaults {
                    stuck_off_rate: 0.15,
                    stuck_on_rate: 0.1,
                }))
            })
            .map_err(|e| e.to_string())?
            .program(&params, &target, tile)
            .map_err(|e| e.to_string())?;
        let (g_on, g_off) = (params.g_on(), params.g_off());
        let mut unstuck = 0usize;
        for (i, (a, b)) in lone.as_slice().iter().zip(composed.as_slice()).enumerate() {
            // Target levels sit strictly inside (g_off, g_on) and the
            // spread clamps at g_on, so a composed cell at exactly
            // g_off is stuck and one at exactly g_on is stuck or
            // clamped; everything else must carry the lone draw.
            if *b != g_on && *b != g_off {
                if a != b {
                    return Err(format!(
                        "cell {i}: lognormal draw shifted from {a} to {b} when \
                         stuck_at joined the stack (seed {seed}, sigma {sigma})"
                    ));
                }
                unstuck += 1;
            }
        }
        if unstuck == 0 {
            return Err("degenerate sample: every cell stuck".into());
        }
        Ok(())
    }
}

/// Degradation is monotone in strength: drift attenuates every cell
/// non-increasingly along a time ladder (and strictly at nu > 0), a
/// larger drift exponent attenuates at least as much, and the
/// aggregate lognormal displacement grows with sigma.
struct MonotoneDegradation;

impl Law for MonotoneDegradation {
    fn name(&self) -> &'static str {
        "invariant/zoo_monotone_degradation"
    }
    fn category(&self) -> Category {
        Category::Invariant
    }
    fn tolerance(&self) -> &'static str {
        "per-cell g(t) non-increasing over t in {1,10,100,1000}·t0 and over nu; \
         aggregate lognormal displacement non-decreasing over sigma (same seed)"
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let (params, target) = random_target(rng).map_err(|e| e.to_string())?;
        let tile = rng.next_u64() % 16;
        let nu = gen::f64_in(rng, 0.02, 0.2);
        let drifted = |t: f64, nu: f64| -> Result<ConductanceMatrix, String> {
            NonIdealityStack::new(0)
                .with_model(Box::new(ConductanceDrift { t, t0: 1.0, nu }))
                .map_err(|e| e.to_string())?
                .program(&params, &target, tile)
                .map_err(|e| e.to_string())
        };
        let ladder: Vec<ConductanceMatrix> = [1.0, 10.0, 100.0, 1000.0]
            .iter()
            .map(|&t| drifted(t, nu))
            .collect::<Result<_, _>>()?;
        for w in ladder.windows(2) {
            for (i, (a, b)) in w[0].as_slice().iter().zip(w[1].as_slice()).enumerate() {
                if b > a {
                    return Err(format!(
                        "drift not monotone in t at cell {i}: {b} > {a} (nu {nu})"
                    ));
                }
            }
        }
        for (i, (a, b)) in ladder[0]
            .as_slice()
            .iter()
            .zip(ladder[3].as_slice())
            .enumerate()
        {
            if b >= a {
                return Err(format!(
                    "drift at nu {nu} not strict over 3 decades at cell {i}: {b} >= {a}"
                ));
            }
        }
        let deeper = drifted(1000.0, nu * 2.0)?;
        for (i, (a, b)) in ladder[3]
            .as_slice()
            .iter()
            .zip(deeper.as_slice())
            .enumerate()
        {
            if b > a {
                return Err(format!("drift not monotone in nu at cell {i}: {b} > {a}"));
            }
        }
        // Lognormal: same seed, same z per cell — displacement sum
        // grows with sigma.
        let seed = rng.next_u64();
        let displacement = |sigma: f64| -> Result<f64, String> {
            let spread = NonIdealityStack::new(seed)
                .with_model(Box::new(LognormalSpread { sigma }))
                .map_err(|e| e.to_string())?
                .program(&params, &target, tile)
                .map_err(|e| e.to_string())?;
            Ok(spread
                .as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum())
        };
        let (d0, d1, d2) = (displacement(0.0)?, displacement(0.1)?, displacement(0.3)?);
        if !(d0 == 0.0 && d0 <= d1 && d1 <= d2) {
            return Err(format!(
                "lognormal displacement not monotone in sigma: {d0} / {d1} / {d2}"
            ));
        }
        Ok(())
    }
}

/// Read noise through the funcsim `ZooEngine` must be sample-indexed,
/// not call-indexed: a batch of n MVMs is bit-identical to n single
/// MVMs on an identically seeded engine — and actually noisy.
struct ReadBatchInvariance;

impl Law for ReadBatchInvariance {
    fn name(&self) -> &'static str {
        "metamorphic/zoo_read_batch_invariance"
    }
    fn category(&self) -> Category {
        Category::Metamorphic
    }
    fn tolerance(&self) -> &'static str {
        "exact bit identity (==) between batch-of-n and n single MVMs; noise must perturb"
    }
    fn cases(&self) -> u64 {
        8
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        use funcsim::{CrossbarEngine, IdealEngine, ZooEngine};
        let rows = gen::usize_in(rng, 4, 8);
        let cols = gen::usize_in(rng, 4, 8);
        let params = CrossbarParams::builder(rows, cols)
            .build()
            .map_err(|e| e.to_string())?;
        let seed = rng.next_u64();
        let sigma = gen::f64_in(rng, 0.01, 0.1);
        let engine = |seed: u64| -> Result<ZooEngine<IdealEngine>, String> {
            Ok(ZooEngine::new(
                IdealEngine,
                NonIdealityStack::new(seed)
                    .with_model(Box::new(ReadNoise { sigma }))
                    .map_err(|e| e.to_string())?,
            ))
        };
        let g: Vec<f32> = gen::vec_f32(rng, rows * cols, 0.1, 1.0);
        let n = gen::usize_in(rng, 2, 5);
        let panel: Vec<f32> = gen::vec_f32(rng, n * rows, 0.0, 1.0);
        let batched = engine(seed)?
            .program(&params, &g)
            .map_err(|e| e.to_string())?
            .currents_batch(&panel, n)
            .map_err(|e| e.to_string())?;
        let tile = engine(seed)?
            .program(&params, &g)
            .map_err(|e| e.to_string())?;
        let mut singles = Vec::with_capacity(n * cols);
        for chunk in panel.chunks(rows) {
            singles.extend(tile.currents_batch(chunk, 1).map_err(|e| e.to_string())?);
        }
        if batched != singles {
            return Err(format!(
                "batch of {n} diverged from {n} singles (seed {seed}, sigma {sigma})"
            ));
        }
        let clean = IdealEngine
            .program(&params, &g)
            .map_err(|e| e.to_string())?
            .currents_batch(&panel, n)
            .map_err(|e| e.to_string())?;
        if batched == clean {
            return Err("read noise at sigma > 0 left the currents untouched".into());
        }
        Ok(())
    }
}

//! Metamorphic relations: applying a known transformation to the
//! inputs of the functional simulator (or the circuit) must transform
//! the outputs in a predictable way.

use crate::gen;
use crate::{Category, Law};
use funcsim::{
    rescale_saturate, AnalyticalEngine, ArchConfig, CrossbarEngine, FxpFormat, IdealEngine,
    ProgrammedMatrix, WeightMapping,
};
use nn::Tensor;
use proptest::TestRng;
use xbar::{ideal_mvm, ConductanceMatrix, CrossbarCircuit, CrossbarParams, NonIdealityConfig};

pub(crate) fn laws() -> Vec<Box<dyn Law>> {
    vec![
        Box::new(TileSizeInvariance),
        Box::new(BitSliceRecombination),
        Box::new(PermutationEquivariance),
        Box::new(VoltageScalingLinear),
        Box::new(BatchInvariance),
    ]
}

/// An arch with a generous ADC on a `size`-sided ideal crossbar, so
/// the pipeline is (nearly) exact digital arithmetic.
fn precise_arch(size: usize) -> ArchConfig {
    ArchConfig {
        adc_bits: 20,
        xbar: CrossbarParams::builder(size, size).build().unwrap(),
        ..ArchConfig::default()
    }
}

/// Random fixed-point MVM problem: weights, bias, and quantized
/// non-negative input codes.
fn random_problem(rng: &mut TestRng, m: usize, k: usize, n: usize) -> (Tensor, Tensor, Vec<i64>) {
    let weight = Tensor::from_vec(gen::vec_f32(rng, m * k, -0.9, 0.9), &[m, k]).unwrap();
    let bias = Tensor::from_vec(gen::vec_f32(rng, m, -0.2, 0.2), &[m]).unwrap();
    let fmt = FxpFormat::paper_default();
    let x: Vec<i64> = gen::vec_f32(rng, n * k, 0.0, 1.0)
        .into_iter()
        .map(|v| fmt.quantize(v))
        .collect();
    (weight, bias, x)
}

/// Pure-integer reference of the whole fixed-point pipeline — the
/// "full-precision GEMV" the bit-sliced crossbar decomposition must
/// recombine to. No crossbars involved.
fn reference_mvm(
    weight: &Tensor,
    bias: &Tensor,
    arch: &ArchConfig,
    x_codes: &[i64],
    n: usize,
) -> Vec<i64> {
    let (m, k) = (weight.shape()[0], weight.shape()[1]);
    let wf = arch.weight_format;
    let product_frac = arch.input_format.frac_bits() + wf.frac_bits();
    let mut out = vec![0i64; n * m];
    for b in 0..n {
        for j in 0..m {
            let mut acc = 0i64;
            for i in 0..k {
                acc += x_codes[b * k + i] * wf.quantize(weight.data()[j * k + i]);
            }
            acc += (bias.data()[j] as f64 * (1i64 << product_frac) as f64).round() as i64;
            let in_acc = rescale_saturate(
                acc,
                product_frac,
                arch.accumulator_frac,
                arch.accumulator_bits,
            );
            out[b * m + j] = rescale_saturate(
                in_acc,
                arch.accumulator_frac,
                arch.input_format.frac_bits(),
                arch.input_format.total_bits(),
            );
        }
    }
    out
}

/// The crossbar dimension is a hardware detail: mapping the same
/// matrix onto 8x8 or 16x16 tiles must give the same answer.
struct TileSizeInvariance;

impl Law for TileSizeInvariance {
    fn name(&self) -> &'static str {
        "metamorphic/tile_size_invariance"
    }
    fn category(&self) -> Category {
        Category::Metamorphic
    }
    fn tolerance(&self) -> &'static str {
        "|codes_8x8 - codes_16x16| <= 4 output LSBs (ideal engine, 20-bit ADC)"
    }
    fn cases(&self) -> u64 {
        4
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let m = gen::usize_in(rng, 1, 12);
        let k = gen::usize_in(rng, 1, 20);
        let n = gen::usize_in(rng, 1, 3);
        let (weight, bias, x) = random_problem(rng, m, k, n);

        let mut outputs = Vec::new();
        for size in [8usize, 16] {
            let arch = precise_arch(size);
            let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias)
                .map_err(|e| e.to_string())?;
            outputs.push(pm.mvm_codes(&x, n).map_err(|e| e.to_string())?);
        }
        for (idx, (a, b)) in outputs[0].iter().zip(&outputs[1]).enumerate() {
            if (a - b).abs() > 4 {
                return Err(format!(
                    "output {idx} ({m}x{k}, n={n}): 8x8 tiles give {a}, 16x16 tiles give {b}"
                ));
            }
        }
        Ok(())
    }
}

/// Splitting inputs into streams and weights into slices, running each
/// combination through a crossbar, and shift-adding the results must
/// recombine to the full-precision integer GEMV — for every slicing
/// choice and weight mapping.
struct BitSliceRecombination;

impl Law for BitSliceRecombination {
    fn name(&self) -> &'static str {
        "metamorphic/bitslice_recombination"
    }
    fn category(&self) -> Category {
        Category::Metamorphic
    }
    fn tolerance(&self) -> &'static str {
        "|codes - integer GEMV| <= 4 output LSBs for stream/slice widths in {1,2,4,8}"
    }
    fn cases(&self) -> u64 {
        4
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let widths = [1u32, 2, 4, 8];
        let stream_width = widths[gen::usize_in(rng, 0, widths.len() - 1)];
        let slice_width = widths[gen::usize_in(rng, 0, widths.len() - 1)];
        let mapping = if gen::usize_in(rng, 0, 1) == 0 {
            WeightMapping::Differential
        } else {
            WeightMapping::Offset
        };
        let m = gen::usize_in(rng, 1, 8);
        let k = gen::usize_in(rng, 1, 12);
        let n = gen::usize_in(rng, 1, 2);
        let (weight, bias, x) = random_problem(rng, m, k, n);

        let arch = ArchConfig {
            weight_mapping: mapping,
            ..precise_arch(8)
        }
        .with_bit_slicing(stream_width, slice_width);
        let pm = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias)
            .map_err(|e| e.to_string())?;
        let got = pm.mvm_codes(&x, n).map_err(|e| e.to_string())?;
        let expect = reference_mvm(&weight, &bias, &arch, &x, n);
        for (idx, (g, e)) in got.iter().zip(&expect).enumerate() {
            if (g - e).abs() > 4 {
                return Err(format!(
                    "output {idx}: sliced {g} vs full-precision {e} \
                     (stream {stream_width}, slice {slice_width}, {mapping:?})"
                ));
            }
        }
        Ok(())
    }
}

/// Permuting word lines (with their inputs) leaves the ideal MVM
/// unchanged; permuting bit lines permutes it. On the programmed
/// matrix, permuting output units permutes the codes exactly.
struct PermutationEquivariance;

impl Law for PermutationEquivariance {
    fn name(&self) -> &'static str {
        "metamorphic/permutation_equivariance"
    }
    fn category(&self) -> Category {
        Category::Metamorphic
    }
    fn tolerance(&self) -> &'static str {
        "rows: eps * rows * sum|v g| per column; columns and output units: exact"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 1, 8);
        let cols = gen::usize_in(rng, 1, 8);
        let params = CrossbarParams::builder(rows.max(2), cols.max(2))
            .build()
            .map_err(|e| e.to_string())?;
        let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
        let g_flat: Vec<f64> = levels
            .iter()
            .map(|&l| params.g_off() + l * (params.g_on() - params.g_off()))
            .collect();
        let g =
            ConductanceMatrix::from_vec(rows, cols, g_flat.clone()).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, rows, 0.0, params.v_supply);
        let base = ideal_mvm(&v, &g).map_err(|e| e.to_string())?;

        // Word-line permutation: same set of products per column.
        let row_perm = gen::permutation(rng, rows);
        let v_p: Vec<f64> = row_perm.iter().map(|&i| v[i]).collect();
        let mut g_rows = vec![0.0f64; rows * cols];
        for (dst, &src) in row_perm.iter().enumerate() {
            g_rows[dst * cols..(dst + 1) * cols]
                .copy_from_slice(&g_flat[src * cols..(src + 1) * cols]);
        }
        let g_p = ConductanceMatrix::from_vec(rows, cols, g_rows).map_err(|e| e.to_string())?;
        let permuted = ideal_mvm(&v_p, &g_p).map_err(|e| e.to_string())?;
        for j in 0..cols {
            let magnitude: f64 = (0..rows).map(|i| (v[i] * g_flat[i * cols + j]).abs()).sum();
            let bound = f64::EPSILON * rows as f64 * magnitude;
            if (base[j] - permuted[j]).abs() > bound {
                return Err(format!(
                    "row permutation changed column {j}: {} vs {} (bound {bound})",
                    base[j], permuted[j]
                ));
            }
        }

        // Bit-line permutation: outputs permute bit-for-bit (each
        // column's accumulation order is untouched).
        let col_perm = gen::permutation(rng, cols);
        let mut g_cols = vec![0.0f64; rows * cols];
        for i in 0..rows {
            for (dst, &src) in col_perm.iter().enumerate() {
                g_cols[i * cols + dst] = g_flat[i * cols + src];
            }
        }
        let g_c = ConductanceMatrix::from_vec(rows, cols, g_cols).map_err(|e| e.to_string())?;
        let shuffled = ideal_mvm(&v, &g_c).map_err(|e| e.to_string())?;
        for (dst, &src) in col_perm.iter().enumerate() {
            if shuffled[dst].to_bits() != base[src].to_bits() {
                return Err(format!(
                    "column permutation not exact: out[{dst}] = {} vs base[{src}] = {}",
                    shuffled[dst], base[src]
                ));
            }
        }

        // Programmed matrix: permuting output units (weight rows and
        // bias together) permutes the output codes exactly.
        let m = gen::usize_in(rng, 1, 6);
        let k = gen::usize_in(rng, 1, 10);
        let (weight, bias, x) = random_problem(rng, m, k, 1);
        let arch = precise_arch(8);
        let base_codes = ProgrammedMatrix::program(&IdealEngine, &arch, &weight, &bias)
            .and_then(|pm| pm.mvm_codes(&x, 1))
            .map_err(|e| e.to_string())?;
        let out_perm = gen::permutation(rng, m);
        let mut w_p = vec![0.0f32; m * k];
        let mut b_p = vec![0.0f32; m];
        for (dst, &src) in out_perm.iter().enumerate() {
            w_p[dst * k..(dst + 1) * k].copy_from_slice(&weight.data()[src * k..(src + 1) * k]);
            b_p[dst] = bias.data()[src];
        }
        let weight_p = Tensor::from_vec(w_p, &[m, k]).unwrap();
        let bias_p = Tensor::from_vec(b_p, &[m]).unwrap();
        let permuted_codes = ProgrammedMatrix::program(&IdealEngine, &arch, &weight_p, &bias_p)
            .and_then(|pm| pm.mvm_codes(&x, 1))
            .map_err(|e| e.to_string())?;
        for (dst, &src) in out_perm.iter().enumerate() {
            if permuted_codes[dst] != base_codes[src] {
                return Err(format!(
                    "output permutation not exact: code[{dst}] = {} vs base[{src}] = {}",
                    permuted_codes[dst], base_codes[src]
                ));
            }
        }
        Ok(())
    }
}

/// Voltage scaling: a crossbar with only linear non-idealities is a
/// linear network, so `I(αV) = α I(V)` to solver precision; with the
/// sinh device in its linear regime the relation holds approximately.
struct VoltageScalingLinear;

impl Law for VoltageScalingLinear {
    fn name(&self) -> &'static str {
        "metamorphic/voltage_scaling"
    }
    fn category(&self) -> Category {
        Category::Metamorphic
    }
    fn tolerance(&self) -> &'static str {
        "linear config: 1e-8 * max|I| + 1e-12 A; sinh at |V| <= 0.1 V_supply: 1% of max|I|"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let rows = gen::usize_in(rng, 2, 6);
        let cols = gen::usize_in(rng, 2, 6);
        let levels = gen::vec_f64(rng, rows * cols, 0.0, 1.0);
        let alpha = gen::f64_in(rng, 0.1, 0.9);

        // Exactly linear network.
        let params = CrossbarParams::builder(rows, cols)
            .nonideality(NonIdealityConfig::linear_only())
            .build()
            .map_err(|e| e.to_string())?;
        let g = ConductanceMatrix::from_levels(&params, &levels).map_err(|e| e.to_string())?;
        let circuit = CrossbarCircuit::new(&params, &g).map_err(|e| e.to_string())?;
        let v = gen::vec_f64(rng, rows, 0.0, params.v_supply);
        let v_scaled: Vec<f64> = v.iter().map(|x| alpha * x).collect();
        let base = circuit.solve(&v).map_err(|e| e.to_string())?;
        let scaled = circuit.solve(&v_scaled).map_err(|e| e.to_string())?;
        let max_current = base
            .currents
            .iter()
            .fold(0.0f64, |acc, &x| acc.max(x.abs()));
        for (j, (full, part)) in base.currents.iter().zip(&scaled.currents).enumerate() {
            let bound = 1e-8 * max_current + 1e-12;
            if (alpha * full - part).abs() > bound {
                return Err(format!(
                    "linear column {j}: alpha*I = {} vs I(alpha V) = {part} (bound {bound})",
                    alpha * full
                ));
            }
        }

        // Sinh devices, restricted to the linear regime (V/V0 <= 0.1).
        let params = CrossbarParams::builder(rows, cols)
            .nonideality(NonIdealityConfig::all())
            .build()
            .map_err(|e| e.to_string())?;
        let g = ConductanceMatrix::from_levels(&params, &levels).map_err(|e| e.to_string())?;
        let circuit = CrossbarCircuit::new(&params, &g).map_err(|e| e.to_string())?;
        let v_small: Vec<f64> = v.iter().map(|x| 0.1 * x).collect();
        let v_small_scaled: Vec<f64> = v_small.iter().map(|x| alpha * x).collect();
        let base = circuit.solve(&v_small).map_err(|e| e.to_string())?;
        let scaled = circuit.solve(&v_small_scaled).map_err(|e| e.to_string())?;
        let max_current = base
            .currents
            .iter()
            .fold(0.0f64, |acc, &x| acc.max(x.abs()));
        for (j, (full, part)) in base.currents.iter().zip(&scaled.currents).enumerate() {
            let bound = 0.01 * max_current + 1e-12;
            if (alpha * full - part).abs() > bound {
                return Err(format!(
                    "sinh column {j}: alpha*I = {} vs I(alpha V) = {part} (bound {bound})",
                    alpha * full
                ));
            }
        }
        Ok(())
    }
}

/// Batching is a performance detail: evaluating `n` vectors at once
/// must equal evaluating them one at a time, bit-for-bit, on every
/// analytic backend.
struct BatchInvariance;

impl Law for BatchInvariance {
    fn name(&self) -> &'static str {
        "metamorphic/batch_invariance"
    }
    fn category(&self) -> Category {
        Category::Metamorphic
    }
    fn tolerance(&self) -> &'static str {
        "currents_batch(n) bit-identical to n single-vector calls (exact)"
    }
    fn cases(&self) -> u64 {
        6
    }
    fn check(&self, rng: &mut TestRng) -> Result<(), String> {
        let size = gen::usize_in(rng, 2, 8);
        let n = gen::usize_in(rng, 1, 5);
        let params = CrossbarParams::builder(size, size)
            .build()
            .map_err(|e| e.to_string())?;
        let g_levels = gen::vec_f32(rng, size * size, 0.0, 1.0);
        let v_levels = gen::vec_f32(rng, n * size, 0.0, 1.0);

        let engines: [(&str, &dyn CrossbarEngine); 2] =
            [("ideal", &IdealEngine), ("analytical", &AnalyticalEngine)];
        for (name, engine) in engines {
            let tile = engine
                .program(&params, &g_levels)
                .map_err(|e| e.to_string())?;
            let batched = tile
                .currents_batch(&v_levels, n)
                .map_err(|e| e.to_string())?;
            for b in 0..n {
                let single = tile
                    .currents_batch(&v_levels[b * size..(b + 1) * size], 1)
                    .map_err(|e| e.to_string())?;
                for j in 0..size {
                    let (x, y) = (batched[b * size + j], single[j]);
                    if x.to_bits() != y.to_bits() {
                        return Err(format!(
                            "{name} engine, vector {b}, column {j}: batch {x} vs single {y}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

//! End-to-end tests: a real server on an ephemeral port, exercised
//! through real sockets, with every compute answer checked
//! bit-for-bit against a locally built funcsim oracle.

use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use serve::protocol::{self, Incoming, OkBody, Response, Status, MAX_FRAME};
use serve::{Client, ClientError, EngineKind, ModelKind, ServeConfig, Server};

fn tiny_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineKind::Ideal,
        model: ModelKind::None,
        // Deliberately not a multiple of the tile size, so tile-edge
        // padding is on the served path.
        xbar: 8,
        k: 12,
        m: 10,
        max_batch: 4,
        linger_us: 500,
        ..ServeConfig::default()
    }
}

/// Builds the workload, binds an ephemeral port, and runs the server
/// on a background thread. Returns the address, a shutdown handle,
/// and the join handle yielding the drain totals.
fn start_server(
    cfg: &ServeConfig,
) -> (
    std::net::SocketAddr,
    serve::ServerHandle,
    thread::JoinHandle<serve::ServeTotals>,
) {
    let workload = serve::workload::build(cfg).expect("workload builds");
    let server = Server::bind(cfg, workload).expect("bind ephemeral port");
    let addr = server.addr();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, join)
}

#[test]
fn concurrent_mvms_match_the_funcsim_oracle_bit_exactly() {
    let cfg = tiny_cfg();
    let oracle = serve::workload::build(&cfg).expect("oracle builds");
    let (addr, _handle, join) = start_server(&cfg);

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let cfg = cfg.clone();
            let format = oracle.input_format;
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut answers = Vec::new();
                for i in 0..10u64 {
                    let index = w * 100 + i;
                    let codes = serve::workload::request_codes(format, cfg.k, cfg.seed, index);
                    let out = client.mvm(codes).expect("mvm answered");
                    answers.push((index, out));
                }
                answers
            })
        })
        .collect();
    for worker in workers {
        for (index, served) in worker.join().expect("worker") {
            let codes = serve::workload::request_codes(oracle.input_format, cfg.k, cfg.seed, index);
            let expected = oracle.matrix.mvm_codes(&codes, 1).expect("oracle mvm");
            assert_eq!(served, expected, "request {index} diverged from the oracle");
        }
    }

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown_server().expect("shutdown accepted");
    let totals = join.join().expect("clean drain");
    assert!(totals.requests >= 41, "{} requests", totals.requests);
    assert_eq!(totals.errors, 0);
    assert!(totals.batches >= 1);
}

#[test]
fn drifted_workload_matches_the_oracle_bit_exactly() {
    // The zoo active end-to-end: every tile ages through the
    // conductance-drift model. Server and oracle build from the same
    // config, so their tiles drift identically and the served answers
    // must stay bit-exact — while genuinely differing from the
    // undrifted workload.
    let cfg = ServeConfig {
        drift_t: 1e4,
        drift_nu: 0.05,
        ..tiny_cfg()
    };
    assert!(cfg.drift_active());
    let oracle = serve::workload::build(&cfg).expect("oracle builds");
    let undrifted = serve::workload::build(&tiny_cfg()).expect("undrifted oracle builds");
    let (addr, _handle, join) = start_server(&cfg);

    let mut client = Client::connect(addr).expect("connect");
    let mut saw_drift = false;
    for index in 0..12u64 {
        let codes = serve::workload::request_codes(oracle.input_format, cfg.k, cfg.seed, index);
        let served = client.mvm(codes.clone()).expect("mvm answered");
        let expected = oracle.matrix.mvm_codes(&codes, 1).expect("oracle mvm");
        assert_eq!(
            served, expected,
            "drifted request {index} diverged from the drifted oracle"
        );
        saw_drift |= served
            != undrifted
                .matrix
                .mvm_codes(&codes, 1)
                .expect("undrifted mvm");
    }
    assert!(saw_drift, "drift at t=1e4 left every answer untouched");

    client.shutdown_server().expect("shutdown accepted");
    let totals = join.join().expect("clean drain");
    assert_eq!(totals.errors, 0);
}

#[test]
fn infer_matches_the_oracle_network_bit_exactly() {
    let cfg = ServeConfig {
        model: ModelKind::SynthS,
        train_per_class: 2,
        train_epochs: 1,
        ..tiny_cfg()
    };
    let oracle = serve::workload::build(&cfg).expect("oracle builds");
    let network = oracle.network.as_ref().expect("oracle network");
    let shape = oracle.input_shape;
    let (addr, _handle, join) = start_server(&cfg);

    let mut client = Client::connect(addr).expect("connect");
    for index in 0..6u64 {
        let pixels = serve::workload::request_image(shape, cfg.seed, index);
        let logits = client
            .infer(
                [shape[0] as u32, shape[1] as u32, shape[2] as u32],
                pixels.clone(),
            )
            .expect("infer answered");
        let images =
            nn::Tensor::from_vec(pixels, &[1, shape[0], shape[1], shape[2]]).expect("image tensor");
        let expected = network.forward(&images).expect("oracle forward");
        assert_eq!(
            logits,
            expected.data().to_vec(),
            "inference {index} diverged from the oracle"
        );
        assert_eq!(logits.len(), oracle.classes);
    }

    client.shutdown_server().expect("shutdown accepted");
    let totals = join.join().expect("clean drain");
    assert_eq!(totals.errors, 0);
}

#[test]
fn malformed_frames_get_an_error_status_and_a_closed_connection() {
    let cfg = tiny_cfg();
    let (addr, handle, join) = start_server(&cfg);

    // Unknown opcode: error response, then the server closes.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        let mut body = vec![0xFFu8];
        body.extend_from_slice(&7u64.to_le_bytes());
        let mut frame = ((body.len() as u32).to_le_bytes()).to_vec();
        frame.extend_from_slice(&body);
        protocol::write_frame(&mut raw, &frame).expect("send");
        let Incoming::Frame(payload) =
            protocol::read_frame(&mut raw, MAX_FRAME, &|| false).expect("error frame")
        else {
            panic!("expected frame");
        };
        let (_, response) = protocol::decode_response(&payload, OkBody::Empty).expect("decodes");
        let Response::Error { status, .. } = response else {
            panic!("expected error response, got {response:?}");
        };
        assert_eq!(status, Status::BadRequest);
        assert!(matches!(
            protocol::read_frame(&mut raw, MAX_FRAME, &|| false),
            Err(protocol::FrameError::Closed)
        ));
    }

    // Oversized declared length: error response, then close.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        protocol::write_frame(&mut raw, &((MAX_FRAME as u32 + 1).to_le_bytes()))
            .expect("send header");
        let Incoming::Frame(payload) =
            protocol::read_frame(&mut raw, MAX_FRAME, &|| false).expect("error frame")
        else {
            panic!("expected frame");
        };
        let (_, response) = protocol::decode_response(&payload, OkBody::Empty).expect("decodes");
        assert!(
            matches!(
                response,
                Response::Error {
                    status: Status::BadRequest,
                    ..
                }
            ),
            "got {response:?}"
        );
    }

    // Truncated frame (header promises more than is sent, then the
    // client disconnects): the server must just drop the connection.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        use std::io::Write;
        raw.write_all(&100u32.to_le_bytes()).expect("header");
        raw.write_all(&[1, 2, 3]).expect("partial body");
        drop(raw);
    }

    // A shape error is a *recoverable* request error: the connection
    // stays open and the next request still works.
    {
        let mut client = Client::connect(addr).expect("connect");
        let err = client.mvm(vec![0i64; cfg.k + 3]).expect_err("wrong k");
        assert!(
            matches!(
                err,
                ClientError::Server {
                    status: Status::Shape,
                    ..
                }
            ),
            "got {err}"
        );
        let codes =
            serve::workload::request_codes(funcsim::FxpFormat::paper_default(), cfg.k, cfg.seed, 0);
        client.mvm(codes).expect("connection still serves");

        // No model loaded: Infer answers Unavailable, connection
        // stays up.
        let err = client
            .infer([1, 2, 2], vec![0.0; 4])
            .expect_err("no model loaded");
        assert!(
            matches!(
                err,
                ClientError::Server {
                    status: Status::Unavailable,
                    ..
                }
            ),
            "got {err}"
        );
        client.ping().expect("still alive");
    }

    // After all that abuse the server still drains cleanly.
    handle.shutdown();
    let totals = join.join().expect("clean drain");
    assert!(totals.errors >= 3, "{} errors counted", totals.errors);
}

#[test]
fn http_get_stats_answers_json_on_the_same_port() {
    let cfg = tiny_cfg();
    let (addr, handle, join) = start_server(&cfg);

    // Generate a little traffic first so the stats have content.
    let mut client = Client::connect(addr).expect("connect");
    let codes =
        serve::workload::request_codes(funcsim::FxpFormat::paper_default(), cfg.k, cfg.seed, 1);
    client.mvm(codes).expect("mvm");

    let fetch = |path: &str| -> String {
        use std::io::{Read, Write};
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("request");
        let mut response = String::new();
        raw.read_to_string(&mut response).expect("response");
        response
    };

    let ok = fetch("/stats");
    assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    assert!(ok.contains("application/json"));
    for field in ["batch_occupancy", "latency_us", "queue", "requests"] {
        assert!(ok.contains(field), "stats missing {field}: {ok}");
    }

    let missing = fetch("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    // The binary Stats opcode serves the same document.
    let json = client.stats().expect("stats op");
    assert!(json.contains("batch_occupancy"));

    handle.shutdown();
    join.join().expect("clean drain");
}

#[test]
fn configure_retunes_the_admission_queue_live() {
    let cfg = tiny_cfg();
    let (addr, handle, join) = start_server(&cfg);

    let mut client = Client::connect(addr).expect("connect");
    client.configure(1, 0).expect("configure");
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("\"max_batch\":1") && stats.contains("\"linger_us\":0"),
        "{stats}"
    );
    client.configure(32, 750).expect("configure back");
    let stats = client.stats().expect("stats");
    assert!(
        stats.contains("\"max_batch\":32") && stats.contains("\"linger_us\":750"),
        "{stats}"
    );

    handle.shutdown();
    join.join().expect("clean drain");
}

#[test]
fn shutdown_drains_inflight_requests_before_returning() {
    // Submit work from several clients, immediately request shutdown,
    // and require every already-accepted request to still be answered.
    let cfg = tiny_cfg();
    let oracle = serve::workload::build(&cfg).expect("oracle builds");
    let (addr, handle, join) = start_server(&cfg);

    let progress = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let workers: Vec<_> = (0..3)
        .map(|w| {
            let cfg = cfg.clone();
            let format = oracle.input_format;
            let progress = std::sync::Arc::clone(&progress);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut answered = 0usize;
                for i in 0..200u64 {
                    let codes =
                        serve::workload::request_codes(format, cfg.k, cfg.seed, w * 1000 + i);
                    match client.mvm(codes) {
                        Ok(_) => {
                            answered += 1;
                            progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        // Once the drain begins, new submissions may
                        // be refused — but never dropped silently.
                        Err(ClientError::Server {
                            status: Status::Unavailable,
                            ..
                        }) => break,
                        Err(ClientError::Frame(_)) | Err(ClientError::Io(_)) => break,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                answered
            })
        })
        .collect();
    // Only pull the plug once traffic is demonstrably flowing, so the
    // drain has genuine in-flight work to finish.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while progress.load(std::sync::atomic::Ordering::Relaxed) < 6 {
        assert!(std::time::Instant::now() < deadline, "no traffic answered");
        thread::sleep(Duration::from_millis(1));
    }
    handle.shutdown();
    let answered: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let totals = join.join().expect("clean drain");
    assert!(answered >= 6, "at least the in-flight work was answered");
    assert!(totals.requests as usize >= answered);
}

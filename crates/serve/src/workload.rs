//! Hot workload construction: the programmed service matrix, the
//! trained vision network, and the engine behind both.
//!
//! Everything expensive routes through the same content-addressed
//! artifact store as `bench::setup` (`results/store/`), and the
//! GENIEx surrogate key layout deliberately mirrors
//! `bench::setup::train_surrogate` (flavor `"rand"`, same seeds), so
//! a surrogate trained by one side is a warm cache hit for the other.
//! Every step is deterministic, so even on a cold store the server
//! and the loadgen oracle independently arrive at bit-identical
//! programmed state — the store only saves time, never changes
//! results.

use std::io::Cursor;

use funcsim::{
    AnalyticalEngine, ArchConfig, CrossbarEngine, CrossbarNetwork, FxpFormat, GeniexEngine,
    IdealEngine, ProgrammedMatrix, ZooEngine,
};
use geniex::dataset::{generate, DatasetConfig};
use geniex::{Geniex, TrainConfig};
use nn::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{KeyBuilder, Store};
use vision::{train_model, MicroResNet, SynthSpec, SynthVision, TrainOptions};
use xbar::CrossbarParams;

use crate::config::{results_dir, EngineKind, ModelKind, ServeConfig};

// Mirrors bench::setup so surrogate artifacts are shared: same init
// seed, data seed, and key layout.
const SURROGATE_INIT_SEED: u64 = 3;
const SURROGATE_DATA_SEED: u64 = 7;
const MODEL_SEED: u64 = 2;
const TRAIN_SEED: u64 = 1;

/// The process-wide artifact store, rooted at `results/store/` with
/// the mode taken from `GENIEX_STORE` at first use.
fn store() -> &'static Store {
    static STORE: std::sync::OnceLock<Store> = std::sync::OnceLock::new();
    STORE.get_or_init(|| Store::open(results_dir().join("store")))
}

/// Everything the server keeps hot across requests.
pub struct ServeWorkload {
    /// The MVM service matrix, programmed onto crossbars.
    pub matrix: ProgrammedMatrix,
    /// The full-network inference workload (when a model is loaded).
    pub network: Option<CrossbarNetwork>,
    /// Input image shape `[c, h, w]` of the network.
    pub input_shape: [usize; 3],
    /// Number of output classes of the network.
    pub classes: usize,
    /// MVM input width.
    pub k: usize,
    /// MVM output width.
    pub m: usize,
    /// The input activation format MVM codes must use.
    pub input_format: FxpFormat,
}

/// Builds the hot workload for `cfg`: trains or loads the surrogate
/// (for the geniex engine), trains or loads the vision model, and
/// programs both onto crossbar tiles.
///
/// # Errors
///
/// Returns a description of the first failing stage.
pub fn build(cfg: &ServeConfig) -> Result<ServeWorkload, String> {
    let params = CrossbarParams::builder(cfg.xbar, cfg.xbar)
        .build()
        .map_err(|e| format!("crossbar params: {e}"))?;
    let arch = ArchConfig::default().with_xbar(params.clone());
    let engine = build_engine(cfg, &params)?;
    let engine = engine.as_ref();

    let (weight, bias) = service_matrix(cfg);
    let matrix =
        ProgrammedMatrix::program_labeled(engine, &arch, &weight, &bias, Some("serve_mvm"))
            .map_err(|e| format!("service matrix programming: {e}"))?;

    let (network, input_shape, classes) = match cfg.model {
        ModelKind::None => (None, [0usize; 3], 0),
        ModelKind::SynthS => {
            let model = vision_model(cfg)?;
            let spec = model.to_spec();
            let (shape, classes) = (spec.input_shape, spec.classes);
            let network = CrossbarNetwork::build(spec, &arch, engine)
                .map_err(|e| format!("network programming: {e}"))?;
            (Some(network), shape, classes)
        }
    };

    Ok(ServeWorkload {
        matrix,
        network,
        input_shape,
        classes,
        k: cfg.k,
        m: cfg.m,
        input_format: arch.input_format,
    })
}

fn build_engine(
    cfg: &ServeConfig,
    params: &CrossbarParams,
) -> Result<Box<dyn CrossbarEngine>, String> {
    let engine: Box<dyn CrossbarEngine> = match cfg.engine {
        EngineKind::Ideal => Box::new(IdealEngine),
        EngineKind::Analytical => Box::new(AnalyticalEngine),
        EngineKind::Geniex => Box::new(GeniexEngine::new(surrogate(cfg, params)?)),
    };
    if !cfg.drift_active() {
        return Ok(engine);
    }
    // Drifted workload: every programmed tile ages through the zoo's
    // retention model. Server and loadgen oracle build from the same
    // config, so tiles program in the same order and draw the same
    // sub-streams — the answers stay bit-identical.
    let stack = xbar::zoo::NonIdealityStack::new(cfg.seed)
        .with_model(Box::new(xbar::zoo::ConductanceDrift {
            t: cfg.drift_t,
            t0: 1.0,
            nu: cfg.drift_nu,
        }))
        .map_err(|e| format!("drift config: {e}"))?;
    Ok(Box::new(ZooEngine::new(engine, stack)))
}

/// Trains (or loads) the GENIEx surrogate for the serve design point.
/// The store key layout matches `bench::setup::train_surrogate`, so
/// the two crates share cached surrogates for identical budgets.
fn surrogate(cfg: &ServeConfig, params: &CrossbarParams) -> Result<Geniex, String> {
    let data_config = DatasetConfig {
        samples: cfg.surrogate_samples,
        seed: SURROGATE_DATA_SEED,
        ..DatasetConfig::default()
    };
    let train_config = TrainConfig {
        epochs: cfg.surrogate_epochs,
        batch_size: 32,
        learning_rate: 1e-3,
        seed: 4,
        ..TrainConfig::default()
    };
    let mut kb = KeyBuilder::new(store::KIND_SURROGATE);
    kb.str("flavor", "rand")
        .nested("params", params)
        .nested("dataset", &data_config)
        .usize("hidden", cfg.surrogate_hidden)
        .u64("init_seed", SURROGATE_INIT_SEED)
        .nested("train", &train_config);
    let key = kb.finish();
    if let Some(bytes) = store().load(&key) {
        if let Ok(surrogate) = Geniex::load(&mut Cursor::new(bytes), params) {
            eprintln!("[serve] loaded cached surrogate ({key})");
            return Ok(surrogate);
        }
    }

    let start = std::time::Instant::now();
    let data = generate(params, &data_config).map_err(|e| format!("truth dataset: {e}"))?;
    let mut surrogate = Geniex::new(params, cfg.surrogate_hidden, SURROGATE_INIT_SEED)
        .map_err(|e| format!("surrogate construction: {e}"))?;
    let report = surrogate
        .train(&data, &train_config)
        .map_err(|e| format!("surrogate training: {e}"))?;
    eprintln!(
        "[serve] surrogate for {}x{} trained in {:.1?} (loss {:.5})",
        params.rows,
        params.cols,
        start.elapsed(),
        report.final_loss
    );
    let mut bytes = Vec::new();
    if surrogate.save(&mut bytes).is_ok() {
        let _ = store().save(&key, &bytes);
    }
    Ok(surrogate)
}

/// Trains (or loads) the synth-s vision model at the serve budget.
fn vision_model(cfg: &ServeConfig) -> Result<MicroResNet, String> {
    let spec = SynthSpec::SynthS;
    let options = TrainOptions {
        epochs: cfg.train_epochs,
        batch_size: 32,
        learning_rate: 2e-3,
        seed: 5,
    };
    let mut kb = KeyBuilder::new(store::KIND_VISION_MODEL);
    kb.nested("spec", &spec)
        .usize("train_per_class", cfg.train_per_class)
        .u64("train_seed", TRAIN_SEED)
        .u64("model_seed", MODEL_SEED)
        .nested("options", &options);
    let key = kb.finish();
    if let Some(bytes) = store().load(&key) {
        if let Ok(model) = MicroResNet::load(&mut Cursor::new(bytes)) {
            eprintln!("[serve] loaded cached {} model ({key})", spec.name());
            return Ok(model);
        }
    }

    let start = std::time::Instant::now();
    let train = SynthVision::generate(spec, cfg.train_per_class, TRAIN_SEED)
        .map_err(|e| format!("training set: {e}"))?;
    let mut model = MicroResNet::new(spec, MODEL_SEED);
    train_model(&mut model, &train, &options).map_err(|e| format!("model training: {e}"))?;
    eprintln!(
        "[serve] {} model trained in {:.1?}",
        spec.name(),
        start.elapsed()
    );
    let mut bytes = Vec::new();
    if model.save(&mut bytes).is_ok() {
        let _ = store().save(&key, &bytes);
    }
    Ok(model)
}

/// The deterministic `[m, k]` service matrix and `[m]` bias: both the
/// server and the loadgen oracle derive them from `cfg.seed` alone.
fn service_matrix(cfg: &ServeConfig) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let weight: Vec<f32> = (0..cfg.m * cfg.k)
        .map(|_| rng.gen_range(-0.9..0.9) as f32)
        .collect();
    let bias: Vec<f32> = (0..cfg.m)
        .map(|_| rng.gen_range(-0.25..0.25) as f32)
        .collect();
    let weight = Tensor::from_vec(weight, &[cfg.m, cfg.k]).expect("weight shape");
    let bias = Tensor::from_vec(bias, &[cfg.m]).expect("bias shape");
    (weight, bias)
}

/// Deterministic request inputs: MVM code vector `i` of width `k`.
/// Shared by loadgen (request generation) and its oracle check.
pub fn request_codes(format: FxpFormat, k: usize, seed: u64, index: u64) -> Vec<i64> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    (0..k)
        .map(|_| format.quantize(rng.gen_range(-1.0..1.0) as f32))
        .collect()
}

/// Deterministic request inputs: image `index` with `[c, h, w]`
/// pixels in `[0, 1)`.
pub fn request_image(shape: [usize; 3], seed: u64, index: u64) -> Vec<f32> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03).wrapping_add(2));
    (0..shape.iter().product::<usize>())
        .map(|_| rng.gen_range(0.0..1.0) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            engine: EngineKind::Ideal,
            model: ModelKind::None,
            xbar: 8,
            k: 12,
            m: 10,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn ideal_mvm_workload_builds_and_answers() {
        let cfg = tiny_config();
        let workload = build(&cfg).expect("workload builds");
        assert!(workload.network.is_none());
        let codes = request_codes(workload.input_format, cfg.k, cfg.seed, 0);
        let out = workload.matrix.mvm_codes(&codes, 1).expect("mvm");
        assert_eq!(out.len(), cfg.m);
        // Deterministic: a second build answers bit-identically.
        let again = build(&cfg).expect("workload builds");
        assert_eq!(again.matrix.mvm_codes(&codes, 1).expect("mvm"), out);
    }

    #[test]
    fn drifted_workload_is_deterministic_and_differs_from_fresh() {
        let fresh_cfg = tiny_config();
        let drifted_cfg = ServeConfig {
            drift_t: 1e4,
            drift_nu: 0.05,
            ..tiny_config()
        };
        assert!(!fresh_cfg.drift_active());
        assert!(drifted_cfg.drift_active());
        let fresh = build(&fresh_cfg).expect("fresh workload");
        let drifted = build(&drifted_cfg).expect("drifted workload");
        let codes = request_codes(fresh.input_format, fresh_cfg.k, fresh_cfg.seed, 0);
        let out_fresh = fresh.matrix.mvm_codes(&codes, 1).expect("mvm");
        let out_drifted = drifted.matrix.mvm_codes(&codes, 1).expect("mvm");
        assert_ne!(out_fresh, out_drifted, "drift must move the answers");
        // Two independent drifted builds agree bit-for-bit — the
        // loadgen oracle contract.
        let again = build(&drifted_cfg).expect("drifted workload again");
        assert_eq!(again.matrix.mvm_codes(&codes, 1).expect("mvm"), out_drifted);
    }

    #[test]
    fn request_inputs_are_deterministic_and_distinct() {
        let format = FxpFormat::paper_default();
        let a = request_codes(format, 16, 42, 3);
        let b = request_codes(format, 16, 42, 3);
        let c = request_codes(format, 16, 42, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for code in &a {
            assert!(*code >= format.min_code() && *code <= format.max_code());
        }
        let img = request_image([1, 4, 4], 42, 0);
        assert_eq!(img.len(), 16);
        assert_eq!(img, request_image([1, 4, 4], 42, 0));
    }
}

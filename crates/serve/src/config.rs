//! Server configuration from `GENIEX_SERVE_*` environment knobs.
//!
//! The load generator builds its funcsim oracle from the *same*
//! config (same env, same defaults), so the server's answers can be
//! compared bit-for-bit against a local computation. Every knob is
//! therefore part of the workload identity and lands in the run
//! manifest.

use telemetry::Json;

/// Which crossbar backend serves requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Parasitic-free linear tiles.
    Ideal,
    /// Linear analytical parasitics model.
    Analytical,
    /// Trained GENIEx neural surrogate (the paper's model).
    Geniex,
}

impl EngineKind {
    /// Short name (manifest/stats value and env spelling).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Ideal => "ideal",
            EngineKind::Analytical => "analytical",
            EngineKind::Geniex => "geniex",
        }
    }

    fn parse(s: &str) -> Option<EngineKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ideal" => Some(EngineKind::Ideal),
            "analytical" => Some(EngineKind::Analytical),
            "geniex" => Some(EngineKind::Geniex),
            _ => None,
        }
    }
}

/// Whether a vision model is kept hot for `Infer` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// MVM-only service; `Infer` requests are rejected.
    None,
    /// The synth-s MicroResNet workload.
    SynthS,
}

impl ModelKind {
    /// Short name (manifest/stats value and env spelling).
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::None => "none",
            ModelKind::SynthS => "synth-s",
        }
    }

    fn parse(s: &str) -> Option<ModelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Some(ModelKind::None),
            "synth-s" | "synths" => Some(ModelKind::SynthS),
            _ => None,
        }
    }
}

/// Complete serve configuration. See [`ServeConfig::from_env`] for
/// the knobs and defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address (`GENIEX_SERVE_ADDR`), default `127.0.0.1:4917`.
    /// Port 0 binds an ephemeral port (printed on the READY line).
    pub addr: String,
    /// Max requests coalesced into one compute batch
    /// (`GENIEX_SERVE_BATCH`), default 16.
    pub max_batch: usize,
    /// Max time a forming batch waits for stragglers, in µs
    /// (`GENIEX_SERVE_LINGER_US`), default 200.
    pub linger_us: u64,
    /// Admission-queue capacity before backpressure
    /// (`GENIEX_SERVE_QUEUE`), default 1024.
    pub queue_capacity: usize,
    /// Crossbar backend (`GENIEX_SERVE_ENGINE`), default `geniex`.
    pub engine: EngineKind,
    /// Crossbar tile size (`GENIEX_SERVE_XBAR`), default 16.
    pub xbar: usize,
    /// MVM service matrix input width (`GENIEX_SERVE_K`), default 48.
    pub k: usize,
    /// MVM service matrix output width (`GENIEX_SERVE_M`), default 48.
    pub m: usize,
    /// Weight seed of the service matrix (`GENIEX_SERVE_SEED`),
    /// default 42.
    pub seed: u64,
    /// Vision model kept hot (`GENIEX_SERVE_MODEL`), default
    /// `synth-s`.
    pub model: ModelKind,
    /// GENIEx surrogate budget (`GENIEX_SERVE_SURROGATE_SAMPLES` /
    /// `_HIDDEN` / `_EPOCHS`), defaults 240 / 48 / 40 — far below the
    /// figure-quality budgets, but the serve benchmarks measure
    /// throughput, not surrogate fidelity.
    pub surrogate_samples: usize,
    pub surrogate_hidden: usize,
    pub surrogate_epochs: usize,
    /// Vision training budget (`GENIEX_SERVE_TRAIN_PER_CLASS` /
    /// `GENIEX_SERVE_TRAIN_EPOCHS`), defaults 8 / 6.
    pub train_per_class: usize,
    pub train_epochs: usize,
    /// Conductance drift time (`GENIEX_SERVE_DRIFT_T`), default 0
    /// (disabled). Values > 1 activate the zoo's `g(t) = g0·(t/t0)^-ν`
    /// drift model with `t0` fixed at 1, aging every programmed tile.
    pub drift_t: f64,
    /// Drift exponent ν (`GENIEX_SERVE_DRIFT_NU`), default 0.05.
    pub drift_nu: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4917".to_string(),
            max_batch: 16,
            linger_us: 200,
            queue_capacity: 1024,
            engine: EngineKind::Geniex,
            xbar: 16,
            k: 48,
            m: 48,
            seed: 42,
            model: ModelKind::SynthS,
            surrogate_samples: 240,
            surrogate_hidden: 48,
            surrogate_epochs: 40,
            train_per_class: 8,
            train_epochs: 6,
            drift_t: 0.0,
            drift_nu: 0.05,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl ServeConfig {
    /// Reads the `GENIEX_SERVE_*` knobs, falling back to the defaults
    /// above. Invalid values silently fall back (same policy as
    /// `GENIEX_THREADS` and `GENIEX_GATE_TOLERANCE`).
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            addr: std::env::var("GENIEX_SERVE_ADDR").unwrap_or(d.addr),
            max_batch: env_parse("GENIEX_SERVE_BATCH", d.max_batch).max(1),
            linger_us: env_parse("GENIEX_SERVE_LINGER_US", d.linger_us),
            queue_capacity: env_parse("GENIEX_SERVE_QUEUE", d.queue_capacity).max(1),
            engine: std::env::var("GENIEX_SERVE_ENGINE")
                .ok()
                .and_then(|v| EngineKind::parse(&v))
                .unwrap_or(d.engine),
            xbar: env_parse("GENIEX_SERVE_XBAR", d.xbar).max(2),
            k: env_parse("GENIEX_SERVE_K", d.k).max(1),
            m: env_parse("GENIEX_SERVE_M", d.m).max(1),
            seed: env_parse("GENIEX_SERVE_SEED", d.seed),
            model: std::env::var("GENIEX_SERVE_MODEL")
                .ok()
                .and_then(|v| ModelKind::parse(&v))
                .unwrap_or(d.model),
            surrogate_samples: env_parse("GENIEX_SERVE_SURROGATE_SAMPLES", d.surrogate_samples)
                .max(8),
            surrogate_hidden: env_parse("GENIEX_SERVE_SURROGATE_HIDDEN", d.surrogate_hidden).max(2),
            surrogate_epochs: env_parse("GENIEX_SERVE_SURROGATE_EPOCHS", d.surrogate_epochs).max(1),
            train_per_class: env_parse("GENIEX_SERVE_TRAIN_PER_CLASS", d.train_per_class).max(1),
            train_epochs: env_parse("GENIEX_SERVE_TRAIN_EPOCHS", d.train_epochs).max(1),
            drift_t: env_parse("GENIEX_SERVE_DRIFT_T", d.drift_t),
            drift_nu: env_parse("GENIEX_SERVE_DRIFT_NU", d.drift_nu),
        }
    }

    /// Whether the drift knobs activate the non-ideality zoo (a drift
    /// time at or below the reference `t0 = 1` is the identity).
    pub fn drift_active(&self) -> bool {
        self.drift_t > 1.0 && self.drift_nu > 0.0
    }

    /// Manifest/stats fields describing this configuration (the
    /// satellite requirement: serve config lands in run manifests).
    pub fn manifest_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("addr", Json::from(self.addr.as_str())),
            ("max_batch", Json::from(self.max_batch)),
            ("linger_us", Json::from(self.linger_us)),
            ("queue_capacity", Json::from(self.queue_capacity)),
            ("engine", Json::from(self.engine.name())),
            ("xbar", Json::from(self.xbar)),
            ("k", Json::from(self.k)),
            ("m", Json::from(self.m)),
            ("seed", Json::from(self.seed)),
            ("model", Json::from(self.model.name())),
            ("surrogate_samples", Json::from(self.surrogate_samples)),
            ("surrogate_hidden", Json::from(self.surrogate_hidden)),
            ("surrogate_epochs", Json::from(self.surrogate_epochs)),
            ("train_per_class", Json::from(self.train_per_class)),
            ("train_epochs", Json::from(self.train_epochs)),
            ("drift_t", Json::from(self.drift_t)),
            ("drift_nu", Json::from(self.drift_nu)),
            ("threads", Json::from(parallel::default_threads())),
        ]
    }
}

/// Results directory at the repo root (mirrors `bench::setup`; serve
/// cannot depend on bench without a cycle, bench depends on serve for
/// the loadgen client).
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/serve; results live at the repo root.
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.max_batch >= 1);
        assert!(c.queue_capacity >= c.max_batch);
        assert_eq!(c.engine, EngineKind::Geniex);
        assert_eq!(c.engine.name(), "geniex");
        assert_eq!(c.model.name(), "synth-s");
        assert!(c.k % c.xbar == 0, "default k tiles evenly");
    }

    #[test]
    fn engine_and_model_names_parse_back() {
        for e in [
            EngineKind::Ideal,
            EngineKind::Analytical,
            EngineKind::Geniex,
        ] {
            assert_eq!(EngineKind::parse(e.name()), Some(e));
        }
        assert_eq!(EngineKind::parse("bogus"), None);
        for m in [ModelKind::None, ModelKind::SynthS] {
            assert_eq!(ModelKind::parse(m.name()), Some(m));
        }
        assert_eq!(ModelKind::parse("bogus"), None);
    }

    #[test]
    fn manifest_fields_cover_the_key_knobs() {
        let fields = ServeConfig::default().manifest_fields();
        for want in ["addr", "max_batch", "linger_us", "engine", "threads"] {
            assert!(
                fields.iter().any(|(k, _)| *k == want),
                "missing manifest field {want}"
            );
        }
    }
}

//! `geniex-serve` — the long-running inference server.
//!
//! ```text
//! geniex-serve [--addr HOST:PORT] [--batch N] [--linger-us N] [--engine KIND]
//! ```
//!
//! Flags override the corresponding `GENIEX_SERVE_*` environment
//! knobs (see `serve::ServeConfig::from_env` for the full set). The
//! server prints `READY addr=<ip:port>` on stdout once it accepts
//! connections — scripts wait for that line — and drains cleanly on
//! SIGTERM/SIGINT or a `Shutdown` request, exiting 0.

use serve::{ServeConfig, Server};
use telemetry::Json;

fn main() {
    let mut cfg = ServeConfig::from_env();
    if let Err(e) = apply_args(&mut cfg, std::env::args().skip(1)) {
        eprintln!("geniex-serve: {e}");
        eprintln!(
            "usage: geniex-serve [--addr HOST:PORT] [--batch N] [--linger-us N] [--engine ideal|analytical|geniex]"
        );
        std::process::exit(2);
    }

    telemetry::set_enabled(true);
    let logs = serve::config::results_dir().join("logs");
    let manifest = telemetry::start_run(&logs, "serve", &cfg.manifest_fields())
        .expect("run manifest creation");

    eprintln!(
        "[serve] building workload (engine={}, model={}, xbar={}, k={}, m={})",
        cfg.engine.name(),
        cfg.model.name(),
        cfg.xbar,
        cfg.k,
        cfg.m
    );
    let build_start = std::time::Instant::now();
    let workload = match serve::workload::build(&cfg) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("geniex-serve: workload build failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("[serve] workload hot in {:.1?}", build_start.elapsed());

    let server = match Server::bind(&cfg, workload) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("geniex-serve: bind {} failed: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    #[cfg(unix)]
    server.install_signal_handlers();

    // The READY line is the startup contract: CI and run_final.sh
    // wait for it before pointing loadgen at the port.
    println!("READY addr={}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(totals) => {
            eprintln!(
                "[serve] drained: {} requests ({} errors) in {} batches over {} connections",
                totals.requests, totals.errors, totals.batches, totals.connections
            );
            let _ = manifest.finish(&[
                ("requests", Json::from(totals.requests)),
                ("errors", Json::from(totals.errors)),
                ("batches", Json::from(totals.batches)),
                ("connections", Json::from(totals.connections)),
                ("clean_drain", Json::Bool(true)),
            ]);
        }
        Err(e) => {
            eprintln!("geniex-serve: listener failed: {e}");
            let _ = manifest.finish(&[("clean_drain", Json::Bool(false))]);
            std::process::exit(1);
        }
    }
}

fn apply_args(cfg: &mut ServeConfig, mut args: impl Iterator<Item = String>) -> Result<(), String> {
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--batch" => {
                cfg.max_batch = value("--batch")?
                    .parse::<usize>()
                    .map_err(|_| "--batch expects a positive integer".to_string())?
                    .max(1)
            }
            "--linger-us" => {
                cfg.linger_us = value("--linger-us")?
                    .parse::<u64>()
                    .map_err(|_| "--linger-us expects an integer".to_string())?
            }
            "--engine" => {
                let v = value("--engine")?;
                cfg.engine = match v.as_str() {
                    "ideal" => serve::EngineKind::Ideal,
                    "analytical" => serve::EngineKind::Analytical,
                    "geniex" => serve::EngineKind::Geniex,
                    other => return Err(format!("unknown engine '{other}'")),
                };
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(())
}

//! Wire protocol of the inference service.
//!
//! Frames are length-prefixed: a little-endian `u32` byte count
//! followed by that many payload bytes. Request payloads start with a
//! one-byte opcode and a little-endian `u64` request id; response
//! payloads start with a one-byte status and echo the id. All numbers
//! are little-endian; activation codes travel as `i64` (the fixed-point
//! code domain of `funcsim`), images and logits as `f32`.
//!
//! The same port also answers plain `GET /stats` HTTP requests: the
//! ASCII bytes `"GET "` read as a `u32` length of ~542 MB, far above
//! [`MAX_FRAME`], so the two framings cannot be confused. The reader
//! reports the HTTP case separately instead of rejecting it.
//!
//! Every decoder here is total: malformed input produces a
//! [`ProtoError`] (and, at the connection layer, an error-status
//! response followed by a close) — never a panic.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard cap on a frame payload, requests and responses alike. Large
/// enough for a few thousand-wide MVM batch, small enough that a
/// garbage length prefix cannot make the server allocate gigabytes.
pub const MAX_FRAME: usize = 4 << 20;

/// Request opcodes (first payload byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty body.
    Ping = 1,
    /// Single fixed-point MVM against the hot service matrix.
    Mvm = 2,
    /// Full-network inference of one image.
    Infer = 3,
    /// Live server statistics as a JSON document.
    Stats = 4,
    /// Re-tune the admission queue (max batch + linger) at runtime.
    Configure = 5,
    /// Ask the server to drain and exit.
    Shutdown = 6,
}

impl Opcode {
    fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            1 => Some(Opcode::Ping),
            2 => Some(Opcode::Mvm),
            3 => Some(Opcode::Infer),
            4 => Some(Opcode::Stats),
            5 => Some(Opcode::Configure),
            6 => Some(Opcode::Shutdown),
            _ => None,
        }
    }
}

/// Response status (first payload byte of a response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    Ok = 0,
    /// Unparseable or unknown request; the connection closes after
    /// this response.
    BadRequest = 1,
    /// Parseable request whose dimensions don't match the hot
    /// workload (wrong `k`, wrong image shape).
    Shape = 2,
    /// Compute-side failure.
    Internal = 3,
    /// The server is shutting down or the admission queue is full;
    /// retry later (backpressure signal).
    Unavailable = 4,
}

impl Status {
    fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::BadRequest),
            2 => Some(Status::Shape),
            3 => Some(Status::Internal),
            4 => Some(Status::Unavailable),
            _ => None,
        }
    }

    /// Short lowercase name (used in error messages and stats).
    pub fn name(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadRequest => "bad_request",
            Status::Shape => "shape",
            Status::Internal => "internal",
            Status::Unavailable => "unavailable",
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Ping,
    /// `codes` is one input-activation vector of length `k` in the
    /// service matrix's input format.
    Mvm {
        codes: Vec<i64>,
    },
    /// One image, `[c, h, w]` row-major pixels.
    Infer {
        shape: [u32; 3],
        pixels: Vec<f32>,
    },
    Stats,
    Configure {
        max_batch: u32,
        linger_us: u64,
    },
    Shutdown,
}

impl Request {
    /// The opcode this request serializes under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::Mvm { .. } => Opcode::Mvm,
            Request::Infer { .. } => Opcode::Infer,
            Request::Stats => Opcode::Stats,
            Request::Configure { .. } => Opcode::Configure,
            Request::Shutdown => Opcode::Shutdown,
        }
    }
}

/// Malformed payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// Payload ended before a declared field.
    Short { want: usize, have: usize },
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// Declared element count does not fit in the frame cap.
    Oversized { elements: usize },
    /// Bytes left over after the last declared field.
    Trailing(usize),
    /// Response payload was not valid UTF-8 where text was expected.
    BadText,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Short { want, have } => {
                write!(f, "payload too short: wanted {want} bytes, had {have}")
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtoError::BadStatus(s) => write!(f, "unknown status {s}"),
            ProtoError::Oversized { elements } => {
                write!(f, "declared {elements} elements exceeds frame cap")
            }
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            ProtoError::BadText => write!(f, "text field is not valid UTF-8"),
        }
    }
}

/// Cursor over a payload with bounds-checked little-endian reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(ProtoError::Short { want: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64s(&mut self, n: usize) -> Result<Vec<i64>, ProtoError> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or(ProtoError::Oversized { elements: n })?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, ProtoError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or(ProtoError::Oversized { elements: n })?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn finish(self) -> Result<(), ProtoError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(ProtoError::Trailing(left))
        }
    }

    /// Guards a declared element count against the frame cap before
    /// any allocation happens.
    fn guard(&self, elements: usize, elem_bytes: usize) -> Result<(), ProtoError> {
        if elements.saturating_mul(elem_bytes) > MAX_FRAME {
            Err(ProtoError::Oversized { elements })
        } else {
            Ok(())
        }
    }
}

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(id: u64, request: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    body.push(request.opcode() as u8);
    body.extend_from_slice(&id.to_le_bytes());
    match request {
        Request::Ping | Request::Stats | Request::Shutdown => {}
        Request::Mvm { codes } => {
            body.extend_from_slice(&(codes.len() as u32).to_le_bytes());
            for c in codes {
                body.extend_from_slice(&c.to_le_bytes());
            }
        }
        Request::Infer { shape, pixels } => {
            for d in shape {
                body.extend_from_slice(&d.to_le_bytes());
            }
            for p in pixels {
                body.extend_from_slice(&p.to_le_bytes());
            }
        }
        Request::Configure {
            max_batch,
            linger_us,
        } => {
            body.extend_from_slice(&max_batch.to_le_bytes());
            body.extend_from_slice(&linger_us.to_le_bytes());
        }
    }
    frame(body)
}

/// Decodes a request payload (the bytes after the length prefix).
///
/// # Errors
///
/// [`ProtoError`] on any malformed construct; never panics.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtoError> {
    let mut r = Reader::new(payload);
    let op = r.u8()?;
    let op = Opcode::from_u8(op).ok_or(ProtoError::BadOpcode(op))?;
    let id = r.u64()?;
    let request = match op {
        Opcode::Ping => Request::Ping,
        Opcode::Stats => Request::Stats,
        Opcode::Shutdown => Request::Shutdown,
        Opcode::Mvm => {
            let k = r.u32()? as usize;
            r.guard(k, 8)?;
            Request::Mvm { codes: r.i64s(k)? }
        }
        Opcode::Infer => {
            let shape = [r.u32()?, r.u32()?, r.u32()?];
            let n = shape.iter().try_fold(1usize, |acc, &d| {
                acc.checked_mul(d as usize).ok_or(ProtoError::Oversized {
                    elements: usize::MAX,
                })
            })?;
            r.guard(n, 4)?;
            Request::Infer {
                shape,
                pixels: r.f32s(n)?,
            }
        }
        Opcode::Configure => Request::Configure {
            max_batch: r.u32()?,
            linger_us: r.u64()?,
        },
    };
    r.finish()?;
    Ok((id, request))
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Ping`, `Configure`, and `Shutdown` acknowledge with an empty
    /// `Ok` body.
    Ack,
    /// Output-activation codes of an MVM (length `m`).
    Mvm { codes: Vec<i64> },
    /// Logits of a full-network inference (length `classes`).
    Infer { logits: Vec<f32> },
    /// Stats JSON document.
    Stats { json: String },
    /// Any non-`Ok` status with a human-readable message.
    Error { status: Status, message: String },
}

/// Which `Ok` body layout to expect — responses don't echo the
/// opcode, so the client decodes against the request it sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OkBody {
    Empty,
    Codes,
    Logits,
    Text,
}

impl OkBody {
    /// The body layout a given request's `Ok` response uses.
    pub fn for_request(op: Opcode) -> OkBody {
        match op {
            Opcode::Ping | Opcode::Configure | Opcode::Shutdown => OkBody::Empty,
            Opcode::Mvm => OkBody::Codes,
            Opcode::Infer => OkBody::Logits,
            Opcode::Stats => OkBody::Text,
        }
    }
}

/// Encodes a response into a complete frame (length prefix included).
pub fn encode_response(id: u64, response: &Response) -> Vec<u8> {
    let status = match response {
        Response::Error { status, .. } => *status,
        _ => Status::Ok,
    };
    let mut body = Vec::with_capacity(16);
    body.push(status as u8);
    body.extend_from_slice(&id.to_le_bytes());
    match response {
        Response::Ack => {}
        Response::Mvm { codes } => {
            body.extend_from_slice(&(codes.len() as u32).to_le_bytes());
            for c in codes {
                body.extend_from_slice(&c.to_le_bytes());
            }
        }
        Response::Infer { logits } => {
            body.extend_from_slice(&(logits.len() as u32).to_le_bytes());
            for v in logits {
                body.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Stats { json } => body.extend_from_slice(json.as_bytes()),
        Response::Error { message, .. } => body.extend_from_slice(message.as_bytes()),
    }
    frame(body)
}

/// Decodes a response payload given the expected `Ok` body layout.
///
/// # Errors
///
/// [`ProtoError`] on any malformed construct; never panics.
pub fn decode_response(payload: &[u8], ok_body: OkBody) -> Result<(u64, Response), ProtoError> {
    let mut r = Reader::new(payload);
    let status = r.u8()?;
    let status = Status::from_u8(status).ok_or(ProtoError::BadStatus(status))?;
    let id = r.u64()?;
    if status != Status::Ok {
        let message = String::from_utf8(r.take(payload.len() - 9)?.to_vec())
            .map_err(|_| ProtoError::BadText)?;
        return Ok((id, Response::Error { status, message }));
    }
    let response = match ok_body {
        OkBody::Empty => Response::Ack,
        OkBody::Codes => {
            let m = r.u32()? as usize;
            r.guard(m, 8)?;
            Response::Mvm { codes: r.i64s(m)? }
        }
        OkBody::Logits => {
            let m = r.u32()? as usize;
            r.guard(m, 4)?;
            Response::Infer { logits: r.f32s(m)? }
        }
        OkBody::Text => {
            let json = String::from_utf8(r.take(payload.len() - 9)?.to_vec())
                .map_err(|_| ProtoError::BadText)?;
            Response::Stats { json }
        }
    };
    r.finish()?;
    Ok((id, response))
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Errors at the framing layer (below payload decoding).
#[derive(Debug)]
pub enum FrameError {
    /// Peer closed cleanly between frames — the normal end of a
    /// connection.
    Closed,
    /// Peer closed mid-frame.
    Truncated { got: usize, want: usize },
    /// Declared length exceeds the cap; the connection must close
    /// (the stream can't be resynchronized).
    TooLarge { len: usize, max: usize },
    /// `should_stop` fired while waiting between frames.
    Stopped,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, want } => {
                write!(f, "connection closed mid-frame ({got}/{want} bytes)")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            FrameError::Stopped => write!(f, "reader stopped"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// What [`read_frame`] found on the wire.
#[derive(Debug)]
pub enum Incoming {
    /// A length-prefixed payload.
    Frame(Vec<u8>),
    /// The first bytes spell `"GET "` — an HTTP request follows. The
    /// four consumed bytes are implied; the caller reads the rest of
    /// the request line itself.
    Http,
}

/// Reads one frame, treating read timeouts (`WouldBlock`/`TimedOut`)
/// as poll points: between frames they check `should_stop`; inside a
/// frame they simply retry, so a slow peer's frame still completes.
///
/// # Errors
///
/// See [`FrameError`]. A [`FrameError::TooLarge`] or
/// [`FrameError::Truncated`] means the stream is unrecoverable and
/// the connection should close.
pub fn read_frame(
    stream: &mut impl Read,
    max: usize,
    should_stop: &dyn Fn() -> bool,
) -> Result<Incoming, FrameError> {
    let mut header = [0u8; 4];
    read_fully(stream, &mut header, true, should_stop)?;
    if &header == b"GET " {
        return Ok(Incoming::Http);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    read_fully(stream, &mut payload, false, should_stop)?;
    Ok(Incoming::Frame(payload))
}

/// Writes one already-encoded frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)?;
    stream.flush()
}

fn read_fully(
    stream: &mut impl Read,
    buf: &mut [u8],
    between_frames: bool,
    should_stop: &dyn Fn() -> bool,
) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && between_frames {
                    FrameError::Closed
                } else {
                    FrameError::Truncated {
                        got,
                        want: buf.len(),
                    }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // A timeout between frames is an idle connection —
                // the shutdown poll point. Mid-frame it just means a
                // slow writer; keep collecting bytes.
                if between_frames && got == 0 && should_stop() {
                    return Err(FrameError::Stopped);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(id: u64, req: Request) {
        let frame = encode_request(id, &req);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        let (got_id, got) = decode_request(&frame[4..]).expect("decodes");
        assert_eq!(got_id, id);
        assert_eq!(got, req);
    }

    #[test]
    fn request_round_trips() {
        round_trip_request(0, Request::Ping);
        round_trip_request(7, Request::Stats);
        round_trip_request(u64::MAX, Request::Shutdown);
        round_trip_request(
            1,
            Request::Mvm {
                codes: vec![i64::MIN, -1, 0, 1, i64::MAX],
            },
        );
        round_trip_request(
            2,
            Request::Infer {
                shape: [1, 2, 3],
                pixels: vec![0.0, -1.5, 3.25, f32::MIN, f32::MAX, 0.125],
            },
        );
        round_trip_request(
            3,
            Request::Configure {
                max_batch: 16,
                linger_us: 250,
            },
        );
    }

    #[test]
    fn response_round_trips() {
        let cases: Vec<(Response, OkBody)> = vec![
            (Response::Ack, OkBody::Empty),
            (
                Response::Mvm {
                    codes: vec![-5, 0, 123456789],
                },
                OkBody::Codes,
            ),
            (
                Response::Infer {
                    logits: vec![0.5, -0.25],
                },
                OkBody::Logits,
            ),
            (
                Response::Stats {
                    json: "{\"ok\":true}".to_string(),
                },
                OkBody::Text,
            ),
        ];
        for (resp, body) in cases {
            let frame = encode_response(9, &resp);
            let (id, got) = decode_response(&frame[4..], body).expect("decodes");
            assert_eq!(id, 9);
            assert_eq!(got, resp);
        }
        // Errors decode regardless of the expected Ok body.
        let err = Response::Error {
            status: Status::Shape,
            message: "wrong k".to_string(),
        };
        let frame = encode_response(3, &err);
        for body in [OkBody::Empty, OkBody::Codes, OkBody::Logits, OkBody::Text] {
            let (id, got) = decode_response(&frame[4..], body).expect("decodes");
            assert_eq!(id, 3);
            assert_eq!(got, err);
        }
    }

    #[test]
    fn empty_and_short_payloads_rejected() {
        assert!(matches!(decode_request(&[]), Err(ProtoError::Short { .. })));
        // Opcode present but id truncated.
        assert!(matches!(
            decode_request(&[1, 0, 0]),
            Err(ProtoError::Short { .. })
        ));
        assert!(matches!(
            decode_response(&[], OkBody::Empty),
            Err(ProtoError::Short { .. })
        ));
    }

    #[test]
    fn unknown_opcode_and_status_rejected() {
        let mut bad = vec![99u8];
        bad.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode_request(&bad), Err(ProtoError::BadOpcode(99)));
        let mut bad = vec![200u8];
        bad.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            decode_response(&bad, OkBody::Empty),
            Err(ProtoError::BadStatus(200))
        );
    }

    #[test]
    fn declared_count_beyond_cap_rejected_without_allocating() {
        // An Mvm request declaring u32::MAX codes: the guard must trip
        // on the declared count before any buffer is allocated.
        let mut body = vec![Opcode::Mvm as u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&body),
            Err(ProtoError::Oversized { .. })
        ));
        // Same for an Infer shape whose product overflows.
        let mut body = vec![Opcode::Infer as u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        for d in [u32::MAX, u32::MAX, u32::MAX] {
            body.extend_from_slice(&d.to_le_bytes());
        }
        assert!(matches!(
            decode_request(&body),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode_request(1, &Request::Ping);
        frame.push(0xAB);
        let body_len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&body_len.to_le_bytes());
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtoError::Trailing(1))
        ));
    }

    #[test]
    fn mvm_declared_count_must_match_bytes() {
        let mut body = vec![Opcode::Mvm as u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&4u32.to_le_bytes()); // declares 4 codes
        body.extend_from_slice(&1i64.to_le_bytes()); // provides 1
        assert!(matches!(
            decode_request(&body),
            Err(ProtoError::Short { .. })
        ));
    }

    #[test]
    fn frame_reader_handles_split_close_oversize_and_http() {
        let never = || false;
        // A well-formed frame delivered in dribbles still reads whole.
        struct Dribble(Vec<u8>, usize);
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let frame = encode_request(5, &Request::Mvm { codes: vec![1, 2] });
        let mut r = Dribble(frame, 0);
        let Incoming::Frame(payload) = read_frame(&mut r, MAX_FRAME, &never).expect("reads") else {
            panic!("expected frame");
        };
        assert_eq!(
            decode_request(&payload).unwrap().1,
            Request::Mvm { codes: vec![1, 2] }
        );

        // Clean close between frames.
        let mut empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut empty, MAX_FRAME, &never),
            Err(FrameError::Closed)
        ));

        // Close mid-frame: header promises 100 bytes, stream ends.
        let mut trunc: &[u8] = &[100, 0, 0, 0, 1, 2, 3];
        assert!(matches!(
            read_frame(&mut trunc, MAX_FRAME, &never),
            Err(FrameError::Truncated { got: 3, want: 100 })
        ));

        // Oversized declared length.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut over: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut over, MAX_FRAME, &never),
            Err(FrameError::TooLarge { .. })
        ));

        // HTTP detection.
        let mut http: &[u8] = b"GET /stats HTTP/1.1\r\n\r\n";
        assert!(matches!(
            read_frame(&mut http, MAX_FRAME, &never),
            Ok(Incoming::Http)
        ));
    }

    #[test]
    fn frame_reader_polls_stop_between_frames_only() {
        // A reader that always times out: between frames the stop
        // predicate fires; mid-frame the retry keeps polling until
        // bytes arrive.
        struct TimeoutThen(Vec<u8>, usize, usize);
        impl Read for TimeoutThen {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.2 > 0 {
                    self.2 -= 1;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"));
                }
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                let n = (self.0.len() - self.1).min(buf.len());
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                self.2 = 1; // time out again before the next chunk
                Ok(n)
            }
        }
        let mut idle = TimeoutThen(Vec::new(), 0, 1_000_000);
        assert!(matches!(
            read_frame(&mut idle, MAX_FRAME, &|| true),
            Err(FrameError::Stopped)
        ));
        let frame = encode_request(1, &Request::Ping);
        let mut slow = TimeoutThen(frame, 0, 0);
        // Stop requested, but a frame is already arriving: the
        // mid-frame timeout retries and the frame completes anyway.
        let got = read_frame(&mut slow, MAX_FRAME, &|| true).expect("frame completes");
        assert!(matches!(got, Incoming::Frame(_)));
    }
}

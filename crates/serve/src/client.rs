//! Blocking client for the serve protocol — used by `loadgen`, the
//! integration tests, and anyone scripting the server.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    self, FrameError, Incoming, OkBody, ProtoError, Request, Response, Status, MAX_FRAME,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Frame(FrameError),
    Proto(ProtoError),
    /// The server answered a non-`Ok` status.
    Server {
        status: Status,
        message: String,
    },
    /// The response id does not match the request id.
    IdMismatch {
        sent: u64,
        got: u64,
    },
    /// The response body kind does not match the request kind.
    Unexpected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server error ({}): {message}", status.name())
            }
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} for request id {sent}")
            }
            ClientError::Unexpected => write!(f, "response kind does not match request"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to the server. One request is outstanding at
/// a time; ids are assigned sequentially and verified on response.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects (with a 5 s connect timeout per resolved address).
    ///
    /// # Errors
    ///
    /// The last connect error if no address is reachable.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, Duration::from_secs(5)) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client { stream, next_id: 1 });
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = protocol::encode_request(id, request);
        protocol::write_frame(&mut self.stream, &frame)?;
        let payload = match protocol::read_frame(&mut self.stream, MAX_FRAME, &|| false) {
            Ok(Incoming::Frame(payload)) => payload,
            Ok(Incoming::Http) => {
                return Err(ClientError::Frame(FrameError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected HTTP response",
                ))))
            }
            Err(e) => return Err(ClientError::Frame(e)),
        };
        let ok_body = OkBody::for_request(request.opcode());
        let (got_id, response) =
            protocol::decode_response(&payload, ok_body).map_err(ClientError::Proto)?;
        // Error frames for unparseable requests carry id 0 (the
        // server could not recover the real id).
        if got_id != id && got_id != 0 {
            return Err(ClientError::IdMismatch {
                sent: id,
                got: got_id,
            });
        }
        if let Response::Error { status, message } = response {
            return Err(ClientError::Server { status, message });
        }
        Ok(response)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Single MVM: `codes` must be `k` input-format codes; returns
    /// the `m` output codes.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; shape mismatches come back as
    /// [`ClientError::Server`] with [`Status::Shape`].
    pub fn mvm(&mut self, codes: Vec<i64>) -> Result<Vec<i64>, ClientError> {
        match self.call(&Request::Mvm { codes })? {
            Response::Mvm { codes } => Ok(codes),
            other => Err(unexpected(other)),
        }
    }

    /// Full-network inference of one `[c, h, w]` image; returns the
    /// logits.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn infer(&mut self, shape: [u32; 3], pixels: Vec<f32>) -> Result<Vec<f32>, ClientError> {
        match self.call(&Request::Infer { shape, pixels })? {
            Response::Infer { logits } => Ok(logits),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the live stats JSON document.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// Re-tunes the admission queue live.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn configure(&mut self, max_batch: u32, linger_us: u64) -> Result<(), ClientError> {
        self.call(&Request::Configure {
            max_batch,
            linger_us,
        })
        .map(|_| ())
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown).map(|_| ())
    }
}

fn unexpected(_response: Response) -> ClientError {
    ClientError::Unexpected
}

//! The serving pipeline: admission → batching → sharded compute →
//! response.
//!
//! One accept loop hands each connection to its own thread (requests
//! on a connection are answered in order, so a client may pipeline).
//! Connection threads decode frames, submit work into the
//! [`Batcher`], and block on their tickets; a single dispatcher
//! thread pulls coalesced batches and evaluates them on the hot
//! workload — `ProgrammedMatrix::mvm_codes` / `CrossbarNetwork::
//! forward` internally shard tile work across the shared `parallel`
//! pool (`GENIEX_THREADS`), so a batch of requests becomes one wide,
//! lane-blocked compute call instead of N narrow ones.
//!
//! Shutdown (SIGTERM, SIGINT, or the `Shutdown` request) is a drain,
//! not an abort: the accept loop stops, connection threads finish
//! their in-flight requests and close, the queue drains through the
//! dispatcher, and only then does [`Server::run`] return — so a
//! loadgen run killed with SIGTERM still gets every outstanding
//! answer before the process exits 0.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use telemetry::{Counter, Gauge, Histogram, Json};

use crate::batcher::{Batcher, SubmitError};
use crate::config::ServeConfig;
use crate::protocol::{self, FrameError, Incoming, Request, Response, Status, MAX_FRAME};
use crate::workload::ServeWorkload;

/// How often idle loops poll the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Work items flowing through the admission queue. Only items of the
/// same kind batch together (an MVM batch is one `mvm_codes` call, an
/// inference batch one `forward` call).
enum Work {
    Mvm(Vec<i64>),
    Infer(Vec<f32>),
}

impl Work {
    fn same_kind(a: &Work, b: &Work) -> bool {
        matches!(
            (a, b),
            (Work::Mvm(_), Work::Mvm(_)) | (Work::Infer(_), Work::Infer(_))
        )
    }
}

/// Per-item result delivered through the ticket.
type WorkResult = Result<Payload, String>;

enum Payload {
    Codes(Vec<i64>),
    Logits(Vec<f32>),
}

/// A counter kept twice: a per-server atomic (the source of truth for
/// drain totals and `/stats`, correct even with telemetry disabled or
/// several servers in one process) and a global telemetry counter so
/// the values also land in run logs.
struct Tally {
    local: AtomicU64,
    global: Arc<Counter>,
}

impl Tally {
    fn new(name: &str) -> Tally {
        Tally {
            local: AtomicU64::new(0),
            global: telemetry::counter(name),
        }
    }

    fn inc(&self) {
        self.local.fetch_add(1, Ordering::Relaxed);
        self.global.inc();
    }

    fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

struct Metrics {
    requests: Tally,
    errors: Tally,
    batches: Tally,
    connections_open: AtomicI64,
    open_gauge: Arc<Gauge>,
    connections_total: Tally,
    latency_us: Arc<Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            requests: Tally::new("serve.requests"),
            errors: Tally::new("serve.errors"),
            batches: Tally::new("serve.batches"),
            connections_open: AtomicI64::new(0),
            open_gauge: telemetry::gauge("serve.connections_open"),
            connections_total: Tally::new("serve.connections_total"),
            latency_us: telemetry::histogram(
                "serve.latency_us",
                &telemetry::exponential_buckets(1.0, 2.0, 26),
            ),
        }
    }

    fn connection_opened(&self) {
        self.connections_total.inc();
        self.connections_open.fetch_add(1, Ordering::Relaxed);
        self.open_gauge.add(1.0);
    }

    fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
        self.open_gauge.add(-1.0);
    }
}

struct Shared {
    workload: ServeWorkload,
    batcher: Batcher<Work, WorkResult>,
    shutdown: AtomicBool,
    started: Instant,
    metrics: Metrics,
    addr: SocketAddr,
}

/// Totals reported when the server drains.
#[derive(Debug, Clone, Copy)]
pub struct ServeTotals {
    pub requests: u64,
    pub errors: u64,
    pub batches: u64,
    pub connections: u64,
}

/// A bound (but not yet serving) inference server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Cloneable handle for observing and stopping a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests a drain; `Server::run` returns once it completes.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listen socket. The workload must already be hot —
    /// binding is the "ready to serve" moment.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(cfg: &ServeConfig, workload: ServeWorkload) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let batcher = Batcher::new(
            cfg.max_batch,
            Duration::from_micros(cfg.linger_us),
            cfg.queue_capacity,
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                workload,
                batcher,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                metrics: Metrics::new(),
                addr,
            }),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Installs a process-wide SIGTERM/SIGINT hook that triggers this
    /// server's drain. Only the serve binary calls this; tests stop
    /// servers through their [`ServerHandle`] instead.
    #[cfg(unix)]
    pub fn install_signal_handlers(&self) {
        signal::install(self.handle());
    }

    /// Serves until shutdown is requested, then drains and returns
    /// the totals. Consumes the server; the listener closes on return.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors are
    /// counted and answered, not fatal).
    pub fn run(self) -> io::Result<ServeTotals> {
        let shared = Arc::clone(&self.shared);
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-dispatch".to_string())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher")
        };

        self.listener.set_nonblocking(true)?;
        let mut conn_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    shared.metrics.connection_opened();
                    let handle = std::thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || {
                            serve_connection(stream, &shared);
                            shared.metrics.connection_closed();
                        })
                        .expect("spawn connection thread");
                    conn_threads.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                    conn_threads.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: stop accepting (listener drops below), let every
        // connection finish its in-flight requests, then close the
        // queue so the dispatcher exits once it runs dry.
        drop(self.listener);
        for handle in conn_threads {
            let _ = handle.join();
        }
        shared.batcher.close();
        let _ = dispatcher.join();

        Ok(ServeTotals {
            requests: shared.metrics.requests.get(),
            errors: shared.metrics.errors.get(),
            batches: shared.metrics.batches.get(),
            connections: shared.metrics.connections_total.get(),
        })
    }
}

/// The dispatcher: pulls batches until the queue closes, evaluates
/// each as one batched compute call, and answers every ticket.
fn dispatch_loop(shared: &Shared) {
    while let Some(batch) = shared.batcher.next_batch(Work::same_kind) {
        shared.metrics.batches.inc();
        let n = batch.items.len();
        let _ = batch.reason; // occupancy/flush metrics live in the batcher
        match &batch.items[0].0 {
            Work::Mvm(_) => {
                let k = shared.workload.k;
                let mut codes = Vec::with_capacity(n * k);
                for (work, _) in &batch.items {
                    if let Work::Mvm(c) = work {
                        codes.extend_from_slice(c);
                    }
                }
                match shared.workload.matrix.mvm_codes(&codes, n) {
                    Ok(out) => {
                        let m = shared.workload.m;
                        for (i, (_, responder)) in batch.items.into_iter().enumerate() {
                            responder.send(Ok(Payload::Codes(out[i * m..(i + 1) * m].to_vec())));
                        }
                    }
                    Err(e) => {
                        let msg = format!("mvm failed: {e}");
                        for (_, responder) in batch.items {
                            responder.send(Err(msg.clone()));
                        }
                    }
                }
            }
            Work::Infer(_) => {
                let network = shared
                    .workload
                    .network
                    .as_ref()
                    .expect("infer admitted only with a model");
                let [c, h, w] = shared.workload.input_shape;
                let mut pixels = Vec::with_capacity(n * c * h * w);
                for (work, _) in &batch.items {
                    if let Work::Infer(p) = work {
                        pixels.extend_from_slice(p);
                    }
                }
                let images = nn::Tensor::from_vec(pixels, &[n, c, h, w]).expect("batch shape");
                match network.forward(&images) {
                    Ok(logits) => {
                        let classes = shared.workload.classes;
                        let data = logits.data();
                        for (i, (_, responder)) in batch.items.into_iter().enumerate() {
                            responder.send(Ok(Payload::Logits(
                                data[i * classes..(i + 1) * classes].to_vec(),
                            )));
                        }
                    }
                    Err(e) => {
                        let msg = format!("inference failed: {e}");
                        for (_, responder) in batch.items {
                            responder.send(Err(msg.clone()));
                        }
                    }
                }
            }
        }
    }
}

/// Serves one connection until it closes, errors unrecoverably, or
/// the server drains.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let mut stream = stream;
    // Short read timeouts turn blocking reads into shutdown polls.
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let stop = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        let payload = match protocol::read_frame(&mut stream, MAX_FRAME, &stop) {
            Ok(Incoming::Frame(payload)) => payload,
            Ok(Incoming::Http) => {
                serve_http(&mut stream, shared);
                return;
            }
            Err(FrameError::Closed) | Err(FrameError::Stopped) => return,
            Err(FrameError::TooLarge { len, max }) => {
                shared.metrics.errors.inc();
                // The length prefix is garbage, so the stream cannot
                // be resynchronized: answer once, then close.
                let resp = Response::Error {
                    status: Status::BadRequest,
                    message: format!("frame of {len} bytes exceeds cap of {max}"),
                };
                let _ = protocol::write_frame(&mut stream, &protocol::encode_response(0, &resp));
                return;
            }
            Err(FrameError::Truncated { .. }) | Err(FrameError::Io(_)) => {
                shared.metrics.errors.inc();
                return;
            }
        };
        let arrived = Instant::now();
        let (id, request) = match protocol::decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                shared.metrics.errors.inc();
                let resp = Response::Error {
                    status: Status::BadRequest,
                    message: format!("malformed request: {e}"),
                };
                let _ = protocol::write_frame(&mut stream, &protocol::encode_response(0, &resp));
                return;
            }
        };
        shared.metrics.requests.inc();
        let response = answer(shared, request);
        shared
            .metrics
            .latency_us
            .observe(arrived.elapsed().as_micros() as f64);
        if matches!(response, Response::Error { .. }) {
            shared.metrics.errors.inc();
        }
        if protocol::write_frame(&mut stream, &protocol::encode_response(id, &response)).is_err() {
            return;
        }
    }
}

/// Computes the response for one decoded request (blocking on the
/// batcher for compute requests).
fn answer(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Ping => Response::Ack,
        Request::Stats => Response::Stats {
            json: stats_json(shared).to_string(),
        },
        Request::Configure {
            max_batch,
            linger_us,
        } => {
            shared.batcher.set_max_batch(max_batch as usize);
            shared.batcher.set_linger_us(linger_us);
            Response::Ack
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Ack
        }
        Request::Mvm { codes } => {
            if codes.len() != shared.workload.k {
                return Response::Error {
                    status: Status::Shape,
                    message: format!(
                        "mvm expects k={} codes, got {}",
                        shared.workload.k,
                        codes.len()
                    ),
                };
            }
            match submit_and_wait(shared, Work::Mvm(codes)) {
                Ok(Payload::Codes(codes)) => Response::Mvm { codes },
                Ok(Payload::Logits(_)) => unreachable!("mvm work yields codes"),
                Err(resp) => resp,
            }
        }
        Request::Infer { shape, pixels } => {
            if shared.workload.network.is_none() {
                return Response::Error {
                    status: Status::Unavailable,
                    message: "no model loaded (GENIEX_SERVE_MODEL=none)".to_string(),
                };
            }
            let want = shared.workload.input_shape;
            let got = [shape[0] as usize, shape[1] as usize, shape[2] as usize];
            if got != want || pixels.len() != want.iter().product::<usize>() {
                return Response::Error {
                    status: Status::Shape,
                    message: format!("infer expects shape {want:?}, got {got:?}"),
                };
            }
            match submit_and_wait(shared, Work::Infer(pixels)) {
                Ok(Payload::Logits(logits)) => Response::Infer { logits },
                Ok(Payload::Codes(_)) => unreachable!("infer work yields logits"),
                Err(resp) => resp,
            }
        }
    }
}

fn submit_and_wait(shared: &Shared, work: Work) -> Result<Payload, Response> {
    let ticket = shared.batcher.submit(work).map_err(|e| Response::Error {
        status: Status::Unavailable,
        message: match e {
            SubmitError::Closed => "server is draining".to_string(),
            SubmitError::Full => "admission queue full, retry later".to_string(),
        },
    })?;
    match ticket.wait() {
        Some(Ok(payload)) => Ok(payload),
        Some(Err(message)) => Err(Response::Error {
            status: Status::Internal,
            message,
        }),
        None => Err(Response::Error {
            status: Status::Internal,
            message: "dispatcher dropped the request".to_string(),
        }),
    }
}

fn histogram_json(snapshot: &telemetry::HistogramSnapshot) -> Json {
    let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
    Json::Obj(vec![
        ("count".to_string(), Json::from(snapshot.count)),
        ("mean".to_string(), Json::from(finite(snapshot.mean()))),
        ("p50".to_string(), Json::from(finite(snapshot.p50()))),
        ("p95".to_string(), Json::from(finite(snapshot.p95()))),
        ("p99".to_string(), Json::from(finite(snapshot.p99()))),
        ("max".to_string(), Json::from(finite(snapshot.max))),
        (
            "bounds".to_string(),
            Json::Arr(snapshot.bounds.iter().map(|&b| Json::from(b)).collect()),
        ),
        (
            "buckets".to_string(),
            Json::Arr(snapshot.buckets.iter().map(|&c| Json::from(c)).collect()),
        ),
    ])
}

/// Builds the live stats document served on `/stats` and the `Stats`
/// opcode: uptime, request/error/batch totals, queue depth, the
/// batching configuration, and the occupancy / queue-wait / latency
/// histograms with p50/p95/p99.
fn stats_json(shared: &Shared) -> Json {
    let m = &shared.metrics;
    let (flush_full, flush_linger, rejected) = shared.batcher.flush_counts();
    Json::Obj(vec![
        (
            "uptime_s".to_string(),
            Json::from(shared.started.elapsed().as_secs_f64()),
        ),
        ("addr".to_string(), Json::from(shared.addr.to_string())),
        (
            "threads".to_string(),
            Json::from(parallel::default_threads()),
        ),
        ("requests".to_string(), Json::from(m.requests.get())),
        ("errors".to_string(), Json::from(m.errors.get())),
        ("batches".to_string(), Json::from(m.batches.get())),
        (
            "connections".to_string(),
            Json::Obj(vec![
                (
                    "open".to_string(),
                    Json::from(m.connections_open.load(Ordering::Relaxed).max(0) as u64),
                ),
                ("total".to_string(), Json::from(m.connections_total.get())),
            ]),
        ),
        (
            "queue".to_string(),
            Json::Obj(vec![
                ("depth".to_string(), Json::from(shared.batcher.depth())),
                (
                    "max_batch".to_string(),
                    Json::from(shared.batcher.max_batch()),
                ),
                (
                    "linger_us".to_string(),
                    Json::from(shared.batcher.linger_us()),
                ),
                ("flush_full".to_string(), Json::from(flush_full)),
                ("flush_linger".to_string(), Json::from(flush_linger)),
                ("rejected_full".to_string(), Json::from(rejected)),
                (
                    "wait_us".to_string(),
                    histogram_json(&shared.batcher.queue_wait_snapshot()),
                ),
            ]),
        ),
        (
            "batch_occupancy".to_string(),
            histogram_json(&shared.batcher.occupancy_snapshot()),
        ),
        (
            "latency_us".to_string(),
            histogram_json(&m.latency_us.snapshot()),
        ),
    ])
}

/// Minimal HTTP/1.1 for `GET /stats`: the protocol reader already
/// consumed the `"GET "` bytes; read the rest of the request head
/// (bounded), answer, close.
fn serve_http(stream: &mut TcpStream, shared: &Shared) {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + Duration::from_secs(2);
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 && Instant::now() < deadline {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let path = std::str::from_utf8(&head)
        .ok()
        .and_then(|h| h.lines().next())
        .and_then(|line| line.split_whitespace().next())
        .unwrap_or("");
    let (status, body) = if path.starts_with("/stats") {
        ("200 OK", stats_json(shared).to_string())
    } else {
        ("404 Not Found", "{\"error\":\"not found\"}".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// SIGTERM/SIGINT handling for the serve binary. The handler only
/// flips an `AtomicBool` (async-signal-safe); the accept loop and the
/// connection read timeouts poll it. This is the crate's only unsafe
/// code, confined to the libc `signal(2)` registration.
#[cfg(unix)]
mod signal {
    use super::ServerHandle;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    static HANDLES: Mutex<Vec<ServerHandle>> = Mutex::new(Vec::new());

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install(handle: ServerHandle) {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        {
            let mut handles = HANDLES.lock().expect("signal handle registry");
            handles.push(handle);
            if handles.len() > 1 {
                return; // handlers already installed; watcher already running
            }
        }
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
        // A signal handler may only touch the atomic; a watcher
        // thread translates it into the ordinary drain path.
        std::thread::Builder::new()
            .name("serve-signal".to_string())
            .spawn(|| loop {
                if SIGNALLED.load(Ordering::SeqCst) {
                    for handle in HANDLES.lock().expect("signal handle registry").iter() {
                        handle.shutdown();
                    }
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            })
            .expect("spawn signal watcher");
    }
}

//! Admission queue: coalesces single requests into compute batches.
//!
//! Connection threads [`submit`](Batcher::submit) work items and block
//! on the returned [`Ticket`]; the dispatcher thread pulls maximal
//! batches with [`next_batch`](Batcher::next_batch) and answers each
//! item through its [`Responder`]. A batch closes when it reaches the
//! max batch size (immediate flush), when the linger deadline expires
//! (partial flush), or when the next queued item is incompatible with
//! the batch head (e.g. an MVM behind an inference — order is never
//! reordered around it, so FIFO holds across kinds as well as within).
//!
//! Backpressure: the queue is bounded. When it is full, `submit`
//! fails immediately and the connection layer answers `Unavailable`
//! instead of queueing unbounded work — latency under overload stays
//! bounded and memory cannot grow with offered load.
//!
//! Both tuning knobs (max batch, linger) are atomics so a live server
//! can be re-tuned through the `Configure` request without a restart;
//! `loadgen --compare` uses exactly that to measure batch=1 vs
//! batched throughput in one process.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use telemetry::{Counter, Gauge, Histogram};

/// Why a batch was closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// Reached the max batch size.
    Full,
    /// Linger deadline expired with a partial batch.
    Linger,
    /// The next queued item can't join this batch.
    Incompatible,
    /// The queue closed while this batch was forming.
    Closed,
}

/// A batch handed to the dispatcher: FIFO items plus the reason the
/// batch was cut.
pub struct Batch<T, R> {
    pub items: Vec<(T, Responder<R>)>,
    pub reason: FlushReason,
}

/// Error returned by [`Batcher::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue has been closed (server draining).
    Closed,
    /// The queue is at capacity (backpressure).
    Full,
}

/// One-shot result slot shared by a [`Ticket`] and its [`Responder`].
struct Slot<R> {
    state: Mutex<SlotState<R>>,
    ready: Condvar,
}

enum SlotState<R> {
    Pending,
    Done(R),
    /// The responder was dropped without answering (dispatcher died).
    Abandoned,
}

/// The waiting half: blocks until the dispatcher answers.
pub struct Ticket<R> {
    slot: Arc<Slot<R>>,
}

impl<R> Ticket<R> {
    /// Blocks until the batch containing this item was computed.
    /// Returns `None` only if the responder was dropped unanswered.
    pub fn wait(self) -> Option<R> {
        let mut state = self.slot.state.lock().expect("slot lock");
        loop {
            match std::mem::replace(&mut *state, SlotState::Pending) {
                SlotState::Done(r) => return Some(r),
                SlotState::Abandoned => return None,
                SlotState::Pending => {
                    state = self.slot.ready.wait(state).expect("slot lock");
                }
            }
        }
    }
}

/// The answering half, owned by the dispatcher.
pub struct Responder<R> {
    slot: Arc<Slot<R>>,
    answered: bool,
}

impl<R> Responder<R> {
    /// Delivers the result and wakes the waiting connection thread.
    pub fn send(mut self, value: R) {
        let mut state = self.slot.state.lock().expect("slot lock");
        *state = SlotState::Done(value);
        self.answered = true;
        drop(state);
        self.slot.ready.notify_one();
    }
}

impl<R> Drop for Responder<R> {
    fn drop(&mut self) {
        if !self.answered {
            let mut state = self.slot.state.lock().expect("slot lock");
            if matches!(*state, SlotState::Pending) {
                *state = SlotState::Abandoned;
            }
            drop(state);
            self.slot.ready.notify_one();
        }
    }
}

struct Entry<T, R> {
    item: T,
    responder: Responder<R>,
    enqueued: Instant,
}

struct Queue<T, R> {
    items: VecDeque<Entry<T, R>>,
    closed: bool,
}

struct Shared<T, R> {
    queue: Mutex<Queue<T, R>>,
    nonempty: Condvar,
    max_batch: AtomicUsize,
    linger_us: AtomicU64,
    capacity: usize,
    metrics: BatcherMetrics,
}

struct BatcherMetrics {
    queue_depth: Arc<Gauge>,
    occupancy: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    flush_full: Arc<Counter>,
    flush_linger: Arc<Counter>,
    rejected_full: Arc<Counter>,
}

impl BatcherMetrics {
    fn new() -> Self {
        let occupancy_bounds: Vec<f64> = (1..=64).map(|v| v as f64).collect();
        BatcherMetrics {
            queue_depth: telemetry::gauge("serve.queue_depth"),
            occupancy: telemetry::histogram("serve.batch_occupancy", &occupancy_bounds),
            queue_wait_us: telemetry::histogram(
                "serve.queue_wait_us",
                &telemetry::exponential_buckets(1.0, 2.0, 24),
            ),
            flush_full: telemetry::counter("serve.batch_flush_full"),
            flush_linger: telemetry::counter("serve.batch_flush_linger"),
            rejected_full: telemetry::counter("serve.rejected_queue_full"),
        }
    }
}

/// The admission queue. `T` is the work item, `R` the per-item result.
pub struct Batcher<T, R> {
    shared: Arc<Shared<T, R>>,
}

impl<T, R> Clone for Batcher<T, R> {
    fn clone(&self) -> Self {
        Batcher {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T, R> Batcher<T, R> {
    /// Creates a queue flushing at `max_batch` items or after
    /// `linger` (whichever comes first), holding at most `capacity`
    /// queued items before `submit` signals backpressure.
    pub fn new(max_batch: usize, linger: Duration, capacity: usize) -> Self {
        Batcher {
            shared: Arc::new(Shared {
                queue: Mutex::new(Queue {
                    items: VecDeque::new(),
                    closed: false,
                }),
                nonempty: Condvar::new(),
                max_batch: AtomicUsize::new(max_batch.max(1)),
                linger_us: AtomicU64::new(linger.as_micros() as u64),
                capacity: capacity.max(1),
                metrics: BatcherMetrics::new(),
            }),
        }
    }

    /// Current max batch size.
    pub fn max_batch(&self) -> usize {
        self.shared.max_batch.load(Ordering::Relaxed)
    }

    /// Current linger window in microseconds.
    pub fn linger_us(&self) -> u64 {
        self.shared.linger_us.load(Ordering::Relaxed)
    }

    /// Re-tunes the max batch size (takes effect on the next batch).
    pub fn set_max_batch(&self, n: usize) {
        self.shared.max_batch.store(n.max(1), Ordering::Relaxed);
    }

    /// Re-tunes the linger window (takes effect on the next batch).
    pub fn set_linger_us(&self, us: u64) {
        self.shared.linger_us.store(us, Ordering::Relaxed);
    }

    /// Number of queued items right now.
    pub fn depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").items.len()
    }

    /// Enqueues an item; the returned ticket blocks until the
    /// dispatcher answers.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] once [`close`](Batcher::close) was
    /// called, [`SubmitError::Full`] while the queue is at capacity.
    pub fn submit(&self, item: T) -> Result<Ticket<R>, SubmitError> {
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        });
        let entry = Entry {
            item,
            responder: Responder {
                slot: Arc::clone(&slot),
                answered: false,
            },
            enqueued: Instant::now(),
        };
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            if queue.closed {
                return Err(SubmitError::Closed);
            }
            if queue.items.len() >= self.shared.capacity {
                self.shared.metrics.rejected_full.inc();
                return Err(SubmitError::Full);
            }
            queue.items.push_back(entry);
            self.shared
                .metrics
                .queue_depth
                .set(queue.items.len() as f64);
        }
        self.shared.nonempty.notify_one();
        Ok(Ticket { slot })
    }

    /// Closes the queue: subsequent submits fail, and once the
    /// remaining items drain, `next_batch` returns `None`.
    pub fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("queue lock");
        queue.closed = true;
        drop(queue);
        self.shared.nonempty.notify_all();
    }

    /// Pulls the next batch: blocks for the first item, then keeps
    /// admitting queued items that are `compatible` with the batch
    /// head until the batch is full or the linger window (measured
    /// from the first admission) expires. Returns `None` when the
    /// queue is closed and empty — the dispatcher's exit signal.
    pub fn next_batch(&self, compatible: impl Fn(&T, &T) -> bool) -> Option<Batch<T, R>> {
        let shared = &self.shared;
        let mut queue = shared.queue.lock().expect("queue lock");
        let head = loop {
            if let Some(entry) = queue.items.pop_front() {
                break entry;
            }
            if queue.closed {
                return None;
            }
            queue = shared.nonempty.wait(queue).expect("queue lock");
        };

        let max_batch = shared.max_batch.load(Ordering::Relaxed);
        let linger = Duration::from_micros(shared.linger_us.load(Ordering::Relaxed));
        let deadline = Instant::now() + linger;
        let mut entries = vec![head];
        let reason = loop {
            if entries.len() >= max_batch {
                break FlushReason::Full;
            }
            match queue.items.front() {
                Some(next) if compatible(&entries[0].item, &next.item) => {
                    let entry = queue.items.pop_front().expect("front exists");
                    entries.push(entry);
                }
                Some(_) => break FlushReason::Incompatible,
                None => {
                    if queue.closed {
                        break FlushReason::Closed;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break FlushReason::Linger;
                    }
                    let (q, timeout) = shared
                        .nonempty
                        .wait_timeout(queue, deadline - now)
                        .expect("queue lock");
                    queue = q;
                    if timeout.timed_out() && queue.items.is_empty() {
                        break FlushReason::Linger;
                    }
                }
            }
        };
        let metrics = &shared.metrics;
        metrics.queue_depth.set(queue.items.len() as f64);
        drop(queue);

        let now = Instant::now();
        metrics.occupancy.observe(entries.len() as f64);
        match reason {
            FlushReason::Full => metrics.flush_full.inc(),
            FlushReason::Linger => metrics.flush_linger.inc(),
            _ => {}
        }
        let items = entries
            .into_iter()
            .map(|e| {
                metrics
                    .queue_wait_us
                    .observe(now.saturating_duration_since(e.enqueued).as_micros() as f64);
                (e.item, e.responder)
            })
            .collect();
        Some(Batch { items, reason })
    }

    /// Point-in-time occupancy histogram (for `/stats`).
    pub fn occupancy_snapshot(&self) -> telemetry::HistogramSnapshot {
        self.shared.metrics.occupancy.snapshot()
    }

    /// Point-in-time queue-wait histogram in µs (for `/stats`).
    pub fn queue_wait_snapshot(&self) -> telemetry::HistogramSnapshot {
        self.shared.metrics.queue_wait_us.snapshot()
    }

    /// `(full flushes, linger flushes, backpressure rejections)`.
    pub fn flush_counts(&self) -> (u64, u64, u64) {
        (
            self.shared.metrics.flush_full.get(),
            self.shared.metrics.flush_linger.get(),
            self.shared.metrics.rejected_full.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    fn always(_: &u32, _: &u32) -> bool {
        true
    }

    #[test]
    fn max_batch_flushes_immediately_in_fifo_order() {
        let batcher: Batcher<u32, u32> = Batcher::new(4, Duration::from_secs(10), 64);
        let tickets: Vec<_> = (0..4).map(|i| batcher.submit(i).expect("submit")).collect();
        // The linger window is 10 s; a full batch must not wait it out.
        let start = Instant::now();
        let batch = batcher.next_batch(always).expect("batch");
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(batch.reason, FlushReason::Full);
        let order: Vec<u32> = batch.items.iter().map(|(item, _)| *item).collect();
        assert_eq!(order, vec![0, 1, 2, 3], "FIFO within the batch");
        for (item, responder) in batch.items {
            responder.send(item * 10);
        }
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait(), Some(i as u32 * 10));
        }
    }

    #[test]
    fn linger_expiry_flushes_partial_batch() {
        let batcher: Batcher<u32, u32> = Batcher::new(64, Duration::from_millis(30), 64);
        let _t1 = batcher.submit(1).expect("submit");
        let _t2 = batcher.submit(2).expect("submit");
        let start = Instant::now();
        let batch = batcher.next_batch(always).expect("batch");
        let waited = start.elapsed();
        assert_eq!(batch.reason, FlushReason::Linger);
        assert_eq!(batch.items.len(), 2);
        assert!(
            waited >= Duration::from_millis(25),
            "flushed after only {waited:?}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "linger did not expire ({waited:?})"
        );
    }

    #[test]
    fn incompatible_item_cuts_the_batch_without_reordering() {
        // Compatibility = same parity. Queue: [2, 4, 1, 6] — the batch
        // takes the even prefix and leaves [1, 6] untouched.
        let batcher: Batcher<u32, u32> = Batcher::new(64, Duration::from_secs(10), 64);
        let _ts: Vec<_> = [2u32, 4, 1, 6]
            .iter()
            .map(|&v| batcher.submit(v).expect("submit"))
            .collect();
        let same_parity = |a: &u32, b: &u32| a % 2 == b % 2;
        let batch = batcher.next_batch(same_parity).expect("batch");
        assert_eq!(batch.reason, FlushReason::Incompatible);
        let got: Vec<u32> = batch.items.iter().map(|(v, _)| *v).collect();
        assert_eq!(got, vec![2, 4]);
        let batch = batcher.next_batch(same_parity).expect("batch");
        let got: Vec<u32> = batch.items.iter().map(|(v, _)| *v).collect();
        assert_eq!(got, vec![1], "odd head takes its own batch");
    }

    #[test]
    fn bounded_queue_rejects_then_recovers() {
        let batcher: Batcher<u32, u32> = Batcher::new(8, Duration::from_secs(10), 2);
        let _t1 = batcher.submit(1).expect("submit");
        let _t2 = batcher.submit(2).expect("submit");
        assert!(matches!(batcher.submit(3), Err(SubmitError::Full)));
        // Draining the queue frees capacity again.
        let batch = batcher.next_batch(always).expect("batch");
        assert_eq!(batch.items.len(), 2);
        assert!(batcher.submit(4).is_ok());
        // (The serve.rejected_queue_full counter only records while
        // telemetry is enabled, so the counter itself is not asserted
        // here — the Err(Full)/recovery behavior above is the test.)
    }

    #[test]
    fn close_drains_then_signals_none() {
        let batcher: Batcher<u32, u32> = Batcher::new(8, Duration::from_millis(1), 64);
        let ticket = batcher.submit(7).expect("submit");
        batcher.close();
        assert!(matches!(batcher.submit(8), Err(SubmitError::Closed)));
        let batch = batcher.next_batch(always).expect("one last batch");
        assert_eq!(batch.items.len(), 1);
        for (v, r) in batch.items {
            r.send(v);
        }
        assert_eq!(ticket.wait(), Some(7));
        assert!(batcher.next_batch(always).is_none());
    }

    #[test]
    fn dropped_responder_unblocks_the_ticket() {
        let batcher: Batcher<u32, u32> = Batcher::new(8, Duration::from_millis(1), 64);
        let ticket = batcher.submit(1).expect("submit");
        let batch = batcher.next_batch(always).expect("batch");
        drop(batch);
        assert_eq!(ticket.wait(), None);
    }

    #[test]
    fn waiting_dispatcher_wakes_on_submit() {
        let batcher: Batcher<u32, u32> = Batcher::new(4, Duration::from_millis(20), 64);
        let waker = batcher.clone();
        let woke = Arc::new(AtomicBool::new(false));
        let woke_flag = Arc::clone(&woke);
        let dispatcher = thread::spawn(move || {
            let batch = waker.next_batch(always).expect("batch");
            woke_flag.store(true, Ordering::SeqCst);
            for (v, r) in batch.items {
                r.send(v + 1);
            }
        });
        thread::sleep(Duration::from_millis(10));
        assert!(
            !woke.load(Ordering::SeqCst),
            "dispatcher must block while empty"
        );
        let ticket = batcher.submit(41).expect("submit");
        assert_eq!(ticket.wait(), Some(42));
        dispatcher.join().expect("dispatcher join");
    }
}

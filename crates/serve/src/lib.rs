//! Batched crossbar-inference service (ROADMAP item 1).
//!
//! The functional simulator makes non-ideal crossbar inference cheap;
//! this crate makes it *servable*: a zero-dependency, long-running
//! TCP server that keeps a GENIEx-backed workload hot and coalesces
//! concurrent single requests into batched compute calls, amortizing
//! the per-call tile dispatch, allocation, and scheduling overheads
//! the same way `results/BENCH_kernels.json` shows batched GEMV
//! amortizing per-call kernel overheads.
//!
//! Pipeline (DESIGN.md §14):
//!
//! ```text
//! accept ─▶ connection threads ─▶ admission queue ─▶ dispatcher
//!             (decode, submit,      (bounded; batch     (one batched
//!              wait on ticket)       by size/linger)     mvm_codes /
//!                                                        forward on
//!                                                        the pool)
//! ```
//!
//! * [`protocol`] — length-prefixed wire format (+ HTTP `GET /stats`)
//! * [`batcher`] — the admission queue (max batch, linger,
//!   backpressure)
//! * [`workload`] — hot state: programmed service matrix, trained
//!   vision network, store-cached surrogates
//! * [`server`] — accept loop, connection threads, dispatcher, drain
//! * [`client`] — blocking client used by `loadgen` and tests
//! * [`config`] — `GENIEX_SERVE_*` environment knobs

pub mod batcher;
pub mod client;
pub mod config;
pub mod protocol;
pub mod server;
pub mod workload;

pub use client::{Client, ClientError};
pub use config::{EngineKind, ModelKind, ServeConfig};
pub use server::{ServeTotals, Server, ServerHandle};
pub use workload::ServeWorkload;

use std::fmt;

/// Errors produced by the neural-network library.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor shapes were incompatible for the requested operation.
    Shape(String),
    /// A model architecture specification was invalid.
    InvalidArchitecture(String),
    /// A serialized model file was malformed.
    Format(String),
    /// An underlying I/O error during model save/load.
    Io(std::io::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            NnError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
            NnError::Format(msg) => write!(f, "malformed model file: {msg}"),
            NnError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(err: std::io::Error) -> Self {
        NnError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = NnError::Shape("2x3 vs 4".into());
        assert!(e.to_string().contains("2x3"));
        assert!(e.source().is_none());

        let io = NnError::from(std::io::Error::other("boom"));
        assert!(io.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}

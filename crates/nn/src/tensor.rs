use crate::NnError;
use std::fmt;

/// A dense, row-major `f32` tensor with an explicit shape.
///
/// Convolutional data uses NCHW layout: `[batch, channels, height,
/// width]`. Fully-connected data uses `[batch, features]`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), nn::NnError> {
/// use nn::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(NnError::Shape(format!(
                "buffer of length {} cannot form shape {:?} ({expected} elements)",
                data.len(),
                shape
            )));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (k, (&i, &d)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < d, "index {i} out of bounds for dim {k} (size {d})");
            off = off * d + i;
        }
        off
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, NnError> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, NnError> {
        if self.shape != other.shape {
            return Err(NnError::Shape(format!(
                "add: {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise scale by a constant.
    pub fn scale(&self, k: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// 2-D matrix product: `self` is `[m, k]`, `other` is `[k, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if either tensor is not rank-2 or the
    /// inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, NnError> {
        let (&[m, k1], &[k2, n]) = (
            <&[usize; 2]>::try_from(self.shape.as_slice()).map_err(|_| {
                NnError::Shape(format!("matmul lhs must be rank 2, got {:?}", self.shape))
            })?,
            <&[usize; 2]>::try_from(other.shape.as_slice()).map_err(|_| {
                NnError::Shape(format!("matmul rhs must be rank 2, got {:?}", other.shape))
            })?,
        );
        if k1 != k2 {
            return Err(NnError::Shape(format!("matmul: [{m}, {k1}] x [{k2}, {n}]")));
        }
        let mut out = vec![0.0f32; m * n];
        // The register-blocked kernel keeps the ascending-k chain of
        // the textbook ikj loop per output element, so it is
        // bit-identical to it at any blocking. Each output row depends
        // only on its own lhs row, so rows split across threads
        // bit-identically; the per-row arithmetic order never changes.
        let rows = |lhs_rows: &[f32], out_rows: &mut [f32]| {
            kernels::gemm_nn(lhs_rows, &other.data, out_rows, k1, n);
        };
        run_row_blocks(&self.data, &mut out, m, k1, n, &rows);
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D matrix product with the *transpose* of `other`:
    /// `self` is `[m, k]`, `other` is `[n, k]`, result `[m, n]`.
    ///
    /// This is the layout-friendly primitive for `x · Wᵀ` with weights
    /// stored `[out, in]`, avoiding an explicit transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] on rank or dimension mismatch.
    pub fn matmul_transpose(&self, other: &Tensor) -> Result<Tensor, NnError> {
        if self.shape.len() != 2 || other.shape.len() != 2 {
            return Err(NnError::Shape(format!(
                "matmul_transpose: ranks {:?} x {:?}",
                self.shape, other.shape
            )));
        }
        let (m, k1) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        if k1 != k2 {
            return Err(NnError::Shape(format!(
                "matmul_transpose: [{m}, {k1}] x [{n}, {k2}]ᵀ"
            )));
        }
        let mut out = vec![0.0f32; m * n];
        // Dot-product GEMM on the 8-lane kernel spec: every output
        // element is kernels::dot_f32(lhs row, rhs row), a pure
        // function of the two rows, so row-block splits stay
        // bit-identical at any GENIEX_THREADS.
        let rows = |lhs_rows: &[f32], out_rows: &mut [f32]| {
            kernels::gemm_nt(lhs_rows, &other.data, out_rows, k1, n);
        };
        run_row_blocks(&self.data, &mut out, m, k1, n, &rows);
        Tensor::from_vec(out, &[m, n])
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Shape`] if the tensor is not rank-2.
    pub fn transpose2(&self) -> Result<Tensor, NnError> {
        if self.shape.len() != 2 {
            return Err(NnError::Shape(format!(
                "transpose2 needs rank 2, got {:?}",
                self.shape
            )));
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        kernels::transpose_f32(&self.data, &mut out, m, n);
        Tensor::from_vec(out, &[n, m])
    }

    /// Maximum absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |a, &x| a.max(x.abs()))
    }
}

/// Runs a row-block matmul kernel over `(lhs, out)` — serially for
/// small products, split into contiguous row blocks across the global
/// pool for large ones. The kernel sees the same `(lhs rows, out rows)`
/// pairs either way and each output row's arithmetic order is fixed, so
/// the result is bit-identical for any GENIEX_THREADS.
fn run_row_blocks(
    lhs: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    kernel: &(dyn Fn(&[f32], &mut [f32]) + Sync),
) {
    // Below this flop count the fan-out overhead beats the win.
    const PAR_MIN_FLOPS: usize = 64 * 1024;
    let pool = parallel::global();
    if m > 1 && pool.threads() > 1 && m * k * n >= PAR_MIN_FLOPS {
        let block = m.div_ceil(pool.threads() * 2).max(1);
        pool.scope(|s| {
            for (lhs_block, out_block) in lhs.chunks(block * k).zip(out.chunks_mut(block * n)) {
                s.spawn(move || kernel(lhs_block, out_block));
            }
        });
    } else {
        kernel(lhs, out);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} [", self.shape)?;
        for (i, v) in self.data.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > 8 {
            write!(f, ", ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).unwrap();
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![], &[0]).is_ok());
    }

    #[test]
    fn set_and_reshape() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 5.0);
        assert_eq!(t.at(&[1, 0]), 5.0);
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.at(&[2]), 5.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_bounds_checked() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::from_vec(vec![1., 2.], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10., 20.], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11., 22.]);
        assert_eq!(a.scale(3.0).data(), &[3., 6.]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&Tensor::zeros(&[2, 2])).is_err());
        assert!(a.matmul(&Tensor::zeros(&[3])).is_err());
        assert!(Tensor::zeros(&[2]).matmul(&a).is_err());
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let w = Tensor::from_vec((0..12).map(|x| (x as f32) * 0.5).collect(), &[4, 3]).unwrap();
        let via_t = a.matmul(&w.transpose2().unwrap()).unwrap();
        let direct = a.matmul_transpose(&w).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose2_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.transpose2().unwrap().transpose2().unwrap(), a);
        assert!(Tensor::zeros(&[2, 2, 2]).transpose2().is_err());
    }

    #[test]
    fn map_and_max_abs() {
        let a = Tensor::from_vec(vec![-3., 1.], &[2]).unwrap();
        assert_eq!(a.map(|x| x * x).data(), &[9., 1.]);
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(Tensor::zeros(&[0]).max_abs(), 0.0);
    }

    #[test]
    fn display_short() {
        let t = Tensor::zeros(&[3]);
        assert!(format!("{t}").starts_with("Tensor[3]"));
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_add(
            a_data in proptest::collection::vec(-2.0f32..2.0, 6),
            b_data in proptest::collection::vec(-2.0f32..2.0, 6),
            c_data in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let a = Tensor::from_vec(a_data, &[2, 3]).unwrap();
            let b = Tensor::from_vec(b_data, &[3, 2]).unwrap();
            let c = Tensor::from_vec(c_data, &[3, 2]).unwrap();
            let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
            let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}

//! Mini-batch iteration utilities.
//!
//! A [`BatchIter`] yields shuffled index batches per epoch with a
//! deterministic seed — the pattern every trainer in this workspace
//! follows, factored out so custom training loops don't re-implement
//! the shuffle/chunk bookkeeping.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic shuffled mini-batch index generator.
///
/// # Example
///
/// ```
/// use nn::data::BatchIter;
/// let mut batches = BatchIter::new(10, 4, 7);
/// let epoch: Vec<Vec<usize>> = batches.epoch().collect();
/// assert_eq!(epoch.len(), 3); // 4 + 4 + 2
/// let all: Vec<usize> = epoch.iter().flatten().copied().collect();
/// let mut sorted = all.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..10).collect::<Vec<_>>()); // a permutation
/// ```
#[derive(Debug, Clone)]
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    rng: StdRng,
    epochs_drawn: usize,
}

impl BatchIter {
    /// Creates an iterator over `len` samples in batches of
    /// `batch_size` (the final batch of an epoch may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(len: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        BatchIter {
            order: (0..len).collect(),
            batch_size,
            rng: StdRng::seed_from_u64(seed),
            epochs_drawn: 0,
        }
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Epochs drawn so far.
    pub fn epochs_drawn(&self) -> usize {
        self.epochs_drawn
    }

    /// Reshuffles and returns this epoch's batches.
    ///
    /// Each call advances the RNG, so successive epochs see different
    /// permutations while the whole sequence stays reproducible from
    /// the seed.
    pub fn epoch(&mut self) -> impl Iterator<Item = Vec<usize>> + '_ {
        self.order.shuffle(&mut self.rng);
        self.epochs_drawn += 1;
        self.order
            .chunks(self.batch_size)
            .map(|chunk| chunk.to_vec())
    }
}

/// Splits `len` sample indices into deterministic train/validation
/// parts: the first `len - floor(len·fraction)` indices train, the
/// rest validate.
///
/// # Panics
///
/// Panics unless `0.0 <= fraction < 1.0`.
pub fn train_validation_split(len: usize, fraction: f64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    let val = ((len as f64) * fraction).floor() as usize;
    let cut = len - val;
    ((0..cut).collect(), (cut..len).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_permutations_and_differ() {
        let mut it = BatchIter::new(16, 5, 3);
        assert_eq!(it.batches_per_epoch(), 4);
        let e1: Vec<usize> = it.epoch().flatten().collect();
        let e2: Vec<usize> = it.epoch().flatten().collect();
        assert_eq!(it.epochs_drawn(), 2);
        let mut s1 = e1.clone();
        s1.sort_unstable();
        assert_eq!(s1, (0..16).collect::<Vec<_>>());
        assert_ne!(e1, e2, "epochs should reshuffle");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BatchIter::new(8, 3, 9);
        let mut b = BatchIter::new(8, 3, 9);
        assert_eq!(a.epoch().collect::<Vec<_>>(), b.epoch().collect::<Vec<_>>());
    }

    #[test]
    fn empty_dataset_yields_no_batches() {
        let mut it = BatchIter::new(0, 4, 1);
        assert_eq!(it.batches_per_epoch(), 0);
        assert_eq!(it.epoch().count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_panics() {
        BatchIter::new(4, 0, 1);
    }

    #[test]
    fn split_behaviour() {
        let (train, val) = train_validation_split(10, 0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(val.len(), 3);
        assert_eq!(val, vec![7, 8, 9]);
        let (train, val) = train_validation_split(10, 0.0);
        assert_eq!(train.len(), 10);
        assert!(val.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_panics() {
        train_validation_split(10, 1.0);
    }
}

//! Optimizers operating through [`Layer::visit_params`].
//!
//! [`Layer::visit_params`]: crate::layers::Layer::visit_params

use crate::layers::Layer;
use std::sync::{Arc, OnceLock};

/// Global optimizer-step counters, resolved once per process so the
/// per-step cost with telemetry disabled is a single relaxed load.
fn step_counter(
    name: &'static str,
    cell: &OnceLock<Arc<telemetry::Counter>>,
) -> Arc<telemetry::Counter> {
    cell.get_or_init(|| telemetry::counter(name)).clone()
}

fn adam_steps() -> Arc<telemetry::Counter> {
    static CELL: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    step_counter("nn.adam.steps", &CELL)
}

fn sgd_steps() -> Arc<telemetry::Counter> {
    static CELL: OnceLock<Arc<telemetry::Counter>> = OnceLock::new();
    step_counter("nn.sgd.steps", &CELL)
}

/// An optimizer that updates any [`Layer`] (models implement `Layer`
/// too — their `visit_params` forwards to their children in a stable
/// order, which is how per-parameter state stays associated).
pub trait Optimizer {
    /// Applies one update step using the gradients currently
    /// accumulated in `model`.
    fn step(&mut self, model: &mut dyn Layer);
}

/// Stochastic gradient descent with classical momentum and optional
/// L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            momentum,
            ..Sgd::new(learning_rate)
        }
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        sgd_steps().inc();
        let mut buffer_index = 0usize;
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |params, grads| {
            if velocity.len() <= buffer_index {
                velocity.push(vec![0.0; params.len()]);
            }
            let v = &mut velocity[buffer_index];
            debug_assert_eq!(v.len(), params.len(), "parameter buffer order changed");
            for i in 0..params.len() {
                let g = grads[i] + wd * params[i];
                v[i] = momentum * v[i] + g;
                params[i] -= lr * v[i];
            }
            buffer_index += 1;
        });
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub epsilon: f32,
    step_count: u32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and `eps = 1e-8`.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        adam_steps().inc();
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps) = (self.learning_rate, self.beta1, self.beta2, self.epsilon);
        let mut buffer_index = 0usize;
        let m_state = &mut self.m;
        let v_state = &mut self.v;
        model.visit_params(&mut |params, grads| {
            if m_state.len() <= buffer_index {
                m_state.push(vec![0.0; params.len()]);
                v_state.push(vec![0.0; params.len()]);
            }
            let m = &mut m_state[buffer_index];
            let v = &mut v_state[buffer_index];
            debug_assert_eq!(m.len(), params.len(), "parameter buffer order changed");
            for i in 0..params.len() {
                let g = grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            buffer_index += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::mse;
    use crate::tensor::Tensor;

    /// Train a 1-D linear fit y = 2x with each optimizer; both must
    /// drive the loss down monotonically-ish and converge.
    fn fit_linear(opt: &mut dyn Optimizer) -> f32 {
        let mut layer = Dense::new(1, 1, 3);
        let x = Tensor::from_vec(vec![0.0, 0.5, 1.0, -0.5], &[4, 1]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 1.0, 2.0, -1.0], &[4, 1]).unwrap();
        let mut last_loss = f32::INFINITY;
        for _ in 0..300 {
            let y = layer.forward(&x, true);
            let (loss, grad) = mse(&y, &t).unwrap();
            last_loss = loss;
            layer.zero_grad();
            layer.backward(&grad);
            opt.step(&mut layer);
        }
        last_loss
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.3);
        assert!(fit_linear(&mut opt) < 1e-4);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        assert!(fit_linear(&mut opt) < 1e-4);
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.05);
        assert!(fit_linear(&mut opt) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // With zero gradients, weight decay alone must shrink params.
        let mut layer = Dense::new(2, 2, 1);
        let before: f32 = {
            let mut s = 0.0;
            layer.visit_params(&mut |p, _| s += p.iter().map(|x| x.abs()).sum::<f32>());
            s
        };
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        layer.zero_grad();
        opt.step(&mut layer);
        let after: f32 = {
            let mut s = 0.0;
            layer.visit_params(&mut |p, _| s += p.iter().map(|x| x.abs()).sum::<f32>());
            s
        };
        assert!(after < before);
    }

    #[test]
    fn sgd_step_is_lr_times_grad_without_momentum() {
        let mut layer = Dense::new(1, 1, 2);
        let mut w_before = 0.0;
        let mut first = true;
        layer.visit_params(&mut |p, g| {
            if first {
                w_before = p[0];
                first = false;
            }
            g[0] = 2.0; // inject a known gradient on every buffer
        });
        let mut opt = Sgd::new(0.25);
        opt.step(&mut layer);
        let mut w_after = 0.0;
        let mut first = true;
        layer.visit_params(&mut |p, _| {
            if first {
                w_after = p[0];
                first = false;
            }
        });
        assert!((w_before - 0.5 - w_after).abs() < 1e-6);
    }
}

//! A minimal neural-network library with manual backpropagation.
//!
//! This crate plays the role PyTorch plays in the GENIEx paper: it
//! trains the GENIEx surrogate MLP (via [`Mlp`]) and the MicroResNet
//! vision models (via the individual [`layers`]), and provides the
//! deterministic forward passes the functional simulator re-implements
//! in crossbar arithmetic.
//!
//! Design notes:
//!
//! * [`Tensor`] is a dense row-major `f32` array with an explicit shape.
//!   Convolutional data uses NCHW layout.
//! * Layers own their parameters *and* their parameter gradients, cache
//!   whatever they need on `forward`, and produce input gradients on
//!   `backward` — the classic manual-backprop architecture.
//! * Optimizers ([`Sgd`], [`Adam`]) visit parameter/gradient pairs in a
//!   stable order through [`layers::Layer::visit_params`].
//! * Everything is seeded; there is no ambient randomness.
//!
//! # Example: fitting XOR
//!
//! ```
//! # fn main() -> Result<(), nn::NnError> {
//! use nn::{Mlp, Tensor, loss::mse, Adam, Optimizer};
//!
//! let mut mlp = Mlp::new(&[2, 8, 1], 42)?;
//! let x = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2])?;
//! let t = Tensor::from_vec(vec![0., 1., 1., 0.], &[4, 1])?;
//! let mut opt = Adam::new(0.05);
//! for _ in 0..400 {
//!     let y = mlp.forward_train(&x);
//!     let (loss, grad) = mse(&y, &t)?;
//!     mlp.zero_grad();
//!     mlp.backward(&grad);
//!     opt.step(&mut mlp);
//!     if loss < 1e-4 { break; }
//! }
//! let y = mlp.forward(&x);
//! assert!((y.data()[0]).abs() < 0.15 && (y.data()[1] - 1.0).abs() < 0.15);
//! # Ok(())
//! # }
//! ```

pub mod data;
mod error;
pub mod init;
pub mod layers;
pub mod loss;
mod mlp;
mod optim;
pub mod serialize;
mod tensor;

pub use error::NnError;
pub use mlp::Mlp;
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;

//! Loss functions returning `(loss, gradient)` pairs.

use crate::tensor::Tensor;
use crate::NnError;

/// Mean-squared-error loss over all elements.
///
/// Returns the scalar loss and the gradient with respect to the
/// prediction (`2 (y - t) / n`).
///
/// # Errors
///
/// Returns [`NnError::Shape`] if the shapes differ.
pub fn mse(prediction: &Tensor, target: &Tensor) -> Result<(f32, Tensor), NnError> {
    if prediction.shape() != target.shape() {
        return Err(NnError::Shape(format!(
            "mse: prediction {:?} vs target {:?}",
            prediction.shape(),
            target.shape()
        )));
    }
    let n = prediction.len().max(1) as f32;
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(prediction.shape());
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(prediction.data())
        .zip(target.data())
    {
        let d = p - t;
        loss += (d * d) as f64;
        *g = 2.0 * d / n;
    }
    Ok(((loss / n as f64) as f32, grad))
}

/// Softmax cross-entropy over logits `[batch, classes]` with integer
/// class labels.
///
/// Returns the mean loss and the gradient with respect to the logits
/// (`(softmax - onehot) / batch`).
///
/// # Errors
///
/// Returns [`NnError::Shape`] if `logits` is not rank-2, the label
/// count differs from the batch size, or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    if logits.shape().len() != 2 {
        return Err(NnError::Shape(format!(
            "softmax_cross_entropy: logits must be [batch, classes], got {:?}",
            logits.shape()
        )));
    }
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != batch {
        return Err(NnError::Shape(format!(
            "softmax_cross_entropy: {} labels for batch {batch}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::Shape(format!(
            "softmax_cross_entropy: label {bad} out of range for {classes} classes"
        )));
    }

    let mut grad = Tensor::zeros(&[batch, classes]);
    let mut loss = 0.0f64;
    for b in 0..batch {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &x| a.max(x));
        let exp: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let label = labels[b];
        loss -= ((exp[label] / sum).max(1e-30) as f64).ln();
        let g = &mut grad.data_mut()[b * classes..(b + 1) * classes];
        for (k, gk) in g.iter_mut().enumerate() {
            let p = exp[k] / sum;
            *gk = (p - if k == label { 1.0 } else { 0.0 }) / batch as f32;
        }
    }
    Ok(((loss / batch as f64) as f32, grad))
}

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns [`NnError::Shape`] under the same conditions as
/// [`softmax_cross_entropy`].
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f64, NnError> {
    if logits.shape().len() != 2 {
        return Err(NnError::Shape(format!(
            "accuracy: logits must be [batch, classes], got {:?}",
            logits.shape()
        )));
    }
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    if labels.len() != batch {
        return Err(NnError::Shape(format!(
            "accuracy: {} labels for batch {batch}",
            labels.len()
        )));
    }
    if batch == 0 {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for b in 0..batch {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if pred == labels[b] {
            correct += 1;
        }
    }
    Ok(correct as f64 / batch as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let y = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let (loss, grad) = mse(&y, &y).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let y = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let t = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let (loss, grad) = mse(&y, &t).unwrap();
        assert!((loss - 5.0).abs() < 1e-6); // (1 + 9) / 2
        assert!((grad.data()[0] - 1.0).abs() < 1e-6); // 2*1/2
        assert!((grad.data()[1] - 3.0).abs() < 1e-6); // 2*3/2
    }

    #[test]
    fn mse_shape_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(mse(&a, &b).is_err());
    }

    #[test]
    fn softmax_ce_uniform_logits() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        // Gradient: 1/4 for wrong classes, 1/4 - 1 for the label.
        assert!((grad.data()[0] - 0.25).abs() < 1e-6);
        assert!((grad.data()[2] + 0.75).abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_confident_correct_has_small_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-6);
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.7, 0.0, -0.5], &[2, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]).unwrap();
        for b in 0..2 {
            let s: f32 = grad.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_ce_numeric_gradient() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 1.2], &[1, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut plus = logits.clone();
            plus.data_mut()[k] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[k] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &[0]).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &[0]).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[k]).abs() < 1e-3,
                "coordinate {k}: numeric {numeric} vs {}",
                grad.data()[k]
            );
        }
    }

    #[test]
    fn softmax_ce_validation() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[4]), &[0]).is_err());
    }

    #[test]
    fn softmax_ce_large_logits_stable() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.2, 0.1], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]).unwrap(), 0.0);
    }
}

//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::Rng;

/// Kaiming/He uniform initialization for a buffer feeding a ReLU:
/// uniform in `±sqrt(6 / fan_in)`.
pub fn kaiming_uniform(buffer: &mut [f32], fan_in: usize, rng: &mut StdRng) {
    let bound = (6.0 / fan_in.max(1) as f64).sqrt() as f32;
    for w in buffer.iter_mut() {
        *w = rng.gen_range(-bound..bound);
    }
}

/// Xavier/Glorot uniform initialization: uniform in
/// `±sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(buffer: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt() as f32;
    for w in buffer.iter_mut() {
        *w = rng.gen_range(-bound..bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0; 1000];
        kaiming_uniform(&mut buf, 64, &mut rng);
        let bound = (6.0f64 / 64.0).sqrt() as f32;
        assert!(buf.iter().all(|w| w.abs() < bound));
        // Not degenerate: spread across the range.
        assert!(buf.iter().any(|w| *w > 0.5 * bound));
        assert!(buf.iter().any(|w| *w < -0.5 * bound));
    }

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![0.0; 1000];
        xavier_uniform(&mut buf, 64, 32, &mut rng);
        let bound = (6.0f64 / 96.0).sqrt() as f32;
        assert!(buf.iter().all(|w| w.abs() < bound));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        kaiming_uniform(&mut a, 8, &mut StdRng::seed_from_u64(9));
        kaiming_uniform(&mut b, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_fan_in_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0; 4];
        kaiming_uniform(&mut buf, 0, &mut rng);
        assert!(buf.iter().all(|w| w.is_finite()));
    }
}

//! Multi-layer perceptron: dense layers with ReLU between them.
//!
//! This is the exact topology class GENIEx uses — the paper's surrogate
//! is `(N² + N) × P × N` with one ReLU hidden layer — kept general over
//! depth so ablations can sweep architecture.

use crate::layers::{Dense, Layer, Relu};
use crate::serialize::{
    expect_magic, read_f32_slice, read_u32, write_f32_slice, write_magic, write_u32,
};
use crate::tensor::Tensor;
use crate::NnError;
use std::io::{Read, Write};

const MAGIC: &[u8] = b"GMLP";
/// Upper bound on deserialized buffer sizes (guards corrupt files).
const MAX_BUFFER: usize = 256 * 1024 * 1024 / 4;

/// A fully-connected network `sizes[0] -> sizes[1] -> ... -> sizes[last]`
/// with ReLU after every layer except the last.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), nn::NnError> {
/// use nn::Mlp;
/// let mlp = Mlp::new(&[10, 20, 3], 7)?;
/// assert_eq!(mlp.layer_sizes(), &[10, 20, 3]);
/// assert_eq!(mlp.parameter_count(), 10 * 20 + 20 + 20 * 3 + 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    sizes: Vec<usize>,
    dense: Vec<Dense>,
    relu: Vec<Relu>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes and a deterministic
    /// per-layer initialization derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArchitecture`] if fewer than two sizes
    /// are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Result<Self, NnError> {
        if sizes.len() < 2 {
            return Err(NnError::InvalidArchitecture(format!(
                "mlp needs at least input and output sizes, got {sizes:?}"
            )));
        }
        if sizes.contains(&0) {
            return Err(NnError::InvalidArchitecture(format!(
                "mlp layer sizes must be positive, got {sizes:?}"
            )));
        }
        let dense = sizes
            .windows(2)
            .enumerate()
            .map(|(k, pair)| Dense::new(pair[0], pair[1], seed.wrapping_add(k as u64)))
            .collect::<Vec<_>>();
        let relu = (0..sizes.len().saturating_sub(2))
            .map(|_| Relu::new())
            .collect();
        Ok(Mlp {
            sizes: sizes.to_vec(),
            dense,
            relu,
        })
    }

    /// The layer sizes this network was built with.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.sizes.windows(2).map(|p| p[0] * p[1] + p[1]).sum()
    }

    /// Borrow of the dense layers (for weight export, e.g. mapping the
    /// surrogate itself onto crossbars, or the fast-forward split).
    pub fn dense_layers(&self) -> &[Dense] {
        &self.dense
    }

    /// Inference forward pass (no caches kept).
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.run(input, false)
    }

    /// Training forward pass (caches activations for `backward`).
    pub fn forward_train(&mut self, input: &Tensor) -> Tensor {
        self.run(input, true)
    }

    fn run(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.run_inference(input);
        }
        let mut x = input.clone();
        let n = self.dense.len();
        for k in 0..n {
            x = self.dense[k].forward(&x, train);
            if k + 1 < n {
                x = self.relu[k].forward(&x, train);
            }
        }
        x
    }

    /// Allocation-light inference: the whole pass runs in one scratch
    /// ping-pong pair, with bias-add and ReLU fused into each layer's
    /// GEMV. Bit-identical to the layer-by-layer training path — the
    /// GEMVs use the same 8-lane kernel spec as `matmul_transpose`,
    /// and `bias + dot == dot + bias` under IEEE addition.
    fn run_inference(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "mlp input must be [batch, in]");
        assert_eq!(input.shape()[1], self.sizes[0], "mlp input width");
        let batch = input.shape()[0];
        let out_w = *self.sizes.last().expect("validated at construction");
        let max_w = self.sizes.iter().copied().max().expect("non-empty");
        let n = self.dense.len();
        let mut result = vec![0.0f32; batch * out_w];
        kernels::scratch::with_f32_pair(batch * max_w, batch * max_w, |a, b| {
            let (mut cur, mut next) = (a, b);
            cur[..input.len()].copy_from_slice(input.data());
            for k in 0..n {
                let (w_in, w_out) = (self.sizes[k], self.sizes[k + 1]);
                let dense = &self.dense[k];
                let w = dense.weight().data();
                let bias = dense.bias().data();
                let last = k + 1 == n;
                let dst: &mut [f32] = if last { &mut result } else { next };
                let rows = cur[..batch * w_in]
                    .chunks_exact(w_in)
                    .zip(dst[..batch * w_out].chunks_exact_mut(w_out));
                for (x_row, y_row) in rows {
                    if last {
                        kernels::gemv_into_f32(w, x_row, bias, y_row);
                    } else {
                        kernels::gemv_bias_relu_f32(w, x_row, bias, y_row);
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
        });
        Tensor::from_vec(result, &[batch, out_w]).expect("shape consistent")
    }

    /// Backward pass from the output gradient; returns the input
    /// gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`forward_train`]
    /// (layer caches are missing).
    ///
    /// [`forward_train`]: Mlp::forward_train
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        let n = self.dense.len();
        for k in (0..n).rev() {
            if k + 1 < n {
                g = self.relu[k].backward(&g);
            }
            g = self.dense[k].backward(&g);
        }
        g
    }

    /// Clears accumulated parameter gradients (inherent convenience so
    /// callers don't need the [`Layer`] trait in scope).
    pub fn zero_grad(&mut self) {
        for d in &mut self.dense {
            d.zero_grad();
        }
    }

    /// Serializes the model to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), NnError> {
        write_magic(w, MAGIC)?;
        write_u32(w, self.sizes.len() as u32)?;
        for &s in &self.sizes {
            write_u32(w, s as u32)?;
        }
        for d in &self.dense {
            write_f32_slice(w, d.weight().data())?;
            write_f32_slice(w, d.bias().data())?;
        }
        Ok(())
    }

    /// Deserializes a model written by [`save`](Mlp::save).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Format`] on a malformed file and propagates
    /// I/O errors.
    pub fn load<R: Read>(r: &mut R) -> Result<Self, NnError> {
        expect_magic(r, MAGIC)?;
        let n_sizes = read_u32(r)? as usize;
        if !(2..=64).contains(&n_sizes) {
            return Err(NnError::Format(format!(
                "implausible layer count {n_sizes}"
            )));
        }
        let mut sizes = Vec::with_capacity(n_sizes);
        for _ in 0..n_sizes {
            sizes.push(read_u32(r)? as usize);
        }
        let mut mlp = Mlp::new(&sizes, 0)?;
        for (k, pair) in sizes.windows(2).enumerate() {
            let w = read_f32_slice(r, MAX_BUFFER)?;
            let b = read_f32_slice(r, MAX_BUFFER)?;
            if w.len() != pair[0] * pair[1] || b.len() != pair[1] {
                return Err(NnError::Format(format!(
                    "layer {k} buffer sizes do not match architecture {sizes:?}"
                )));
            }
            mlp.dense[k].set_params(
                Tensor::from_vec(w, &[pair[1], pair[0]])?,
                Tensor::from_vec(b, &[pair[1]])?,
            );
        }
        Ok(mlp)
    }
}

impl Layer for Mlp {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.run(input, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        Mlp::backward(self, grad_output)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for d in &mut self.dense {
            d.visit_params(visitor);
        }
    }

    fn zero_grad(&mut self) {
        for d in &mut self.dense {
            d.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::{Adam, Optimizer};
    use std::io::Cursor;

    #[test]
    fn architecture_validation() {
        assert!(Mlp::new(&[4], 0).is_err());
        assert!(Mlp::new(&[4, 0, 2], 0).is_err());
        assert!(Mlp::new(&[4, 2], 0).is_ok());
    }

    #[test]
    fn parameter_count() {
        let mlp = Mlp::new(&[3, 5, 2], 0).unwrap();
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn forward_shape() {
        let mut mlp = Mlp::new(&[4, 8, 2], 1).unwrap();
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(mlp.forward(&x).shape(), &[3, 2]);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = Mlp::new(&[4, 8, 2], 5).unwrap();
        let mut b = Mlp::new(&[4, 8, 2], 5).unwrap();
        let mut c = Mlp::new(&[4, 8, 2], 6).unwrap();
        let x = Tensor::from_vec((0..4).map(|i| i as f32).collect(), &[1, 4]).unwrap();
        assert_eq!(a.forward(&x), b.forward(&x));
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn inference_matches_training_forward_bitwise() {
        // The fused scratch-buffer inference path must produce the
        // same bits as the layer-by-layer training path.
        let mut mlp = Mlp::new(&[5, 11, 7, 2], 3).unwrap();
        let x = Tensor::from_vec((0..15).map(|i| 0.3 * i as f32 - 2.0).collect(), &[3, 5]).unwrap();
        let inf = mlp.forward(&x);
        let train = mlp.forward_train(&x);
        assert_eq!(inf, train);
    }

    #[test]
    fn trains_on_simple_regression() {
        // y = [sum(x), -sum(x)]
        let mut mlp = Mlp::new(&[3, 16, 2], 9).unwrap();
        let mut opt = Adam::new(0.02);
        let xs: Vec<f32> = (0..30).map(|i| (i as f32 / 10.0) - 1.5).collect();
        let x = Tensor::from_vec(xs.clone(), &[10, 3]).unwrap();
        let t_data: Vec<f32> = xs
            .chunks(3)
            .flat_map(|c| {
                let s: f32 = c.iter().sum();
                [s, -s]
            })
            .collect();
        let t = Tensor::from_vec(t_data, &[10, 2]).unwrap();
        let mut final_loss = f32::INFINITY;
        for _ in 0..600 {
            let y = mlp.forward_train(&x);
            let (loss, grad) = mse(&y, &t).unwrap();
            final_loss = loss;
            mlp.zero_grad();
            Mlp::backward(&mut mlp, &grad);
            opt.step(&mut mlp);
        }
        assert!(final_loss < 1e-3, "final loss {final_loss}");
    }

    #[test]
    fn save_load_round_trip() {
        let mut mlp = Mlp::new(&[6, 10, 3], 17).unwrap();
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        let mut loaded = Mlp::load(&mut Cursor::new(&buf)).unwrap();
        let x = Tensor::from_vec((0..6).map(|i| 0.1 * i as f32).collect(), &[1, 6]).unwrap();
        assert_eq!(mlp.forward(&x), loaded.forward(&x));
        assert_eq!(loaded.layer_sizes(), &[6, 10, 3]);
    }

    #[test]
    fn load_rejects_corrupt_files() {
        assert!(Mlp::load(&mut Cursor::new(b"XXXX".to_vec())).is_err());
        // Valid magic but truncated body.
        let mut buf = Vec::new();
        write_magic(&mut buf, MAGIC).unwrap();
        write_u32(&mut buf, 3).unwrap();
        assert!(Mlp::load(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn load_rejects_mismatched_buffers() {
        let mlp = Mlp::new(&[2, 3], 0).unwrap();
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        // Corrupt the declared weight length field.
        // Layout: magic(4) + count(4) + sizes(8) + weight len(4)...
        buf[16] = 0xFF;
        assert!(Mlp::load(&mut Cursor::new(buf)).is_err());
    }
}

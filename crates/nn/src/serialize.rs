//! Minimal binary (de)serialization helpers for model files.
//!
//! The format is deliberately simple and dependency-free: little-endian
//! integers and IEEE-754 `f32` buffers framed by explicit lengths, with
//! a magic tag per container type. This keeps the workspace inside the
//! allowed dependency set (no serde needed for flat numeric payloads).

use crate::NnError;
use std::io::{Read, Write};

/// Writes a little-endian `u32`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_u32<W: Write>(w: &mut W, value: u32) -> Result<(), NnError> {
    w.write_all(&value.to_le_bytes())?;
    Ok(())
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// Propagates I/O errors (including unexpected EOF) from the reader.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, NnError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes an `f32` slice prefixed by its length.
///
/// # Errors
///
/// Propagates I/O errors from the writer; rejects buffers longer than
/// `u32::MAX` elements.
pub fn write_f32_slice<W: Write>(w: &mut W, values: &[f32]) -> Result<(), NnError> {
    let len = u32::try_from(values.len())
        .map_err(|_| NnError::Format("buffer too large to serialize".into()))?;
    write_u32(w, len)?;
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads an `f32` buffer written by [`write_f32_slice`].
///
/// # Errors
///
/// Propagates I/O errors; returns [`NnError::Format`] if the declared
/// length exceeds `limit` (guarding against corrupt headers allocating
/// unbounded memory).
pub fn read_f32_slice<R: Read>(r: &mut R, limit: usize) -> Result<Vec<f32>, NnError> {
    let len = read_u32(r)? as usize;
    if len > limit {
        return Err(NnError::Format(format!(
            "declared buffer length {len} exceeds limit {limit}"
        )));
    }
    let mut out = Vec::with_capacity(len);
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(f32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Writes a magic tag (exactly 4 bytes).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `magic` is not exactly 4 bytes (a compile-time constant in
/// all callers).
pub fn write_magic<W: Write>(w: &mut W, magic: &[u8]) -> Result<(), NnError> {
    assert_eq!(magic.len(), 4, "magic tags are 4 bytes");
    w.write_all(magic)?;
    Ok(())
}

/// Reads and verifies a magic tag.
///
/// # Errors
///
/// Returns [`NnError::Format`] if the tag does not match.
pub fn expect_magic<R: Read>(r: &mut R, magic: &[u8]) -> Result<(), NnError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    if buf != magic[..4] {
        return Err(NnError::Format(format!(
            "bad magic: expected {:?}, found {:?}",
            magic, buf
        )));
    }
    Ok(())
}

/// Serializes every parameter buffer of a layer (or whole model) in
/// `visit_params` order, prefixed by a buffer count.
///
/// Together with [`load_params`] this gives any [`Layer`] durable
/// persistence without bespoke formats — buffer order is stable by the
/// trait's contract.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// [`Layer`]: crate::layers::Layer
pub fn save_params<W: Write>(
    layer: &mut dyn crate::layers::Layer,
    w: &mut W,
) -> Result<(), NnError> {
    write_magic(w, b"GPAR")?;
    let mut buffers: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p, _| buffers.push(p.to_vec()));
    write_u32(w, buffers.len() as u32)?;
    for b in &buffers {
        write_f32_slice(w, b)?;
    }
    Ok(())
}

/// Restores parameters written by [`save_params`] into a structurally
/// identical layer/model.
///
/// # Errors
///
/// Returns [`NnError::Format`] if the buffer count or any buffer
/// length does not match the target's architecture.
pub fn load_params<R: Read>(
    layer: &mut dyn crate::layers::Layer,
    r: &mut R,
) -> Result<(), NnError> {
    expect_magic(r, b"GPAR")?;
    let count = read_u32(r)? as usize;
    let mut expected = 0usize;
    layer.visit_params(&mut |_, _| expected += 1);
    if count != expected {
        return Err(NnError::Format(format!(
            "file has {count} parameter buffers, model has {expected}"
        )));
    }
    let mut buffers = Vec::with_capacity(count);
    for _ in 0..count {
        buffers.push(read_f32_slice(r, 256 * 1024 * 1024 / 4)?);
    }
    let mut index = 0usize;
    let mut mismatch: Option<String> = None;
    layer.visit_params(&mut |p, _| {
        let src = &buffers[index];
        if src.len() == p.len() {
            p.copy_from_slice(src);
        } else if mismatch.is_none() {
            mismatch = Some(format!(
                "buffer {index} has {} values, model expects {}",
                src.len(),
                p.len()
            ));
        }
        index += 1;
    });
    match mismatch {
        Some(msg) => Err(NnError::Format(msg)),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        let v = read_u32(&mut Cursor::new(buf)).unwrap();
        assert_eq!(v, 0xDEAD_BEEF);
    }

    #[test]
    fn f32_slice_round_trip() {
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &data).unwrap();
        let back = read_f32_slice(&mut Cursor::new(buf), 1024).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn f32_slice_limit_enforced() {
        let mut buf = Vec::new();
        write_f32_slice(&mut buf, &[0.0; 100]).unwrap();
        assert!(matches!(
            read_f32_slice(&mut Cursor::new(buf), 10),
            Err(NnError::Format(_))
        ));
    }

    #[test]
    fn magic_round_trip_and_mismatch() {
        let mut buf = Vec::new();
        write_magic(&mut buf, b"GNX1").unwrap();
        expect_magic(&mut Cursor::new(&buf), b"GNX1").unwrap();
        assert!(matches!(
            expect_magic(&mut Cursor::new(&buf), b"GNX2"),
            Err(NnError::Format(_))
        ));
    }

    #[test]
    fn truncated_input_is_io_error() {
        let buf = vec![1u8, 2];
        assert!(matches!(
            read_u32(&mut Cursor::new(buf)),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn layer_params_round_trip() {
        use crate::layers::{Dense, Layer};
        let mut a = Dense::new(3, 4, 7);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();

        let mut b = Dense::new(3, 4, 99); // different init
        load_params(&mut b, &mut Cursor::new(&buf)).unwrap();
        let x = crate::Tensor::from_vec(vec![0.3, -0.7, 1.1], &[1, 3]).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn load_params_rejects_architecture_mismatch() {
        use crate::layers::Dense;
        let mut a = Dense::new(3, 4, 7);
        let mut buf = Vec::new();
        save_params(&mut a, &mut buf).unwrap();

        // Wrong shape (same buffer count, different sizes).
        let mut c = Dense::new(4, 3, 0);
        assert!(matches!(
            load_params(&mut c, &mut Cursor::new(&buf)),
            Err(NnError::Format(_))
        ));

        // Wrong buffer count.
        let mut mlp = crate::Mlp::new(&[3, 4, 2], 0).unwrap();
        assert!(matches!(
            load_params(&mut mlp, &mut Cursor::new(&buf)),
            Err(NnError::Format(_))
        ));
    }
}

//! Neural-network layers with manual forward/backward passes.
//!
//! Each layer owns its parameters and their gradients. `forward`
//! caches whatever the matching `backward` needs; `backward` consumes
//! the cached activation, accumulates parameter gradients, and returns
//! the gradient with respect to the layer input.
//!
//! Shapes use NCHW for convolutional data.

use crate::init::kaiming_uniform;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Common interface of all layers.
///
/// # Panics
///
/// `forward`/`backward` panic on malformed shapes: layer wiring is
/// internal program structure, not user input, so a mismatch is a bug
/// in the calling model.
pub trait Layer {
    /// Forward pass. `train` enables behaviour that differs between
    /// training and inference (none of the current layers do, but the
    /// flag keeps the interface future-proof and mirrors the framework
    /// the paper used).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the forward input.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits `(parameter, gradient)` buffer pairs in a stable order.
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    /// Clears accumulated parameter gradients.
    fn zero_grad(&mut self) {}
}

/// Fully-connected layer: `y = x · Wᵀ + b`, weights stored `[out, in]`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0f32; out_features * in_features];
        kaiming_uniform(&mut w, in_features, &mut rng);
        Dense {
            weight: Tensor::from_vec(w, &[out_features, in_features]).expect("dense weight shape"),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Borrow of the weight tensor (`[out, in]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Borrow of the bias tensor (`[out]`).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the parameters (used by model deserialization and by
    /// the functional simulator when injecting quantized weights).
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match the layer's architecture.
    pub fn set_params(&mut self, weight: Tensor, bias: Tensor) {
        assert_eq!(weight.shape(), self.weight.shape(), "dense weight shape");
        assert_eq!(bias.shape(), self.bias.shape(), "dense bias shape");
        self.weight = weight;
        self.bias = bias;
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "dense input must be [batch, in]");
        assert_eq!(input.shape()[1], self.in_features(), "dense input width");
        let mut out = input
            .matmul_transpose(&self.weight)
            .expect("dense forward product");
        let out_f = self.out_features();
        for row in out.data_mut().chunks_mut(out_f) {
            for (o, b) in row.iter_mut().zip(self.bias.data()) {
                *o += b;
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("dense backward without cached forward");
        let batch = input.shape()[0];
        assert_eq!(grad_output.shape(), &[batch, self.out_features()]);

        // dW[o, i] += sum_b grad[b, o] * x[b, i]  ==  gradᵀ · x
        let grad_t = grad_output.transpose2().expect("rank 2");
        let dw = grad_t.matmul(&input).expect("dense grad weight");
        for (g, d) in self.grad_weight.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        // db[o] += sum_b grad[b, o]
        let out_f = self.out_features();
        for row in grad_output.data().chunks(out_f) {
            for (g, d) in self.grad_bias.data_mut().iter_mut().zip(row) {
                *g += d;
            }
        }
        // dX = grad · W
        grad_output.matmul(&self.weight).expect("dense grad input")
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(self.weight.data_mut(), self.grad_weight.data_mut());
        visitor(self.bias.data_mut(), self.grad_bias.data_mut());
    }

    fn zero_grad(&mut self) {
        self.grad_weight.data_mut().fill(0.0);
        self.grad_bias.data_mut().fill(0.0);
    }
}

/// 2-D convolution (NCHW), weights `[out_c, in_c, kh, kw]`, implemented
/// via im2col so the functional simulator's iterative-MVM view of
/// convolution mirrors this exact lowering.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    /// (kernel_h, kernel_w)
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with square kernel `k`, the given
    /// stride and zero-padding, Kaiming-uniform weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_channels * k * k;
        let mut w = vec![0.0f32; out_channels * fan_in];
        kaiming_uniform(&mut w, fan_in, &mut rng);
        Conv2d {
            weight: Tensor::from_vec(w, &[out_channels, in_channels, k, k])
                .expect("conv weight shape"),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, k, k]),
            grad_bias: Tensor::zeros(&[out_channels]),
            kernel: (k, k),
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let (kh, kw) = self.kernel;
        (
            (h + 2 * self.padding - kh) / self.stride + 1,
            (w + 2 * self.padding - kw) / self.stride + 1,
        )
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Kernel size `(kh, kw)`.
    pub fn kernel(&self) -> (usize, usize) {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Borrow of the weight tensor (`[out_c, in_c, kh, kw]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Borrow of the bias tensor (`[out_c]`).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match the layer's architecture.
    pub fn set_params(&mut self, weight: Tensor, bias: Tensor) {
        assert_eq!(weight.shape(), self.weight.shape(), "conv weight shape");
        assert_eq!(bias.shape(), self.bias.shape(), "conv bias shape");
        self.weight = weight;
        self.bias = bias;
    }

    /// Lowers one batch item to a `[in_c*kh*kw, out_h*out_w]` patch
    /// matrix (im2col).
    fn im2col(&self, input: &Tensor, b: usize, out_h: usize, out_w: usize) -> Tensor {
        let [_, c, h, w] = *<&[usize; 4]>::try_from(input.shape()).expect("nchw input");
        let (kh, kw) = self.kernel;
        let mut col = Tensor::zeros(&[c * kh * kw, out_h * out_w]);
        let cd = col.data_mut();
        let id = input.data();
        let base = b * c * h * w;
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ci * kh + ki) * kw + kj;
                    for oy in 0..out_h {
                        let iy = (oy * self.stride + ki) as isize - self.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..out_w {
                            let ix = (ox * self.stride + kj) as isize - self.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cd[row * out_h * out_w + oy * out_w + ox] =
                                id[base + ci * h * w + iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
        col
    }

    /// Scatters a patch-matrix gradient back to input space (col2im).
    fn col2im(
        &self,
        col_grad: &Tensor,
        grad_input: &mut Tensor,
        b: usize,
        out_h: usize,
        out_w: usize,
    ) {
        let [_, c, h, w] = *<&[usize; 4]>::try_from(grad_input.shape()).expect("nchw grad");
        let (kh, kw) = self.kernel;
        let cg = col_grad.data();
        let gi = grad_input.data_mut();
        let base = b * c * h * w;
        for ci in 0..c {
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ci * kh + ki) * kw + kj;
                    for oy in 0..out_h {
                        let iy = (oy * self.stride + ki) as isize - self.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..out_w {
                            let ix = (ox * self.stride + kj) as isize - self.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            gi[base + ci * h * w + iy as usize * w + ix as usize] +=
                                cg[row * out_h * out_w + oy * out_w + ox];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [batch, c, h, w] =
            *<&[usize; 4]>::try_from(input.shape()).expect("conv input must be [batch, c, h, w]");
        assert_eq!(c, self.in_channels(), "conv input channels");
        let (out_h, out_w) = self.output_hw(h, w);
        let oc = self.out_channels();
        let fan_in = c * self.kernel.0 * self.kernel.1;
        let w_mat = self
            .weight
            .reshape(&[oc, fan_in])
            .expect("conv weight as matrix");

        let mut out = Tensor::zeros(&[batch, oc, out_h, out_w]);
        // Per-sample lowering and product are independent and write
        // disjoint output chunks, so the batch splits across threads
        // with bit-identical results.
        let this: &Conv2d = self;
        let w_mat = &w_mat;
        parallel::global().par_chunks_mut(out.data_mut(), oc * out_h * out_w, |b, chunk| {
            let col = this.im2col(input, b, out_h, out_w);
            let prod = w_mat.matmul(&col).expect("conv forward product");
            for o in 0..oc {
                let bias = this.bias.data()[o];
                for p in 0..out_h * out_w {
                    chunk[o * out_h * out_w + p] = prod.data()[o * out_h * out_w + p] + bias;
                }
            }
        });
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("conv backward without cached forward");
        let [batch, c, h, w] = *<&[usize; 4]>::try_from(input.shape()).expect("nchw");
        let (out_h, out_w) = self.output_hw(h, w);
        let oc = self.out_channels();
        assert_eq!(grad_output.shape(), &[batch, oc, out_h, out_w]);
        let fan_in = c * self.kernel.0 * self.kernel.1;
        let w_mat = self
            .weight
            .reshape(&[oc, fan_in])
            .expect("conv weight as matrix");

        let mut grad_input = Tensor::zeros(input.shape());
        // Per-sample gradient pieces compute in parallel; the shared
        // dW/db accumulators then reduce over the batch in index
        // order, matching the serial loop bit for bit.
        let this: &Conv2d = self;
        let w_t = w_mat.transpose2().expect("rank 2");
        let samples: Vec<usize> = (0..batch).collect();
        let pieces = parallel::global().par_map_grained(&samples, 1, |&b| {
            let col = this.im2col(&input, b, out_h, out_w);
            let go_slice =
                &grad_output.data()[b * oc * out_h * out_w..(b + 1) * oc * out_h * out_w];
            let go_mat = Tensor::from_vec(go_slice.to_vec(), &[oc, out_h * out_w])
                .expect("grad output matrix");

            // dW contribution: go · colᵀ (operands share the patch dim).
            let dw = go_mat.matmul_transpose(&col).expect("conv grad weight");
            // db contribution: row sums of go.
            let db: Vec<f32> = (0..oc)
                .map(|o| {
                    go_mat.data()[o * out_h * out_w..(o + 1) * out_h * out_w]
                        .iter()
                        .sum()
                })
                .collect();
            // dCol = Wᵀ · go, scattered back with col2im below.
            let dcol = w_t.matmul(&go_mat).expect("conv grad col");
            (dw, db, dcol)
        });
        for (b, (dw, db, dcol)) in pieces.iter().enumerate() {
            for (g, d) in self.grad_weight.data_mut().iter_mut().zip(dw.data()) {
                *g += d;
            }
            for (g, d) in self.grad_bias.data_mut().iter_mut().zip(db) {
                *g += d;
            }
            self.col2im(dcol, &mut grad_input, b, out_h, out_w);
        }
        grad_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(self.weight.data_mut(), self.grad_weight.data_mut());
        visitor(self.bias.data_mut(), self.grad_bias.data_mut());
    }

    fn zero_grad(&mut self) {
        self.grad_weight.data_mut().fill(0.0);
        self.grad_bias.data_mut().fill(0.0);
    }
}

/// Rectified linear unit, element-wise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = input.data().iter().map(|&x| x > 0.0).collect();
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.len(),
            self.mask.len(),
            "relu backward without matching forward"
        );
        let data = grad_output
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape()).expect("relu grad shape")
    }
}

/// 2×2 max pooling with stride 2 (NCHW).
///
/// # Panics
///
/// `forward` panics if the spatial dimensions are odd.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    /// Flat input index of each output's argmax, plus the input shape.
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pool layer.
    pub fn new() -> Self {
        MaxPool2::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [batch, c, h, w] = *<&[usize; 4]>::try_from(input.shape()).expect("nchw input");
        assert!(h % 2 == 0 && w % 2 == 0, "maxpool2 needs even spatial dims");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[batch, c, oh, ow]);
        let mut argmax = vec![0usize; batch * c * oh * ow];
        let id = input.data();
        let od = out.data_mut();
        for b in 0..batch {
            for ci in 0..c {
                let in_base = (b * c + ci) * h * w;
                let out_base = (b * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = in_base + (2 * oy) * w + 2 * ox;
                        let mut best = id[best_idx];
                        for (dy, dx) in [(0, 1), (1, 0), (1, 1)] {
                            let idx = in_base + (2 * oy + dy) * w + 2 * ox + dx;
                            if id[idx] > best {
                                best = id[idx];
                                best_idx = idx;
                            }
                        }
                        od[out_base + oy * ow + ox] = best;
                        argmax[out_base + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if train {
            self.argmax = argmax;
            self.input_shape = input.shape().to_vec();
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert_eq!(
            grad_output.len(),
            self.argmax.len(),
            "maxpool backward without matching forward"
        );
        let mut grad_input = Tensor::zeros(&self.input_shape);
        let gi = grad_input.data_mut();
        for (g, &idx) in grad_output.data().iter().zip(&self.argmax) {
            gi[idx] += g;
        }
        grad_input
    }
}

/// Global average pooling: `[b, c, h, w] -> [b, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average-pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [batch, c, h, w] = *<&[usize; 4]>::try_from(input.shape()).expect("nchw input");
        let mut out = Tensor::zeros(&[batch, c]);
        let scale = 1.0 / (h * w) as f32;
        let id = input.data();
        let od = out.data_mut();
        for b in 0..batch {
            for ci in 0..c {
                let base = (b * c + ci) * h * w;
                od[b * c + ci] = id[base..base + h * w].iter().sum::<f32>() * scale;
            }
        }
        if train {
            self.input_shape = input.shape().to_vec();
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let [batch, c, h, w] = *<&[usize; 4]>::try_from(self.input_shape.as_slice())
            .expect("avgpool backward without matching forward");
        let mut grad_input = Tensor::zeros(&self.input_shape);
        let scale = 1.0 / (h * w) as f32;
        let gi = grad_input.data_mut();
        for b in 0..batch {
            for ci in 0..c {
                let g = grad_output.data()[b * c + ci] * scale;
                let base = (b * c + ci) * h * w;
                for v in &mut gi[base..base + h * w] {
                    *v = g;
                }
            }
        }
        grad_input
    }
}

/// Flattens `[b, ...] -> [b, prod(...)]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            self.input_shape = input.shape().to_vec();
        }
        input.reshape(&[batch, rest]).expect("flatten reshape")
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output
            .reshape(&self.input_shape)
            .expect("flatten backward without matching forward")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Central-difference gradient check for a layer's input gradient.
    fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        // Loss = sum of outputs; dLoss/dOut = ones.
        let ones = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
        let grad = layer.backward(&ones);

        let eps = 1e-2f32;
        let mut rng = StdRng::seed_from_u64(123);
        // Probe a handful of random coordinates.
        for _ in 0..10 {
            let idx = rng.gen_range(0..input.len());
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let f_plus: f32 = layer.forward(&plus, false).data().iter().sum();
            let f_minus: f32 = layer.forward(&minus, false).data().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = grad.data()[idx];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Gradient check for parameters via visit_params.
    fn check_param_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        layer.zero_grad();
        let out = layer.forward(input, true);
        let ones = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
        layer.backward(&ones);

        // Collect analytic grads (copy out).
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |_, g| analytic.push(g.to_vec()));

        let eps = 1e-2f32;
        for (buf_idx, grads) in analytic.iter().enumerate() {
            // Probe first/last/middle coordinates of each buffer.
            let probes: Vec<usize> = [0, grads.len() / 2, grads.len().saturating_sub(1)]
                .into_iter()
                .collect();
            for &pi in probes.iter() {
                // Perturb +eps
                let mut k = 0;
                layer.visit_params(&mut |p, _| {
                    if k == buf_idx {
                        p[pi] += eps;
                    }
                    k += 1;
                });
                let f_plus: f32 = layer.forward(input, false).data().iter().sum();
                let mut k = 0;
                layer.visit_params(&mut |p, _| {
                    if k == buf_idx {
                        p[pi] -= 2.0 * eps;
                    }
                    k += 1;
                });
                let f_minus: f32 = layer.forward(input, false).data().iter().sum();
                let mut k = 0;
                layer.visit_params(&mut |p, _| {
                    if k == buf_idx {
                        p[pi] += eps;
                    }
                    k += 1;
                });
                let numeric = (f_plus - f_minus) / (2.0 * eps);
                let a = grads[pi];
                assert!(
                    (numeric - a).abs() <= tol * (1.0 + numeric.abs()),
                    "param grad mismatch buffer {buf_idx} index {pi}: \
                     numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    fn random_tensor(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.iter().product::<usize>())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(data, shape).unwrap()
    }

    #[test]
    fn dense_forward_known() {
        let mut d = Dense::new(2, 2, 0);
        d.set_params(
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
        );
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(&x, false);
        // y = [1+2+0.5, 3+4-0.5]
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn dense_gradients() {
        let mut d = Dense::new(3, 4, 7);
        let x = random_tensor(&[2, 3], 1);
        check_input_gradient(&mut d, &x, 2e-2);
        check_param_gradient(&mut d, &x, 2e-2);
    }

    #[test]
    fn dense_grad_accumulates_until_zeroed() {
        let mut d = Dense::new(2, 2, 0);
        let x = random_tensor(&[1, 2], 2);
        let y = d.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        d.backward(&ones);
        let mut first = Vec::new();
        d.visit_params(&mut |_, g| first.push(g.to_vec()));

        let y = d.forward(&x, true);
        let ones = Tensor::from_vec(vec![1.0; y.len()], y.shape()).unwrap();
        d.backward(&ones);
        let mut second = Vec::new();
        d.visit_params(&mut |_, g| second.push(g.to_vec()));
        for (a, b) in first.iter().zip(&second) {
            for (x1, x2) in a.iter().zip(b) {
                assert!((2.0 * x1 - x2).abs() < 1e-5, "grads must accumulate");
            }
        }

        d.zero_grad();
        let mut zeroed = Vec::new();
        d.visit_params(&mut |_, g| zeroed.push(g.to_vec()));
        assert!(zeroed.iter().flatten().all(|&g| g == 0.0));
    }

    #[test]
    fn conv_output_shape() {
        let c = Conv2d::new(3, 8, 3, 1, 1, 0);
        assert_eq!(c.output_hw(12, 12), (12, 12));
        let c = Conv2d::new(3, 8, 3, 2, 1, 0);
        assert_eq!(c.output_hw(12, 12), (6, 6));
        assert_eq!(c.in_channels(), 3);
        assert_eq!(c.out_channels(), 8);
    }

    #[test]
    fn conv_forward_identity_kernel() {
        // A 1x1 kernel with weight 1 reproduces the input channel.
        let mut c = Conv2d::new(1, 1, 1, 1, 0, 0);
        c.set_params(
            Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]).unwrap(),
            Tensor::zeros(&[1]),
        );
        let x = random_tensor(&[1, 1, 4, 4], 3);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_forward_known_sum_kernel() {
        // 3x3 all-ones kernel over a constant image of 1s with padding 1:
        // interior outputs are 9, corners 4, edges 6.
        let mut c = Conv2d::new(1, 1, 3, 1, 1, 0);
        c.set_params(
            Tensor::from_vec(vec![1.0; 9], &[1, 1, 3, 3]).unwrap(),
            Tensor::zeros(&[1]),
        );
        let x = Tensor::from_vec(vec![1.0; 16], &[1, 1, 4, 4]).unwrap();
        let y = c.forward(&x, false);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
    }

    #[test]
    fn conv_gradients() {
        let mut c = Conv2d::new(2, 3, 3, 1, 1, 11);
        let x = random_tensor(&[2, 2, 5, 5], 4);
        check_input_gradient(&mut c, &x, 3e-2);
        check_param_gradient(&mut c, &x, 3e-2);
    }

    #[test]
    fn conv_gradients_strided_unpadded() {
        let mut c = Conv2d::new(1, 2, 3, 2, 0, 13);
        let x = random_tensor(&[1, 1, 7, 7], 5);
        check_input_gradient(&mut c, &x, 3e-2);
        check_param_gradient(&mut c, &x, 3e-2);
    }

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap());
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, -1.0, 0.0, 0.5,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 8.0, 0.0, 1.0]);
        let g = p.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 1, 2, 2]).unwrap());
        // Gradient lands exactly on the argmax positions.
        assert_eq!(g.at(&[0, 0, 1, 1]), 1.0); // the 4.0
        assert_eq!(g.at(&[0, 0, 1, 3]), 1.0); // the 8.0
        assert_eq!(g.at(&[0, 0, 2, 2]), 1.0); // the 1.0
        assert_eq!(g.at(&[0, 0, 0, 0]), 0.0);
        let total: f32 = g.data().iter().sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn global_avg_pool() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let g = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap());
        assert!(g.data()[..4].iter().all(|&v| v == 1.0));
        assert!(g.data()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = random_tensor(&[2, 3, 2, 2], 6);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }
}

//! Edge-shape coverage for the amortized batch solver: the shapes a
//! workload driver can legitimately produce but a benchmark never
//! exercises — empty panels, single samples, and panels long enough to
//! roll past the warm-start adjustment cap.

use xbar::{ConductanceMatrix, CrossbarCircuit, CrossbarParams, SolverCache};

const SIZE: usize = 8;

fn fixture() -> (CrossbarParams, CrossbarCircuit) {
    let params = CrossbarParams::builder(SIZE, SIZE).build().unwrap();
    let mut g = ConductanceMatrix::uniform(SIZE, SIZE, params.g_off());
    let span = params.g_on() - params.g_off();
    for i in 0..SIZE {
        for j in 0..SIZE {
            let level = ((i * SIZE + j) % 7) as f64 / 6.0;
            g.set(i, j, params.g_off() + span * level);
        }
    }
    let circuit = CrossbarCircuit::new(&params, &g).unwrap();
    (params, circuit)
}

/// Deterministic stimulus panel: sample s perturbs sample s-1, the
/// correlated regime warm-starting targets.
fn panel(params: &CrossbarParams, samples: usize) -> Vec<f64> {
    let mut volts = vec![0.0f64; samples * SIZE];
    for i in 0..SIZE {
        volts[i] = params.v_supply * (0.2 + 0.6 * (i as f64 / SIZE as f64));
    }
    for s in 1..samples {
        for i in 0..SIZE {
            let prev = volts[(s - 1) * SIZE + i];
            let jitter = 0.05 * params.v_supply * ((((s * SIZE + i) % 11) as f64 / 10.0) - 0.5);
            volts[s * SIZE + i] = (prev + jitter).clamp(0.0, params.v_supply);
        }
    }
    volts
}

#[test]
fn empty_panel_is_a_no_op() {
    let (_, circuit) = fixture();
    let mut cache = SolverCache::for_circuit(&circuit);
    let reports = circuit.solve_batch(&[], 0, &mut cache).unwrap();
    assert!(reports.is_empty());
    assert!(cache.warm_start().is_none(), "no sample, no warm state");
}

#[test]
fn one_sample_panel_matches_solve_amortized() {
    let (params, circuit) = fixture();
    let volts = panel(&params, 1);
    let mut batch_cache = SolverCache::for_circuit(&circuit);
    let batch = circuit.solve_batch(&volts, 1, &mut batch_cache).unwrap();
    assert_eq!(batch.len(), 1);
    let mut single_cache = SolverCache::for_circuit(&circuit);
    let single = circuit.solve_amortized(&volts, &mut single_cache).unwrap();
    // Identical cache state in, identical deterministic solve out.
    assert_eq!(batch[0].currents, single.currents);
}

#[test]
fn panel_longer_than_the_adjustment_cap_stays_within_contract() {
    // 40 correlated samples roll well past the warm-start residual
    // adjustment cap (32), forcing at least one mid-panel fresh
    // re-evaluation; every sample must still match its cold solve
    // within the amortized-path agreement contract (DESIGN.md §15).
    let (params, circuit) = fixture();
    let samples = 40;
    let volts = panel(&params, samples);
    let mut cache = SolverCache::for_circuit(&circuit);
    let reports = circuit.solve_batch(&volts, samples, &mut cache).unwrap();
    assert_eq!(reports.len(), samples);
    for (s, (v, warm)) in volts.chunks_exact(SIZE).zip(&reports).enumerate() {
        let cold = circuit.solve(v).unwrap();
        for (a, b) in warm.currents.iter().zip(&cold.currents) {
            assert!(
                (a - b).abs() <= 1e-6 * b.abs() + 1e-10,
                "sample {s}: warm {a} vs cold {b}"
            );
        }
    }
    assert!(
        reports.iter().skip(1).all(|r| r.warm_start),
        "every sample after the first must warm-start"
    );
}

#[test]
fn mismatched_panel_shape_is_rejected() {
    let (params, circuit) = fixture();
    let volts = panel(&params, 2);
    let mut cache = SolverCache::for_circuit(&circuit);
    // 2 samples' worth of voltages declared as 3 samples.
    assert!(circuit.solve_batch(&volts, 3, &mut cache).is_err());
    // Truncated panel.
    assert!(circuit
        .solve_batch(&volts[..volts.len() - 1], 2, &mut cache)
        .is_err());
}

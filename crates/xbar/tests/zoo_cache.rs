//! Regression coverage: the `SolverCache` content key is derived from
//! the *post-non-ideality* conductances, never the programmed target.
//! Two tiles sharing a target but differing in drift time are
//! different circuits and must not share a frozen-Jacobian
//! factorization — while genuinely identical drifted tiles must.

use std::sync::Arc;
use xbar::zoo::{ConductanceDrift, NonIdealityStack};
use xbar::{ConductanceMatrix, CrossbarCircuit, CrossbarParams, SolverCache};

const SIZE: usize = 8;

fn target(params: &CrossbarParams) -> ConductanceMatrix {
    let span = params.g_on() - params.g_off();
    let mut g = ConductanceMatrix::uniform(SIZE, SIZE, params.g_off());
    for i in 0..SIZE {
        for j in 0..SIZE {
            let level = ((i + 2 * j) % 5) as f64 / 4.0;
            g.set(i, j, params.g_off() + span * level);
        }
    }
    g
}

fn drifted_circuit(params: &CrossbarParams, t: f64) -> CrossbarCircuit {
    let stack = NonIdealityStack::new(7)
        .with_model(Box::new(ConductanceDrift {
            t,
            t0: 1.0,
            nu: 0.05,
        }))
        .unwrap();
    let g = stack.program(params, &target(params), 0).unwrap();
    CrossbarCircuit::new(params, &g).unwrap()
}

#[test]
fn different_drift_times_never_share_a_factorization() {
    let params = CrossbarParams::builder(SIZE, SIZE).build().unwrap();
    let fresh = drifted_circuit(&params, 1.0); // t == t0: identity drift
    let aged = drifted_circuit(&params, 1e5);
    assert_ne!(
        fresh.solver_key(),
        aged.solver_key(),
        "identical targets at different drift times must key differently"
    );
    let fresh_cache = SolverCache::for_circuit(&fresh);
    let aged_cache = SolverCache::for_circuit(&aged);
    assert!(
        !Arc::ptr_eq(fresh_cache.factorization(), aged_cache.factorization()),
        "drifted tile reused the undrifted tile's factorization"
    );
    // And the solves really differ: the aged tile conducts less.
    let v = vec![params.v_supply; SIZE];
    let mut fc = fresh_cache;
    let mut ac = aged_cache;
    let i_fresh = fresh.solve_amortized(&v, &mut fc).unwrap().currents;
    let i_aged = aged.solve_amortized(&v, &mut ac).unwrap().currents;
    for (f, a) in i_fresh.iter().zip(&i_aged) {
        assert!(a < f, "aged current {a} must sit below fresh {f}");
    }
}

#[test]
fn identical_drifted_tiles_do_share_a_factorization() {
    let params = CrossbarParams::builder(SIZE, SIZE).build().unwrap();
    let a = drifted_circuit(&params, 1e4);
    let b = drifted_circuit(&params, 1e4);
    assert_eq!(a.solver_key(), b.solver_key());
    let ca = SolverCache::for_circuit(&a);
    let cb = SolverCache::for_circuit(&b);
    assert!(
        Arc::ptr_eq(ca.factorization(), cb.factorization()),
        "same post-drift conductances must hit the process-wide registry"
    );
}

#[test]
fn identity_drift_shares_with_the_raw_target() {
    let params = CrossbarParams::builder(SIZE, SIZE).build().unwrap();
    let through_zoo = drifted_circuit(&params, 1.0);
    let raw = CrossbarCircuit::new(&params, &target(&params)).unwrap();
    assert_eq!(
        through_zoo.solver_key(),
        raw.solver_key(),
        "identity drift must not perturb the content key"
    );
}

//! The non-ideality factor (NF) metric and its summary statistics.
//!
//! Section 3 of the paper defines, per bit-line,
//!
//! ```text
//! NF = (I_ideal - I_non_ideal) / I_ideal
//! ```
//!
//! NF ≈ 0 means the column behaved ideally; NF > 0 means parasitics
//! lost current; NF < 0 means the sinh non-linearity *boosted* current
//! past ideal (observed at high supply voltage and extreme sparsity —
//! the effect behind the 1-bit/1-bit anomaly of Fig. 9).

/// Per-column non-ideality factors for one MVM.
///
/// Columns whose ideal current is (numerically) zero are skipped: NF is
/// undefined there, and bit-sliced workloads produce many all-zero
/// columns.
pub fn non_ideality_factors(i_ideal: &[f64], i_non_ideal: &[f64]) -> Vec<f64> {
    assert_eq!(
        i_ideal.len(),
        i_non_ideal.len(),
        "nf: current vectors must have equal length"
    );
    i_ideal
        .iter()
        .zip(i_non_ideal)
        .filter(|(id, _)| id.abs() > 1e-18)
        .map(|(id, ni)| (id - ni) / id)
        .collect()
}

/// Five-number summary (plus mean and RMS) of an NF sample — the
/// statistics behind the paper's box plots (Fig. 2 b–d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfSummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Root mean square (used for the paper's RMSE comparisons when
    /// applied to NF *errors*).
    pub rms: f64,
}

impl NfSummary {
    /// Summarizes a sample of NF values.
    ///
    /// Returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("nf samples must not be NaN"));
        let n = sorted.len();
        let quantile = |q: f64| -> f64 {
            if n == 1 {
                return sorted[0];
            }
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let rms = (sorted.iter().map(|x| x * x).sum::<f64>() / n as f64).sqrt();
        Some(NfSummary {
            count: n,
            min: sorted[0],
            q1: quantile(0.25),
            median: quantile(0.5),
            q3: quantile(0.75),
            max: sorted[n - 1],
            mean,
            rms,
        })
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Root-mean-square error between a model's NF predictions and the
/// reference (circuit-solver) NF values — the paper's Fig. 5 metric.
///
/// Both slices must pair up one-to-one (same columns, same order).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nf_rmse(nf_reference: &[f64], nf_model: &[f64]) -> f64 {
    assert_eq!(
        nf_reference.len(),
        nf_model.len(),
        "nf_rmse: sample count mismatch"
    );
    if nf_reference.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = nf_reference
        .iter()
        .zip(nf_model)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    (sum_sq / nf_reference.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nf_basic() {
        let nf = non_ideality_factors(&[1.0, 2.0], &[0.9, 1.0]);
        assert!((nf[0] - 0.1).abs() < 1e-12);
        assert!((nf[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nf_skips_zero_ideal_columns() {
        let nf = non_ideality_factors(&[0.0, 1.0], &[0.1, 0.5]);
        assert_eq!(nf.len(), 1);
        assert!((nf[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nf_negative_when_boosted() {
        let nf = non_ideality_factors(&[1.0], &[1.2]);
        assert!(nf[0] < 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = NfSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert!((s.iqr() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = NfSummary::from_samples(&[0.7]).unwrap();
        assert_eq!(s.min, 0.7);
        assert_eq!(s.q1, 0.7);
        assert_eq!(s.median, 0.7);
        assert_eq!(s.max, 0.7);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(NfSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn rmse_of_identical_is_zero() {
        assert_eq!(nf_rmse(&[0.1, 0.2], &[0.1, 0.2]), 0.0);
        assert_eq!(nf_rmse(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_known() {
        // errors 0.3 and 0.4 -> rms = 0.35355...
        let r = nf_rmse(&[1.0, 1.0], &[0.7, 0.6]);
        assert!((r - (0.125f64).sqrt()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn summary_invariants(samples in proptest::collection::vec(-2.0f64..2.0, 1..64)) {
            let s = NfSummary::from_samples(&samples).unwrap();
            prop_assert!(s.min <= s.q1);
            prop_assert!(s.q1 <= s.median);
            prop_assert!(s.median <= s.q3);
            prop_assert!(s.q3 <= s.max);
            prop_assert!(s.mean >= s.min && s.mean <= s.max);
            prop_assert!(s.rms >= 0.0);
            prop_assert_eq!(s.count, samples.len());
        }

        #[test]
        fn nf_zero_iff_ideal(currents in proptest::collection::vec(1e-9f64..1e-3, 1..32)) {
            let nf = non_ideality_factors(&currents, &currents);
            prop_assert!(nf.iter().all(|x| x.abs() < 1e-12));
        }
    }
}

use std::fmt;

/// Errors produced by the crossbar circuit simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XbarError {
    /// Invalid design or device parameter (message explains which).
    InvalidParameter(String),
    /// Operand shapes don't match the crossbar dimensions.
    Shape(String),
    /// The Newton solve failed to converge.
    NewtonDiverged {
        iterations: usize,
        residual_norm: f64,
    },
    /// An underlying linear-algebra kernel failed.
    Numerical(String),
    /// An input voltage or conductance was NaN/inf or outside its
    /// physical range.
    OutOfRange(String),
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            XbarError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            XbarError::NewtonDiverged {
                iterations,
                residual_norm,
            } => write!(
                f,
                "newton iteration diverged after {iterations} steps \
                 (residual {residual_norm:.3e})"
            ),
            XbarError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            XbarError::OutOfRange(msg) => write!(f, "value out of range: {msg}"),
        }
    }
}

impl std::error::Error for XbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = XbarError::NewtonDiverged {
            iterations: 3,
            residual_norm: 1.5,
        };
        assert!(e.to_string().contains("3 steps"));
        assert!(XbarError::Shape("x".into()).to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XbarError>();
    }
}

//! The pluggable non-ideality zoo.
//!
//! GENIEx's thesis is generalization across *many* non-ideality
//! regimes; the fixed menu in [`crate::variation`] (one fused
//! lognormal + stuck-at pass) does not compose and cannot express
//! effects that act at other points of a tile's lifetime. This module
//! factors every imperfection into a [`NonIdeality`] — a pluggable,
//! seeded transform with a declared lifecycle [`Stage`]:
//!
//! * **Programming-time** — applied once when a target conductance
//!   pattern is written: [`LognormalSpread`], [`StuckAtFaults`], and
//!   [`LegacyVariation`] (the bit-exact migration of the old fused
//!   pass).
//! * **Time-dependent** — applied to the programmed state as a
//!   function of elapsed time: [`ConductanceDrift`],
//!   `g(t) = g0 · (t/t0)^{-ν}`.
//! * **Read-time** — applied per MVM evaluation: [`ReadNoise`].
//!
//! Models compose through a [`NonIdealityStack`], which applies them
//! in lifecycle order (programming, then time-dependent at
//! [`NonIdealityStack::program`]; read-time at
//! [`NonIdealityStack::read`]).
//!
//! # Seeding
//!
//! Every stochastic model draws from its own [`ModelRng`] sub-stream,
//! derived from `(stack seed XOR fnv1a64(model name), case index)` —
//! the same SplitMix64 scheme `conformance::case_rng` uses to
//! de-correlate laws. Because streams are keyed by *name*, adding or
//! removing one model never perturbs another model's draws (the old
//! fused pass interleaved all draws on one stream, so enabling
//! stuck-at faults shifted every spread sample). The case index is
//! the tile number for programming-stage models and a `(tile, sample)`
//! mix for read-stage models, so tiles can be programmed in parallel
//! in any order with bit-identical results.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), xbar::XbarError> {
//! use xbar::zoo::{ConductanceDrift, LognormalSpread, NonIdealityStack};
//! use xbar::{ConductanceMatrix, CrossbarParams};
//!
//! let params = CrossbarParams::builder(8, 8).build()?;
//! let stack = NonIdealityStack::new(42)
//!     .with_model(Box::new(LognormalSpread { sigma: 0.1 }))?
//!     .with_model(Box::new(ConductanceDrift { t: 1e3, t0: 1.0, nu: 0.05 }))?;
//! let target = ConductanceMatrix::uniform(8, 8, params.g_on() * 0.5);
//! let programmed = stack.program(&params, &target, 0)?;
//! assert_ne!(programmed, target);
//! # Ok(())
//! # }
//! ```

use crate::conductance::ConductanceMatrix;
use crate::params::CrossbarParams;
use crate::variation::{apply_variations, VariationConfig};
use crate::XbarError;

/// Lifecycle stage at which a non-ideality acts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Applied once when the target pattern is written to the tile.
    Programming,
    /// Applied to the programmed state as a function of elapsed time.
    TimeDependent,
    /// Applied to the output currents of every MVM evaluation.
    ReadTime,
}

impl Stage {
    /// Stable lowercase tag used in reports and manifests.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Programming => "programming",
            Stage::TimeDependent => "time-dependent",
            Stage::ReadTime => "read-time",
        }
    }
}

/// FNV-1a hash of a byte string — the same stream-keying hash the
/// in-tree `proptest` crate and `conformance::case_rng` use.
/// Duplicated here (15 lines) rather than pulling the test-strategy
/// crate into `xbar`'s production dependency set.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic SplitMix64 sub-stream private to one model.
///
/// Construction mirrors `conformance::case_rng`: the stack seed is
/// XORed with an FNV-1a hash of the model name (so differently named
/// models see de-correlated streams under the same seed), run through
/// one SplitMix64 round (so structurally close seeds land far apart),
/// and mixed with the case index.
#[derive(Debug, Clone)]
pub struct ModelRng {
    state: u64,
}

impl ModelRng {
    /// The generator for `case` of the model named `name` under
    /// `seed`. For programming-stage models the case is the tile
    /// index; read-stage models mix tile and sample into one case.
    pub fn for_model(seed: u64, name: &str, case: u64) -> Self {
        let mut z = (seed ^ fnv1a64(name.as_bytes())).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ModelRng {
            state: 0xA076_1D64_78BD_642F ^ z ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // `1 - u` maps [0, 1) onto (0, 1] so the log never sees zero.
        let u1 = 1.0 - self.unit_f64();
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Context for one programming/time-stage application.
#[derive(Debug, Clone, Copy)]
pub struct ProgramCtx {
    /// The stack seed every model's sub-stream derives from.
    pub seed: u64,
    /// Index of the tile being programmed.
    pub tile: u64,
}

impl ProgramCtx {
    /// The per-model generator for this tile.
    pub fn rng(&self, model: &str) -> ModelRng {
        ModelRng::for_model(self.seed, model, self.tile)
    }
}

/// Context for one read-stage application (a single MVM sample).
#[derive(Debug, Clone, Copy)]
pub struct ReadCtx {
    /// The stack seed every model's sub-stream derives from.
    pub seed: u64,
    /// Index of the tile being read.
    pub tile: u64,
    /// Monotone per-tile sample counter, so a batch of n MVMs draws
    /// the same noise as n single MVMs issued in the same order.
    pub sample: u64,
}

impl ReadCtx {
    /// The per-model generator for this `(tile, sample)` pair.
    pub fn rng(&self, model: &str) -> ModelRng {
        let case = self
            .sample
            .wrapping_add(self.tile.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ModelRng::for_model(self.seed, model, case)
    }
}

/// One pluggable imperfection model.
///
/// Implementations act at exactly one [`Stage`]: conductance-state
/// stages override [`NonIdeality::apply_conductance`], the read stage
/// overrides [`NonIdeality::apply_read`]; the other hook keeps its
/// no-op default. Models must be deterministic functions of their
/// configuration and the context — all randomness comes from the
/// context-derived [`ModelRng`].
pub trait NonIdeality: Send + Sync {
    /// Unique short name. It keys the model's RNG sub-stream, so two
    /// models with the same name would draw correlated values — the
    /// stack rejects duplicates.
    fn name(&self) -> &'static str;

    /// The lifecycle stage this model acts at.
    fn stage(&self) -> Stage;

    /// Scalar strength: 0 must mean the identity transform, and the
    /// monotone-degradation conformance laws sweep it upward.
    fn strength(&self) -> f64;

    /// True if applying this model changes nothing. The stack skips
    /// identity models entirely, making zero strength *exact*
    /// bit-identity by construction.
    fn is_identity(&self) -> bool {
        self.strength() == 0.0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] describing the first
    /// out-of-range field.
    fn validate(&self) -> Result<(), XbarError> {
        Ok(())
    }

    /// Transforms the conductance state in place (programming and
    /// time-dependent stages).
    ///
    /// # Errors
    ///
    /// Implementations propagate configuration or numeric failures.
    fn apply_conductance(
        &self,
        _params: &CrossbarParams,
        _g: &mut ConductanceMatrix,
        _ctx: &ProgramCtx,
    ) -> Result<(), XbarError> {
        Ok(())
    }

    /// Perturbs one MVM's output currents in place (read stage).
    ///
    /// # Errors
    ///
    /// Implementations propagate configuration or numeric failures.
    fn apply_read(
        &self,
        _params: &CrossbarParams,
        _currents: &mut [f64],
        _ctx: &ReadCtx,
    ) -> Result<(), XbarError> {
        Ok(())
    }
}

/// Lognormal programming spread: `g' = clamp(g · exp(σ·z), 0, g_on)`,
/// one standard-normal `z` per cell from the model's own sub-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LognormalSpread {
    /// Sigma of the lognormal spread (0 disables).
    pub sigma: f64,
}

impl NonIdeality for LognormalSpread {
    fn name(&self) -> &'static str {
        "lognormal"
    }

    fn stage(&self) -> Stage {
        Stage::Programming
    }

    fn strength(&self) -> f64 {
        self.sigma
    }

    fn validate(&self) -> Result<(), XbarError> {
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(XbarError::InvalidParameter(format!(
                "lognormal sigma must be >= 0, got {}",
                self.sigma
            )));
        }
        Ok(())
    }

    fn apply_conductance(
        &self,
        params: &CrossbarParams,
        g: &mut ConductanceMatrix,
        ctx: &ProgramCtx,
    ) -> Result<(), XbarError> {
        if self.is_identity() {
            return Ok(());
        }
        let mut rng = ctx.rng(self.name());
        let g_on = params.g_on();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let z = rng.standard_normal();
                let spread = (g.get(i, j) * (self.sigma * z).exp()).clamp(0.0, g_on);
                g.set(i, j, spread);
            }
        }
        Ok(())
    }
}

/// Stuck-at faults: each cell is independently stuck at `g_off`
/// (open filament) or `g_on` (shorted cell), one uniform roll per
/// cell from the model's own sub-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckAtFaults {
    /// Probability a device is stuck at `g_off`.
    pub stuck_off_rate: f64,
    /// Probability a device is stuck at `g_on`.
    pub stuck_on_rate: f64,
}

impl NonIdeality for StuckAtFaults {
    fn name(&self) -> &'static str {
        "stuck_at"
    }

    fn stage(&self) -> Stage {
        Stage::Programming
    }

    fn strength(&self) -> f64 {
        self.stuck_off_rate + self.stuck_on_rate
    }

    fn validate(&self) -> Result<(), XbarError> {
        for (name, r) in [
            ("stuck_off_rate", self.stuck_off_rate),
            ("stuck_on_rate", self.stuck_on_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(XbarError::InvalidParameter(format!(
                    "{name} must be in [0, 1], got {r}"
                )));
            }
        }
        if self.stuck_off_rate + self.stuck_on_rate > 1.0 {
            return Err(XbarError::InvalidParameter(
                "stuck_off_rate + stuck_on_rate must not exceed 1".into(),
            ));
        }
        Ok(())
    }

    fn apply_conductance(
        &self,
        params: &CrossbarParams,
        g: &mut ConductanceMatrix,
        ctx: &ProgramCtx,
    ) -> Result<(), XbarError> {
        if self.is_identity() {
            return Ok(());
        }
        let mut rng = ctx.rng(self.name());
        let (g_on, g_off) = (params.g_on(), params.g_off());
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let roll = rng.unit_f64();
                if roll < self.stuck_off_rate {
                    g.set(i, j, g_off);
                } else if roll < self.stuck_off_rate + self.stuck_on_rate {
                    g.set(i, j, g_on);
                }
            }
        }
        Ok(())
    }
}

/// Conductance drift: `g(t) = g0 · (t/t0)^{-ν}` — the standard
/// power-law retention model for filamentary RRAM. Deterministic (no
/// draws): drift is a property of elapsed time, not of a defect map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConductanceDrift {
    /// Elapsed time since programming (same unit as `t0`).
    pub t: f64,
    /// Reference time at which `g(t0) = g0` (typically 1 second).
    pub t0: f64,
    /// Drift exponent ν (0 disables).
    pub nu: f64,
}

impl ConductanceDrift {
    /// The multiplicative attenuation `(t/t0)^{-ν}` this model applies.
    pub fn factor(&self) -> f64 {
        (self.t / self.t0).powf(-self.nu)
    }
}

impl NonIdeality for ConductanceDrift {
    fn name(&self) -> &'static str {
        "drift"
    }

    fn stage(&self) -> Stage {
        Stage::TimeDependent
    }

    fn strength(&self) -> f64 {
        // The log-attenuation ν·ln(t/t0): 0 exactly when ν = 0 or
        // t = t0, and monotone in both ν and t.
        self.nu * (self.t / self.t0).ln()
    }

    fn validate(&self) -> Result<(), XbarError> {
        if !self.t0.is_finite() || self.t0 <= 0.0 {
            return Err(XbarError::InvalidParameter(format!(
                "drift t0 must be > 0, got {}",
                self.t0
            )));
        }
        if !self.t.is_finite() || self.t < self.t0 {
            return Err(XbarError::InvalidParameter(format!(
                "drift t must be >= t0 ({}), got {}",
                self.t0, self.t
            )));
        }
        if !self.nu.is_finite() || self.nu < 0.0 {
            return Err(XbarError::InvalidParameter(format!(
                "drift nu must be >= 0, got {}",
                self.nu
            )));
        }
        Ok(())
    }

    fn apply_conductance(
        &self,
        _params: &CrossbarParams,
        g: &mut ConductanceMatrix,
        _ctx: &ProgramCtx,
    ) -> Result<(), XbarError> {
        if self.is_identity() {
            return Ok(());
        }
        // t >= t0 and nu >= 0, so the factor is in (0, 1] and the
        // physical range needs no re-clamping.
        let factor = self.factor();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                g.set(i, j, g.get(i, j) * factor);
            }
        }
        Ok(())
    }
}

/// Per-MVM read noise: `i' = i · (1 + σ·z)`, one standard-normal `z`
/// per output current per evaluation. The `(tile, sample)`-keyed
/// sub-stream makes a batch of n MVMs draw exactly the noise n
/// single MVMs would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadNoise {
    /// Relative noise sigma (0 disables).
    pub sigma: f64,
}

impl NonIdeality for ReadNoise {
    fn name(&self) -> &'static str {
        "read_noise"
    }

    fn stage(&self) -> Stage {
        Stage::ReadTime
    }

    fn strength(&self) -> f64 {
        self.sigma
    }

    fn validate(&self) -> Result<(), XbarError> {
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(XbarError::InvalidParameter(format!(
                "read noise sigma must be >= 0, got {}",
                self.sigma
            )));
        }
        Ok(())
    }

    fn apply_read(
        &self,
        _params: &CrossbarParams,
        currents: &mut [f64],
        ctx: &ReadCtx,
    ) -> Result<(), XbarError> {
        if self.is_identity() {
            return Ok(());
        }
        let mut rng = ctx.rng(self.name());
        for i in currents.iter_mut() {
            *i *= 1.0 + self.sigma * rng.standard_normal();
        }
        Ok(())
    }
}

/// The migrated fused variation pass: bit-for-bit the transform
/// [`apply_variations`] has always produced, wrapped as a trait model
/// so existing `VariationConfig`-based call sites keep their exact
/// outputs through the zoo.
///
/// Unlike the split-stream models above, this one reproduces the
/// pre-zoo RNG scheme: a single `StdRng` stream seeded from
/// `config.seed + tile`, drawing one fault roll and one spread sample
/// per cell regardless of which effects are enabled. New code should
/// compose [`LognormalSpread`] and [`StuckAtFaults`] instead, whose
/// independent sub-streams don't perturb each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegacyVariation {
    /// The fused-pass configuration (carries its own seed).
    pub config: VariationConfig,
}

impl NonIdeality for LegacyVariation {
    fn name(&self) -> &'static str {
        "variation"
    }

    fn stage(&self) -> Stage {
        Stage::Programming
    }

    fn strength(&self) -> f64 {
        self.config.conductance_sigma + self.config.stuck_off_rate + self.config.stuck_on_rate
    }

    fn validate(&self) -> Result<(), XbarError> {
        self.config.validate()
    }

    fn apply_conductance(
        &self,
        params: &CrossbarParams,
        g: &mut ConductanceMatrix,
        ctx: &ProgramCtx,
    ) -> Result<(), XbarError> {
        // Per-tile seed advance matches the pre-zoo funcsim
        // VariationEngine (base seed + tile counter); the stack seed
        // is deliberately ignored so outputs stay bit-identical to
        // the pre-refactor path.
        let config = VariationConfig {
            seed: self.config.seed.wrapping_add(ctx.tile),
            ..self.config
        };
        *g = apply_variations(params, g, &config)?;
        Ok(())
    }
}

/// A seeded, ordered collection of non-ideality models.
///
/// [`NonIdealityStack::program`] applies the programming-stage models
/// (in push order), then the time-dependent ones;
/// [`NonIdealityStack::read`] applies the read-stage models to one
/// MVM's output currents. Identity models are skipped outright, so
/// zero strength is exact.
pub struct NonIdealityStack {
    seed: u64,
    models: Vec<Box<dyn NonIdeality>>,
}

impl NonIdealityStack {
    /// An empty stack under `seed`.
    pub fn new(seed: u64) -> Self {
        NonIdealityStack {
            seed,
            models: Vec::new(),
        }
    }

    /// The bit-exact migration of a [`VariationConfig`]: a stack
    /// holding one [`LegacyVariation`] model.
    ///
    /// # Errors
    ///
    /// Propagates [`VariationConfig::validate`] failures.
    pub fn from_variation(config: &VariationConfig) -> Result<Self, XbarError> {
        NonIdealityStack::new(config.seed).with_model(Box::new(LegacyVariation { config: *config }))
    }

    /// Adds a model, builder style.
    ///
    /// # Errors
    ///
    /// As [`NonIdealityStack::push`].
    pub fn with_model(mut self, model: Box<dyn NonIdeality>) -> Result<Self, XbarError> {
        self.push(model)?;
        Ok(self)
    }

    /// Adds a model after validating it.
    ///
    /// # Errors
    ///
    /// Propagates the model's [`NonIdeality::validate`] failure, and
    /// rejects a name already in the stack ([`XbarError::InvalidParameter`]):
    /// duplicate names would share one RNG sub-stream and draw
    /// correlated values.
    pub fn push(&mut self, model: Box<dyn NonIdeality>) -> Result<(), XbarError> {
        model.validate()?;
        if self.models.iter().any(|m| m.name() == model.name()) {
            return Err(XbarError::InvalidParameter(format!(
                "duplicate non-ideality model '{}' in stack",
                model.name()
            )));
        }
        self.models.push(model);
        Ok(())
    }

    /// The stack seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The registered models, in push order.
    pub fn models(&self) -> &[Box<dyn NonIdeality>] {
        &self.models
    }

    /// True when no model changes anything.
    pub fn is_identity(&self) -> bool {
        self.models.iter().all(|m| m.is_identity())
    }

    /// True when a non-identity read-stage model is present (callers
    /// can then skip per-MVM plumbing entirely).
    pub fn has_read_stage(&self) -> bool {
        self.models
            .iter()
            .any(|m| m.stage() == Stage::ReadTime && !m.is_identity())
    }

    /// Applies the conductance-state stages to a target pattern for
    /// tile `tile`, returning the imperfect programmed state.
    /// Programming-stage models run first (push order), then
    /// time-dependent ones — faults are written before the state
    /// ages.
    ///
    /// # Errors
    ///
    /// * [`XbarError::Shape`] if `target` does not match `params`.
    /// * Propagates model application failures.
    pub fn program(
        &self,
        params: &CrossbarParams,
        target: &ConductanceMatrix,
        tile: u64,
    ) -> Result<ConductanceMatrix, XbarError> {
        if target.rows() != params.rows || target.cols() != params.cols {
            return Err(XbarError::Shape(format!(
                "conductance matrix is {}x{} but crossbar is {}x{}",
                target.rows(),
                target.cols(),
                params.rows,
                params.cols
            )));
        }
        let ctx = ProgramCtx {
            seed: self.seed,
            tile,
        };
        let mut out = target.clone();
        for stage in [Stage::Programming, Stage::TimeDependent] {
            for model in &self.models {
                if model.stage() == stage && !model.is_identity() {
                    model.apply_conductance(params, &mut out, &ctx)?;
                }
            }
        }
        Ok(out)
    }

    /// Applies the read-stage models to one MVM's output currents.
    /// `sample` must advance monotonically per tile (a batch of n
    /// consumes n indices), so batched and single evaluations draw
    /// identical noise.
    ///
    /// # Errors
    ///
    /// Propagates model application failures.
    pub fn read(
        &self,
        params: &CrossbarParams,
        currents: &mut [f64],
        tile: u64,
        sample: u64,
    ) -> Result<(), XbarError> {
        let ctx = ReadCtx {
            seed: self.seed,
            tile,
            sample,
        };
        for model in &self.models {
            if model.stage() == Stage::ReadTime && !model.is_identity() {
                model.apply_read(params, currents, &ctx)?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for NonIdealityStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.models.iter().map(|m| m.name()).collect();
        f.debug_struct("NonIdealityStack")
            .field("seed", &self.seed)
            .field("models", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CrossbarParams {
        CrossbarParams::builder(8, 8).build().unwrap()
    }

    fn mid_target(p: &CrossbarParams) -> ConductanceMatrix {
        ConductanceMatrix::uniform(8, 8, p.g_off() + 0.5 * (p.g_on() - p.g_off()))
    }

    #[test]
    fn empty_stack_is_identity() {
        let p = params();
        let g = mid_target(&p);
        let stack = NonIdealityStack::new(7);
        assert!(stack.is_identity());
        assert!(!stack.has_read_stage());
        assert_eq!(stack.program(&p, &g, 0).unwrap(), g);
    }

    #[test]
    fn zero_strength_models_are_exact_identity() {
        let p = params();
        let g = mid_target(&p);
        let stack = NonIdealityStack::new(7)
            .with_model(Box::new(LognormalSpread { sigma: 0.0 }))
            .unwrap()
            .with_model(Box::new(StuckAtFaults {
                stuck_off_rate: 0.0,
                stuck_on_rate: 0.0,
            }))
            .unwrap()
            .with_model(Box::new(ConductanceDrift {
                t: 1.0,
                t0: 1.0,
                nu: 0.3,
            }))
            .unwrap()
            .with_model(Box::new(ReadNoise { sigma: 0.0 }))
            .unwrap();
        assert!(stack.is_identity());
        assert_eq!(stack.program(&p, &g, 3).unwrap(), g);
        let mut currents = vec![1e-5, 2e-5, 3e-5];
        let before = currents.clone();
        stack.read(&p, &mut currents, 3, 0).unwrap();
        assert_eq!(currents, before);
    }

    #[test]
    fn per_tile_streams_differ_and_repeat() {
        let p = params();
        let g = mid_target(&p);
        let stack = NonIdealityStack::new(7)
            .with_model(Box::new(LognormalSpread { sigma: 0.2 }))
            .unwrap();
        let t0 = stack.program(&p, &g, 0).unwrap();
        let t0_again = stack.program(&p, &g, 0).unwrap();
        let t1 = stack.program(&p, &g, 1).unwrap();
        assert_eq!(t0, t0_again);
        assert_ne!(t0, t1);
    }

    #[test]
    fn adding_a_model_does_not_perturb_another_stream() {
        let p = params();
        let g = mid_target(&p);
        let lone = NonIdealityStack::new(7)
            .with_model(Box::new(LognormalSpread { sigma: 0.2 }))
            .unwrap();
        let composed = NonIdealityStack::new(7)
            .with_model(Box::new(LognormalSpread { sigma: 0.2 }))
            .unwrap()
            .with_model(Box::new(StuckAtFaults {
                stuck_off_rate: 0.2,
                stuck_on_rate: 0.1,
            }))
            .unwrap();
        let a = lone.program(&p, &g, 0).unwrap();
        let b = composed.program(&p, &g, 0).unwrap();
        // Wherever no fault fired, the spread draw must be identical.
        let (g_on, g_off) = (p.g_on(), p.g_off());
        let mut unstuck = 0;
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            if *y != g_on && *y != g_off {
                assert_eq!(x, y, "spread draw shifted by adding stuck_at");
                unstuck += 1;
            }
        }
        assert!(unstuck > 0, "degenerate case: every cell stuck");
    }

    #[test]
    fn drift_attenuates_monotonically() {
        let p = params();
        let g = mid_target(&p);
        let drifted = |t: f64| {
            NonIdealityStack::new(0)
                .with_model(Box::new(ConductanceDrift {
                    t,
                    t0: 1.0,
                    nu: 0.05,
                }))
                .unwrap()
                .program(&p, &g, 0)
                .unwrap()
        };
        let (d10, d1000) = (drifted(10.0), drifted(1000.0));
        for ((orig, a), b) in g
            .as_slice()
            .iter()
            .zip(d10.as_slice())
            .zip(d1000.as_slice())
        {
            assert!(b < a && a < orig, "drift must attenuate with time");
        }
    }

    #[test]
    fn read_noise_batch_equals_singles() {
        let p = params();
        let stack = NonIdealityStack::new(9)
            .with_model(Box::new(ReadNoise { sigma: 0.05 }))
            .unwrap();
        assert!(stack.has_read_stage());
        let base = vec![1e-5; 8];
        // Samples 0 and 1 drawn back-to-back...
        let mut s0 = base.clone();
        let mut s1 = base.clone();
        stack.read(&p, &mut s0, 2, 0).unwrap();
        stack.read(&p, &mut s1, 2, 1).unwrap();
        // ...must match a re-issue at the same indices.
        let mut r0 = base.clone();
        let mut r1 = base.clone();
        stack.read(&p, &mut r0, 2, 0).unwrap();
        stack.read(&p, &mut r1, 2, 1).unwrap();
        assert_eq!(s0, r0);
        assert_eq!(s1, r1);
        assert_ne!(s0, s1, "distinct samples must draw distinct noise");
        assert_ne!(s0, base, "noise must actually perturb");
    }

    #[test]
    fn legacy_variation_matches_apply_variations() {
        let p = params();
        let g = mid_target(&p);
        let config = VariationConfig {
            conductance_sigma: 0.2,
            stuck_off_rate: 0.05,
            stuck_on_rate: 0.05,
            seed: 11,
        };
        let stack = NonIdealityStack::from_variation(&config).unwrap();
        let migrated = stack.program(&p, &g, 0).unwrap();
        let legacy = apply_variations(&p, &g, &config).unwrap();
        assert_eq!(migrated, legacy);
        // Tile k advances the legacy seed by k, as the pre-zoo
        // funcsim VariationEngine did.
        let tile3 = stack.program(&p, &g, 3).unwrap();
        let legacy3 = apply_variations(&p, &g, &VariationConfig { seed: 14, ..config }).unwrap();
        assert_eq!(tile3, legacy3);
    }

    #[test]
    fn invalid_models_rejected() {
        assert!(LognormalSpread { sigma: -0.1 }.validate().is_err());
        assert!(StuckAtFaults {
            stuck_off_rate: 0.6,
            stuck_on_rate: 0.6
        }
        .validate()
        .is_err());
        assert!(ConductanceDrift {
            t: 0.5,
            t0: 1.0,
            nu: 0.1
        }
        .validate()
        .is_err());
        assert!(ConductanceDrift {
            t: 2.0,
            t0: 0.0,
            nu: 0.1
        }
        .validate()
        .is_err());
        assert!(ReadNoise { sigma: f64::NAN }.validate().is_err());
        assert!(NonIdealityStack::new(0)
            .with_model(Box::new(LognormalSpread { sigma: -1.0 }))
            .is_err());
    }

    #[test]
    fn duplicate_model_names_rejected() {
        let stack = NonIdealityStack::new(0)
            .with_model(Box::new(LognormalSpread { sigma: 0.1 }))
            .unwrap();
        assert!(stack
            .with_model(Box::new(LognormalSpread { sigma: 0.2 }))
            .is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let p = params();
        let g = ConductanceMatrix::uniform(4, 4, 1e-5);
        assert!(NonIdealityStack::new(0).program(&p, &g, 0).is_err());
    }

    #[test]
    fn stages_apply_in_lifecycle_order() {
        // Stuck-at pushed *after* drift must still fire before it:
        // a cell stuck at g_on then drifted sits below g_on.
        let p = params();
        let g = mid_target(&p);
        let stack = NonIdealityStack::new(3)
            .with_model(Box::new(ConductanceDrift {
                t: 100.0,
                t0: 1.0,
                nu: 0.1,
            }))
            .unwrap()
            .with_model(Box::new(StuckAtFaults {
                stuck_off_rate: 0.0,
                stuck_on_rate: 1.0,
            }))
            .unwrap();
        let out = stack.program(&p, &g, 0).unwrap();
        let expect = p.g_on() * 100.0f64.powf(-0.1);
        for &x in out.as_slice() {
            assert!(
                (x - expect).abs() < 1e-18,
                "stuck cell must age after programming: {x} vs {expect}"
            );
        }
    }
}

//! Device I-V models for the crossbar cross-points.
//!
//! The paper adopts the filamentary RRAM compact model of Guan et al.
//! (IEEE EDL 2012): `I(d, V) = I0 · exp(d/d0) · sinh(V/V0)`, with an
//! access transistor in series at every junction. We reproduce both and
//! expose them behind [`DeviceModel`] so the circuit solver is agnostic
//! to the device physics.
//!
//! # Conductance calibration
//!
//! A device "programmed to conductance G" means its *small-signal*
//! conductance at V → 0 equals G:
//!
//! ```text
//! I(V) = A · sinh(V / V0)       with  A = G · V0
//! ```
//!
//! so that `dI/dV |_(V=0) = A / V0 = G`. Under this calibration the
//! sinh non-linearity makes the device *super-linear*: at
//! `V = 2 · V0 = 0.5 V` it carries `sinh(2)/2 ≈ 1.81×` the current a
//! linear device would. This is the data-dependent effect GENIEx captures
//! and analytical models miss — IR drops lose current, the sinh boost
//! wins some of it back, and which effect dominates depends on the exact
//! (V, G) pattern.
//!
//! The equivalent filament gap is recoverable from the prefactor:
//! `d = d0 · ln(A / I0)` (negative gap offsets simply fold into the
//! calibration constant; the solver only ever needs `A`).

use crate::params::DeviceParams;

/// A two-terminal device model: current and differential conductance as
/// functions of the terminal voltage.
///
/// Implementations must be *strictly monotonic* (`di_dv > 0` for all
/// finite V) so the circuit Jacobian stays positive-definite; this is a
/// documented contract rather than an enforced one.
pub trait DeviceModel {
    /// Current through the device at terminal voltage `v` (odd in `v`).
    fn current(&self, v: f64) -> f64;

    /// Differential conductance `dI/dV` at terminal voltage `v`
    /// (strictly positive).
    fn di_dv(&self, v: f64) -> f64;

    /// Current and differential conductance together. Implementations
    /// that share transcendental evaluations between the two (sinh and
    /// cosh from one `exp`, tanh and sech² from one `tanh`) override
    /// this — it is the hot call inside the series-cell elimination.
    fn current_and_didv(&self, v: f64) -> (f64, f64) {
        (self.current(v), self.di_dv(v))
    }

    /// Small-signal conductance at the origin.
    fn small_signal_g(&self) -> f64 {
        self.di_dv(0.0)
    }
}

/// An ideal linear memristor: `I = G · V`.
///
/// Used by the analytical baseline (which models only linear
/// non-idealities) and as a control in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearMemristor {
    g: f64,
}

impl LinearMemristor {
    /// Creates a linear device with conductance `g` (siemens).
    pub fn new(g: f64) -> Self {
        LinearMemristor { g }
    }
}

impl DeviceModel for LinearMemristor {
    #[inline]
    fn current(&self, v: f64) -> f64 {
        self.g * v
    }

    #[inline]
    fn di_dv(&self, _v: f64) -> f64 {
        self.g
    }
}

/// The filamentary RRAM model `I(V) = A · sinh(V / V0)` with
/// `A = G · V0` (small-signal calibration, see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilamentaryRram {
    /// Current prefactor `A = I0 · exp(d/d0)` in amperes.
    prefactor: f64,
    /// Thermal-ish voltage scale of the sinh (volts).
    v0: f64,
}

impl FilamentaryRram {
    /// Creates a device programmed to small-signal conductance `g`
    /// under the given device parameters.
    pub fn from_conductance(g: f64, params: &DeviceParams) -> Self {
        FilamentaryRram {
            prefactor: g * params.v0,
            v0: params.v0,
        }
    }

    /// Creates a device directly from a filament gap `d` (nanometres),
    /// matching the paper's `I0 · exp(d/d0) · sinh(V/V0)` form.
    pub fn from_gap(d_nm: f64, params: &DeviceParams) -> Self {
        FilamentaryRram {
            prefactor: params.i0 * (d_nm / params.d0).exp(),
            v0: params.v0,
        }
    }

    /// The equivalent filament gap `d = d0 · ln(A / I0)` in nanometres.
    pub fn gap_nm(&self, params: &DeviceParams) -> f64 {
        params.d0 * (self.prefactor / params.i0).ln()
    }

    /// The current prefactor `A` (amperes).
    pub fn prefactor(&self) -> f64 {
        self.prefactor
    }
}

impl DeviceModel for FilamentaryRram {
    #[inline]
    fn current(&self, v: f64) -> f64 {
        self.prefactor * (v / self.v0).sinh()
    }

    #[inline]
    fn di_dv(&self, v: f64) -> f64 {
        (self.prefactor / self.v0) * (v / self.v0).cosh()
    }

    #[inline]
    fn current_and_didv(&self, v: f64) -> (f64, f64) {
        // One exp yields both sinh and cosh.
        let e = (v / self.v0).exp();
        let inv = 1.0 / e;
        let sinh = 0.5 * (e - inv);
        let cosh = 0.5 * (e + inv);
        (self.prefactor * sinh, (self.prefactor / self.v0) * cosh)
    }
}

/// The access device (transistor/selector) in series with each RRAM.
///
/// Modelled as a smooth current-limiting element
/// `I(V) = G_acc · V_sat · tanh(V / V_sat)`: ohmic with conductance
/// `G_acc` near the origin, saturating toward `G_acc · V_sat` at large
/// bias — the compressive counterpart to the RRAM's expansive sinh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessDevice {
    g_acc: f64,
    v_sat: f64,
}

impl AccessDevice {
    /// Creates an access device with on-conductance `g_acc` (siemens)
    /// and saturation voltage `v_sat` (volts).
    pub fn new(g_acc: f64, v_sat: f64) -> Self {
        AccessDevice { g_acc, v_sat }
    }
}

impl DeviceModel for AccessDevice {
    #[inline]
    fn current(&self, v: f64) -> f64 {
        self.g_acc * self.v_sat * (v / self.v_sat).tanh()
    }

    #[inline]
    fn di_dv(&self, v: f64) -> f64 {
        let t = (v / self.v_sat).tanh();
        // sech^2 = 1 - tanh^2; floor keeps the Jacobian SPD even deep in
        // saturation.
        (self.g_acc * (1.0 - t * t)).max(self.g_acc * 1e-9)
    }

    #[inline]
    fn current_and_didv(&self, v: f64) -> (f64, f64) {
        let t = (v / self.v_sat).tanh();
        (
            self.g_acc * self.v_sat * t,
            (self.g_acc * (1.0 - t * t)).max(self.g_acc * 1e-9),
        )
    }
}

/// A series combination of an access device and a memristor — the full
/// 1T1R cell the paper simulates at every junction.
///
/// The internal node between the two devices is eliminated on the fly
/// with a scalar Newton solve, so the network solver still sees a single
/// two-terminal element (keeping the system at two nodes per cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPair<M> {
    access: AccessDevice,
    inner: M,
}

/// The paper's 1T1R cell: access device in series with the sinh RRAM.
pub type SeriesCell = SeriesPair<FilamentaryRram>;

/// Access device in series with a *linear* memristor — the
/// "access-device non-linearity only" ablation configuration.
pub type SeriesLinearCell = SeriesPair<LinearMemristor>;

impl<M: DeviceModel> SeriesPair<M> {
    /// Builds a cell from its two constituent devices.
    pub fn new(access: AccessDevice, inner: M) -> Self {
        SeriesPair { access, inner }
    }

    /// Solves for the internal node voltage `u` such that the access
    /// device (spanning `v - u`) and the memristor (spanning `u`) carry
    /// the same current. Returns `(u, i, di_dv_series)`.
    ///
    /// The tolerance targets nano-volt accuracy on `u`, which maps to
    /// current errors around `G · 1e-9 ≈ 1e-14 A` — far below both the
    /// circuit solver's residual tolerance and any ADC resolution.
    fn solve_internal(&self, v: f64) -> (f64, f64, f64) {
        // Start from the linear divider estimate.
        let ga0 = self.access.small_signal_g();
        let gr0 = self.inner.small_signal_g();
        self.solve_internal_from(v, v * ga0 / (ga0 + gr0))
    }

    /// Like [`solve_internal`](Self::solve_internal) but starting the
    /// scalar Newton from `u0` — the amortized solve path's hook for
    /// warm-starting from the cell's previous internal-node voltage
    /// (out-of-range guesses are clamped back into `(0, v)`). `f(u)` is
    /// strictly decreasing, so the converged `u` does not depend on the
    /// start; only the iteration count does.
    fn solve_internal_from(&self, v: f64, u0: f64) -> (f64, f64, f64) {
        if v == 0.0 {
            let ga = self.access.small_signal_g();
            let gr = self.inner.small_signal_g();
            return (0.0, 0.0, ga * gr / (ga + gr));
        }
        let ga0 = self.access.small_signal_g();
        let gr0 = self.inner.small_signal_g();
        let mut u = if u0.is_finite() {
            if v > 0.0 {
                u0.clamp(0.0, v)
            } else {
                u0.clamp(v, 0.0)
            }
        } else {
            v * ga0 / (ga0 + gr0)
        };
        let tol = 1e-12 + 1e-9 * v.abs();
        let mut g_series = ga0 * gr0 / (ga0 + gr0);
        for _ in 0..30 {
            let (i_acc, g_acc) = self.access.current_and_didv(v - u);
            let (i_inner, g_inner) = self.inner.current_and_didv(u);
            g_series = g_acc * g_inner / (g_acc + g_inner);
            let f = i_acc - i_inner;
            let step = f / (g_acc + g_inner);
            u += step;
            // Keep u inside (0, v) for v > 0 (and mirrored for v < 0):
            // both devices are passive so the divider can't overshoot.
            if v > 0.0 {
                u = u.clamp(0.0, v);
            } else {
                u = u.clamp(v, 0.0);
            }
            if step.abs() < tol {
                break;
            }
        }
        (u, self.inner.current(u), g_series)
    }

    /// Device current *and* differential conductance with a caller-held
    /// internal-node warm start: the scalar Newton starts from `*u`
    /// (NaN means "no guess yet") and writes the converged internal
    /// voltage back for the next call.
    ///
    /// Consecutive evaluations of the same cell at nearby biases — the
    /// amortized solve loop, and consecutive samples of a batch — then
    /// converge in 1–2 inner iterations instead of walking in from the
    /// linear-divider estimate every time. The converged value is the
    /// same either way (the series constraint is strictly monotone), so
    /// this changes cost, not results. The conductance is the same
    /// byproduct `current_and_didv` returns — handing it out here lets
    /// the amortized solver refresh its Jacobian without a second
    /// internal solve per cell.
    pub(crate) fn current_and_didv_warm(&self, v: f64, u: &mut f64) -> (f64, f64) {
        let (u_new, i, g) = self.solve_internal_from(v, *u);
        *u = u_new;
        (i, g)
    }
}

impl<M: DeviceModel> DeviceModel for SeriesPair<M> {
    fn current(&self, v: f64) -> f64 {
        self.solve_internal(v).1
    }

    fn di_dv(&self, v: f64) -> f64 {
        // Implicit-function theorem on the series constraint:
        // 1/g_total = 1/g_acc(v-u) + 1/g_inner(u).
        self.solve_internal(v).2
    }

    fn current_and_didv(&self, v: f64) -> (f64, f64) {
        let (_, i, g) = self.solve_internal(v);
        (i, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;
    use proptest::prelude::*;

    fn dev_params() -> DeviceParams {
        DeviceParams::default()
    }

    #[test]
    fn linear_device_is_linear() {
        let d = LinearMemristor::new(1e-5);
        assert_eq!(d.current(0.5), 0.5e-5);
        assert_eq!(d.di_dv(123.0), 1e-5);
        assert_eq!(d.small_signal_g(), 1e-5);
    }

    #[test]
    fn rram_small_signal_matches_programmed_g() {
        let g = 1e-5;
        let d = FilamentaryRram::from_conductance(g, &dev_params());
        assert!((d.small_signal_g() - g).abs() < 1e-12 * g);
    }

    #[test]
    fn rram_superlinear_at_high_voltage() {
        let g = 1e-5;
        let p = dev_params();
        let d = FilamentaryRram::from_conductance(g, &p);
        let v = 2.0 * p.v0; // 0.5 V with default V0 = 0.25 V
        let linear = g * v;
        let actual = d.current(v);
        // sinh(2)/2 ≈ 1.8134
        assert!((actual / linear - 2.0f64.sinh() / 2.0).abs() < 1e-12);
        assert!(actual > linear);
    }

    #[test]
    fn rram_is_odd_function() {
        let d = FilamentaryRram::from_conductance(1e-5, &dev_params());
        assert!((d.current(0.3) + d.current(-0.3)).abs() < 1e-20);
    }

    #[test]
    fn rram_gap_round_trip() {
        let p = dev_params();
        let d = FilamentaryRram::from_gap(-1.2, &p);
        let gap = d.gap_nm(&p);
        assert!((gap - (-1.2)).abs() < 1e-12);

        let d2 = FilamentaryRram::from_conductance(1e-5, &p);
        let d3 = FilamentaryRram::from_gap(d2.gap_nm(&p), &p);
        assert!((d2.prefactor() - d3.prefactor()).abs() < 1e-18);
    }

    #[test]
    fn access_device_saturates() {
        let a = AccessDevice::new(1e-4, 0.3);
        // Near origin: ohmic.
        assert!((a.current(0.001) - 1e-4 * 0.001).abs() < 1e-10);
        // Deep saturation: bounded by g * v_sat.
        assert!(a.current(10.0) < 1e-4 * 0.3 * 1.0001);
        assert!(a.current(10.0) > 1e-4 * 0.3 * 0.999);
    }

    #[test]
    fn access_device_conductance_positive() {
        let a = AccessDevice::new(1e-4, 0.3);
        for v in [-5.0, -0.1, 0.0, 0.1, 5.0] {
            assert!(a.di_dv(v) > 0.0, "di_dv at {v}");
        }
    }

    #[test]
    fn series_cell_current_continuity() {
        let p = dev_params();
        let cell = SeriesCell::new(
            AccessDevice::new(1e-3, 0.5),
            FilamentaryRram::from_conductance(1e-5, &p),
        );
        // The current through the cell equals the access-device current
        // at the solved internal node.
        let v = 0.4;
        let (u, i, g) = cell.solve_internal(v);
        assert!((cell.access.current(v - u) - i).abs() < 1e-12 * i.abs().max(1e-12));
        assert!(u > 0.0 && u < v);
        assert!(g > 0.0);
    }

    #[test]
    fn series_cell_small_signal_is_series_combination() {
        let p = dev_params();
        let ga = 1e-3;
        let gr = 1e-5;
        let cell = SeriesCell::new(
            AccessDevice::new(ga, 0.5),
            FilamentaryRram::from_conductance(gr, &p),
        );
        let expect = ga * gr / (ga + gr);
        assert!((cell.di_dv(0.0) - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn series_cell_zero_voltage() {
        let p = dev_params();
        let cell = SeriesCell::new(
            AccessDevice::new(1e-3, 0.5),
            FilamentaryRram::from_conductance(1e-5, &p),
        );
        assert_eq!(cell.current(0.0), 0.0);
    }

    #[test]
    fn series_cell_dominated_by_weaker_device() {
        // With a very strong access device the cell behaves like the
        // RRAM alone.
        let p = dev_params();
        let rram = FilamentaryRram::from_conductance(1e-5, &p);
        let cell = SeriesCell::new(AccessDevice::new(1.0, 10.0), rram);
        let v = 0.25;
        assert!((cell.current(v) - rram.current(v)).abs() < 1e-4 * rram.current(v));
    }

    proptest! {
        #[test]
        fn rram_monotonic(v1 in -0.6f64..0.6, dv in 1e-6f64..0.1) {
            let d = FilamentaryRram::from_conductance(1e-5, &dev_params());
            prop_assert!(d.current(v1 + dv) > d.current(v1));
            prop_assert!(d.di_dv(v1) > 0.0);
        }

        #[test]
        fn series_cell_monotonic_and_odd(v in 1e-4f64..0.6) {
            let p = dev_params();
            let cell = SeriesCell::new(
                AccessDevice::new(5e-4, 0.4),
                FilamentaryRram::from_conductance(2e-5, &p),
            );
            prop_assert!(cell.current(v) > 0.0);
            prop_assert!((cell.current(v) + cell.current(-v)).abs() < 1e-12 * cell.current(v).abs().max(1e-30));
            prop_assert!(cell.di_dv(v) > 0.0);
        }

        #[test]
        fn series_current_below_both_standalone(v in 1e-3f64..0.5) {
            // A series element can never carry more current than either
            // device alone at the full terminal voltage.
            let p = dev_params();
            let acc = AccessDevice::new(5e-4, 0.4);
            let rram = FilamentaryRram::from_conductance(2e-5, &p);
            let cell = SeriesCell::new(acc, rram);
            prop_assert!(cell.current(v) <= rram.current(v) + 1e-18);
            prop_assert!(cell.current(v) <= acc.current(v) + 1e-18);
        }
    }
}
